//! A minimal signal shim: latch `SIGTERM`/`SIGINT` into an atomic flag a
//! daemon main loop can poll, with no libc crate dependency.
//!
//! The service crates (`rl`, `cuasmrl`, `cuasmrld`) all
//! `#![forbid(unsafe_code)]`; the one place the daemon genuinely needs FFI —
//! registering a signal handler for graceful drain — lives here instead,
//! kept to the absolute minimum: the handler does nothing but a relaxed
//! atomic store (the only thing that is async-signal-safe anyway), and the
//! daemon polls [`term_requested`] at its own pace.
//!
//! On non-Unix targets [`install_term_flag`] is a no-op returning `false`,
//! so callers degrade to "drain only on explicit shutdown request".

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERM;
    use std::sync::atomic::Ordering;

    // `void (*signal(int, void (*)(int)))(int)` from the platform libc,
    // which Rust binaries on Unix already link. The returned previous
    // handler is only checked against SIG_ERR, so `usize` suffices.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_ERR: usize = usize::MAX;

    extern "C" fn latch(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        let term = unsafe { signal(SIGTERM, latch) };
        let int = unsafe { signal(SIGINT, latch) };
        term != SIG_ERR && int != SIG_ERR
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Installs the `SIGTERM`/`SIGINT` handler that latches [`term_requested`].
/// Returns whether installation succeeded (always `false` off Unix).
/// Idempotent; call once at daemon start.
pub fn install_term_flag() -> bool {
    imp::install()
}

/// Whether a termination signal has arrived since
/// [`install_term_flag`]. Never resets — a drain, once requested, stays
/// requested.
#[must_use]
pub fn term_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn a_raised_sigterm_latches_the_flag() {
        assert!(install_term_flag());
        assert!(!term_requested());
        // raise() delivers to the calling thread before returning, and the
        // installed handler turns what would kill the process into a flag.
        assert_eq!(unsafe { raise(15) }, 0);
        assert!(term_requested());
        assert!(term_requested(), "the latch never resets");
    }
}
