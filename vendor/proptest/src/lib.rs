//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over named-argument strategies, range / `any` /
//! `option::of` / `collection::vec` strategies, `prop_assert*` macros and
//! [`ProptestConfig::with_cases`]. Inputs are drawn from a fixed-seed
//! ChaCha8 stream, so failures are reproducible; there is no shrinking —
//! the failing input values are reported by the panic message of the
//! underlying assertion.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::Rng;

#[doc(hidden)]
pub use rand as __rand;

/// The RNG driving input generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Number of random cases to run per property (a fraction of the upstream
/// default of 256, keeping the simulator-heavy properties fast).
pub const DEFAULT_CASES: u32 = 32;

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases — unless the
    /// `PROPTEST_CASES` environment variable is set, which overrides the
    /// in-code count (mirroring upstream's env hook; the nightly CI deep
    /// run uses it to raise every property's depth without touching the
    /// fast per-push defaults).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(DEFAULT_CASES),
        }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_range(0u32..2) == 1
    }
}

macro_rules! impl_any_uniform {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..<$t>::MAX)
            }
        }
    )*};
}

impl_any_uniform!(u8, u16, u32, i8, i16, i32);

/// Combinator strategies, exposed under the `prop::` paths the upstream
/// prelude provides.
pub mod prop {
    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy produced by [`of`].
        #[derive(Debug, Clone, Copy)]
        pub struct OptionOf<S>(S);

        /// Generates `None` half the time and `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
            OptionOf(inner)
        }

        impl<S: Strategy> Strategy for OptionOf<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.gen_range(0u32..2) == 0 {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy produced by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecOf<S> {
            element: S,
            length: Range<usize>,
        }

        /// Generates a `Vec` whose length is drawn from `length` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecOf<S> {
            VecOf { element, length }
        }

        impl<S: Strategy> Strategy for VecOf<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.length.start >= self.length.end {
                    self.length.start
                } else {
                    rng.gen_range(self.length.clone())
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` here: no
/// shrinking, the panic aborts the case immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the upstream syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn my_property(x in 0u32..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // One deterministic stream per property, offset by a hash of the
            // test name so sibling properties see different data.
            let mut __seed: u64 = 0xcafe_f00d_d15e_a5e5;
            for b in stringify!($name).bytes() {
                __seed = __seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
            }
            let mut __rng = <$crate::TestRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);
                )*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any_stay_in_bounds(x in 3u16..9, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            let _: bool = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn combinators_produce_expected_shapes(
            opt in prop::option::of(0u8..4),
            items in prop::collection::vec(0usize..7, 0..5),
        ) {
            if let Some(v) = opt {
                prop_assert!(v < 4);
            }
            prop_assert!(items.len() < 5);
            prop_assert!(items.iter().all(|&i| i < 7));
        }
    }
}
