//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text and parses it
//! back. Floats are printed with Rust's shortest round-trip formatting, so a
//! serialize → parse cycle reproduces every finite `f64` (and every `f32`
//! widened to `f64`) bit-exactly — which is what the deploy-time schedule
//! cache (§4.2 of the paper) relies on.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the `Result`
/// mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_delimited(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Map(entries) => write_delimited(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, item), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            },
        ),
    }
}

fn write_delimited<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.consume_keyword("null").map(|()| Value::Null),
            Some(b't') => self.consume_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.consume_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let high = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("kernel \"a\"\n".to_string())),
            ("speedup".to_string(), Value::Float(1.0625)),
            ("digest".to_string(), Value::UInt(u64::MAX)),
            (
                "moves".to_string(),
                Value::Seq(vec![Value::Int(-3), Value::Null, Value::Bool(true)]),
            ),
            ("empty".to_string(), Value::Seq(vec![])),
        ]);
        for text in [
            to_string(&Wrapper(value.clone())).unwrap(),
            to_string_pretty(&Wrapper(value.clone())).unwrap(),
        ] {
            let back: Wrapper = from_str(&text).unwrap();
            assert_eq!(back.0, value);
        }

        struct Wrapper(Value);
        impl Serialize for Wrapper {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Wrapper {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                Ok(Wrapper(value.clone()))
            }
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1f64, 1e-300, 123456.789, -0.0, 2.5e10, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.0extra").is_err());
        assert!(from_str::<f64>("[1.0").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(s, "aé😀b");
    }
}
