//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`/`bench_with_input`) with a simple mean-of-N timing loop
//! instead of criterion's statistical machinery. Good enough to track
//! hot-path regressions in CI smoke runs; swap in the real crate for serious
//! measurement work.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Benchmark identifier used by [`BenchmarkGroup::bench_with_input`].
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter.
    #[must_use]
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function label and a parameter.
    #[must_use]
    pub fn new<D: Display>(function: &str, parameter: D) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Times closures for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations_per_sample: u32,
    sample_count: u32,
    smoke: bool,
}

impl Bencher {
    fn with_samples(sample_count: u32, smoke: bool) -> Self {
        Bencher {
            samples: Vec::new(),
            iterations_per_sample: 1,
            sample_count,
            smoke,
        }
    }

    /// Runs `routine` repeatedly and records wall-clock samples. In smoke
    /// (`--test`) mode the routine runs exactly once — enough to prove the
    /// bench executes — and its single timing is recorded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            let start = Instant::now();
            std_black_box(routine());
            self.iterations_per_sample = 1;
            self.samples.push(start.elapsed());
            return;
        }
        // One warmup call, which also sizes the loop so that each sample is
        // at least ~1ms of work.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed();
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).max(1);
        self.iterations_per_sample = u32::try_from(per_sample.min(1_000)).unwrap_or(1_000);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iterations_per_sample {
                std_black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iterations_per_sample);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = self.samples.iter().sum();
        let mean = total / u32::try_from(self.samples.len()).unwrap_or(1);
        let median = sorted[sorted.len() / 2];
        println!(
            "{name:<40} mean {:>12.3?}  median {:>12.3?}  ({} samples x {} iters)",
            mean,
            median,
            self.samples.len(),
            self.iterations_per_sample
        );
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u32,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            // Mirror criterion's `--test` mode: run every benchmark exactly
            // once without statistics, so `cargo bench -- --test` is a fast
            // executes-at-all smoke check.
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::with_samples(self.sample_size, self.smoke);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            smoke: self.smoke,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u32,
    smoke: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = u32::try_from(n.max(1)).unwrap_or(u32::MAX);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::with_samples(self.sample_size, self.smoke);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Finishes the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs benchmark groups.
///
/// `cargo bench -- --test` enters criterion's smoke mode: every benchmark
/// routine runs exactly once with no statistical sampling, so CI proves the
/// hot paths still execute in seconds without paying for full measurement
/// runs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut criterion = Criterion::default();
        square(&mut criterion);
        let mut group = criterion.benchmark_group("grp");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }
}
