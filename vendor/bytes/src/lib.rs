//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`] / [`BufMut`] cursor traits over `&[u8]` and
//! `Vec<u8>` — the only surface the SASS binary encoding uses.

#![forbid(unsafe_code)]

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian_values() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 3 + 1 + 4 + 8);
        let mut hdr = [0u8; 3];
        cursor.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
