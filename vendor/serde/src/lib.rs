//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! miniature serde: [`Serialize`] converts a value into a self-describing
//! [`Value`] tree and [`Deserialize`] converts it back. The derive macros in
//! the sibling `serde_derive` crate generate externally-tagged
//! representations matching real serde's defaults (structs → maps, unit
//! variants → strings, data-carrying variants → single-entry maps), so JSON
//! produced through `serde_json` is shaped the way the real stack would
//! shape it.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the data model both traits target).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit in `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short label for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// An "expected X while deserializing Y" error.
    #[must_use]
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match the expected shape.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other.kind())),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn serialize(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        i64::deserialize(value).map(|i| i as isize)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("number", other.kind())),
        }
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.kind())),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("sequence", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $index:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$index.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::expected("sequence", "tuple"))?;
                Ok(($(
                    $name::deserialize(
                        items
                            .get($index)
                            .ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort keys so serialization is deterministic across runs and
        // hashers. Non-string keys force the pair-sequence representation.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    let (k, v) = <(K, V)>::deserialize(pair)?;
                    Ok((k, v))
                })
                .collect(),
            other => Err(Error::expected("sequence of pairs", other.kind())),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn serialize(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("sequence", other.kind())),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::expected("map", other.kind())),
        }
    }
}

/// Support functions used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up and deserializes a named struct field.
    pub fn get_field<T: Deserialize>(
        entries: &[(String, Value)],
        name: &str,
        context: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::deserialize(v),
            None => Err(Error::custom(format!(
                "missing field `{name}` in {context}"
            ))),
        }
    }

    /// Looks up and deserializes a named struct field marked
    /// `#[serde(default)]`: a missing entry yields `T::default()` instead of
    /// an error (schema-evolution support for added fields).
    pub fn get_field_or_default<T: Deserialize + Default>(
        entries: &[(String, Value)],
        name: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::deserialize(v),
            None => Ok(T::default()),
        }
    }

    /// Fetches the `i`-th element of a tuple-variant sequence.
    pub fn get_element<T: Deserialize>(
        items: &[Value],
        index: usize,
        context: &str,
    ) -> Result<T, Error> {
        match items.get(index) {
            Some(v) => T::deserialize(v),
            None => Err(Error::custom(format!(
                "missing element {index} in {context}"
            ))),
        }
    }

    /// Splits an externally-tagged enum value into (variant name, payload).
    pub fn variant_of<'v>(
        value: &'v Value,
        context: &str,
    ) -> Result<(&'v str, Option<&'v Value>), Error> {
        match value {
            Value::Str(name) => Ok((name, None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::expected(
                "variant string or single-entry map",
                &format!("{} ({context})", other.kind()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&u64::MAX.serialize()).unwrap(), u64::MAX);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f32::deserialize(&1.25f32.serialize()).unwrap(), 1.25);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let s = "hello".to_string();
        assert_eq!(String::deserialize(&s.serialize()).unwrap(), s);
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(Vec::<u8>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()).unwrap(), None);
    }

    #[test]
    fn hashmap_serialization_is_sorted() {
        let mut m = HashMap::new();
        m.insert("zeta".to_string(), 1.0f64);
        m.insert("alpha".to_string(), 2.0f64);
        let serialized = m.serialize();
        let Value::Seq(pairs) = &serialized else {
            panic!("expected pair sequence")
        };
        assert_eq!(pairs[0].as_seq().unwrap()[0].as_str(), Some("alpha"));
        assert_eq!(pairs[1].as_seq().unwrap()[0].as_str(), Some("zeta"));
        let back = HashMap::<String, f64>::deserialize(&serialized).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u8::deserialize(&Value::Str("x".into())).is_err());
        assert!(String::deserialize(&Value::Int(1)).is_err());
        assert!(u8::deserialize(&Value::Int(-1)).is_err());
        assert!(u8::deserialize(&Value::Int(300)).is_err());
    }
}
