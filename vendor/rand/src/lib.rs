//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small subset of the `rand` API it actually uses: the [`RngCore`] /
//! [`SeedableRng`] traits and the [`Rng::gen_range`] extension over half-open
//! ranges. Distributions are uniform; integer sampling uses 64-bit modulo
//! reduction (deterministic, and unbiased far beyond the range sizes used
//! here), float sampling uses the standard 24-/53-bit mantissa trick.
//!
//! Determinism is the only contract that matters for the reproduction: every
//! consumer seeds an explicit [`rand_chacha`-style] generator, and the same
//! seed must yield the same stream on every platform.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way the real `rand` crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele et al.), the expansion rand documents.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a uniform sample in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                ((range.start as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        range.start + (range.end - range.start) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + (range.end - range.start) * unit
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let d = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&d));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
