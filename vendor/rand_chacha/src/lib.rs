//! Offline stand-in for `rand_chacha`, implementing a genuine ChaCha8
//! keystream generator behind the [`rand`] traits.
//!
//! The workspace only needs [`ChaCha8Rng`]: a fast, seedable, portable,
//! clonable generator with independent streams per seed. This implementation
//! follows RFC 7539's state layout with 8 rounds and a 64-bit block counter;
//! output words are the little-endian words of successive keystream blocks.
//! It is *not* guaranteed to be bit-compatible with the upstream crate — the
//! reproduction only relies on determinism for a fixed seed, which this
//! provides on every platform.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const WORDS_PER_BLOCK: usize = 16;

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// Block counter (state words 12..14).
    counter: u64,
    /// Nonce words (state words 14..16).
    nonce: [u32; 2],
    /// Buffered keystream block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `buffer`; `WORDS_PER_BLOCK` means "refill".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The complete internal state of a [`ChaCha8Rng`], exposed so callers can
/// checkpoint and later resume a generator mid-stream with bit-identical
/// output (the upstream crate offers the same capability through its serde
/// feature and `get_word_pos`/`set_word_pos`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaState {
    /// Key words (state words 4..12).
    pub key: [u32; 8],
    /// Block counter of the *next* block to generate.
    pub counter: u64,
    /// Nonce words (state words 14..16).
    pub nonce: [u32; 2],
    /// Buffered keystream block.
    pub buffer: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `buffer` (`WORDS_PER_BLOCK` means "refill").
    pub index: usize,
}

impl ChaCha8Rng {
    /// Captures the generator's complete state for checkpointing.
    pub fn state(&self) -> ChaChaState {
        ChaChaState {
            key: self.key,
            counter: self.counter,
            nonce: self.nonce,
            buffer: self.buffer,
            index: self.index,
        }
    }

    /// Rebuilds a generator from a captured state; the restored generator
    /// continues the keystream exactly where [`ChaCha8Rng::state`] left it.
    /// An out-of-range `index` is clamped to "refill on next draw".
    pub fn from_state(state: ChaChaState) -> Self {
        ChaCha8Rng {
            key: state.key,
            counter: state.counter,
            nonce: state.nonce,
            buffer: state.buffer,
            index: state.index.min(WORDS_PER_BLOCK),
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            nonce: [0, 0],
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams for different seeds must diverge");
    }

    #[test]
    fn clone_resumes_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..5 {
            rng.next_u32();
        }
        let state = rng.state();
        let mut restored = ChaCha8Rng::from_state(state.clone());
        assert_eq!(restored.state(), state);
        for _ in 0..40 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        // A hostile index is clamped instead of panicking.
        let mut bad = state;
        bad.index = usize::MAX;
        let _ = ChaCha8Rng::from_state(bad).next_u32();
    }

    #[test]
    fn keystream_looks_uniform_enough_for_sampling() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "bucket count {c} far from uniform");
        }
    }
}
