//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — non-generic structs with named fields, tuple
//! and unit structs, and enums whose variants are unit, tuple or
//! struct-like — without depending on `syn`/`quote` (the build environment is
//! offline). The input token stream is walked by hand, and the generated
//! impls target the value-tree data model of the vendored `serde` crate with
//! serde's externally-tagged defaults.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// `struct S;`
    UnitStruct,
    /// `struct S(T0, T1, ...);` with the field count.
    TupleStruct(usize),
    /// `struct S { a: A, b: B }` with the parsed fields.
    NamedStruct(Vec<Field>),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

/// One named field and whether it carries `#[serde(default)]` (the only
/// field attribute this stand-in honours: a missing entry deserializes to
/// `Default::default()` instead of erroring, for schema evolution).
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive (vendored): malformed enum `{name}`"),
        },
        other => panic!("serde_derive (vendored): cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

/// Skips `#[...]` attributes (including doc comments) and `pub` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                *pos += 1; // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // pub(crate) / pub(in ...)
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde_derive (vendored): expected identifier, found {other:?}"),
    }
}

/// Parses `a: A, b: B, ...`, returning the parsed fields. Types are skipped
/// with angle-bracket depth tracking so commas inside generics don't split
/// fields; `#[serde(default)]` attributes are recorded, every other
/// attribute is skipped.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let default = consume_field_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!(
                "serde_derive (vendored): expected `:` after field `{field}`, found {other:?}"
            ),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            name: field,
            default,
        });
    }
    fields
}

/// Skips attributes and visibility before a named field like
/// [`skip_attributes_and_visibility`], additionally reporting whether any of
/// the skipped attributes was `#[serde(default)]`.
fn consume_field_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut default = false;
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if let Some(TokenTree::Group(attr)) = tokens.get(*pos) {
                    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
                    if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde")
                    {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            default |= args.stream().into_iter().any(
                                |t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"),
                            );
                        }
                    }
                }
                *pos += 1; // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // pub(crate) / pub(in ...)
                }
            }
            _ => break,
        }
    }
    default
}

/// Advances past one type, stopping after the comma that terminates it (or at
/// the end of the stream).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for token in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n";

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
}

fn serialize_arm(name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.fields {
        VariantFields::Unit => format!(
            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantFields::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::serialize(__f0)".to_string()
            } else {
                let items: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),",
                binds = bindings.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f}))"
                    )
                })
                .collect();
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Map(::std::vec![{entries}]))]),",
                binds = binds.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::get_element(items, {i}, \"{name}\")?"))
                .collect();
            format!(
                "let items = value.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{name}\"))?;\n        ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields.iter().map(|f| deserialize_field(f, name)).collect();
            format!(
                "let entries = value.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{name}\"))?;\n        ::std::result::Result::Ok({name} {{ {} }})",
                items.join(" ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| deserialize_arm(name, v)).collect();
            format!(
                "let (variant, payload) = ::serde::__private::variant_of(value, \"{name}\")?;\n        match variant {{ {} __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other))), }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n    fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
    )
}

/// One `field: ...?,` initializer of a named-fields deserializer.
fn deserialize_field(field: &Field, context: &str) -> String {
    let f = &field.name;
    if field.default {
        format!("{f}: ::serde::__private::get_field_or_default(entries, \"{f}\")?,")
    } else {
        format!("{f}: ::serde::__private::get_field(entries, \"{f}\", \"{context}\")?,")
    }
}

fn deserialize_arm(name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    let context = format!("{name}::{vname}");
    match &variant.fields {
        VariantFields::Unit => {
            format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
        }
        VariantFields::Tuple(n) => {
            let payload = format!(
                "let payload = payload.ok_or_else(|| ::serde::Error::custom(\"missing payload for {context}\"))?;"
            );
            if *n == 1 {
                format!(
                    "\"{vname}\" => {{ {payload} ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(payload)?)) }}"
                )
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::__private::get_element(items, {i}, \"{context}\")?"))
                    .collect();
                format!(
                    "\"{vname}\" => {{ {payload} let items = payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"sequence\", \"{context}\"))?; ::std::result::Result::Ok({name}::{vname}({})) }}",
                    items.join(", ")
                )
            }
        }
        VariantFields::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| deserialize_field(f, &context))
                .collect();
            format!(
                "\"{vname}\" => {{ let payload = payload.ok_or_else(|| ::serde::Error::custom(\"missing payload for {context}\"))?; let entries = payload.as_map().ok_or_else(|| ::serde::Error::expected(\"map\", \"{context}\"))?; ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                items.join(" ")
            )
        }
    }
}
