//! Workspace-level façade for the CuAsmRL reproduction.
//!
//! The interesting code lives in the member crates; this package exists to
//! host the cross-crate integration tests in `tests/` and the runnable
//! examples in `examples/`. Re-exports are provided so downstream scripts can
//! depend on a single crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ::bench;
pub use cuasmrl;
pub use gpusim;
pub use kernels;
pub use nn;
pub use rl;
pub use sass;
