//! The property-test wall of the richer action space: for every
//! [`ScheduleEdit`] kind on every built-in architecture profile,
//! mask-legality implies hazard-free simulation, and the delta engine's
//! multi-edit splices are bit-identical to full re-simulation — including on
//! arbitrary *illegal* edits, where the splice contract must still hold even
//! though the schedule may be corrupted.

use cuasmrl::{analyze, schedule_edits, ActionSpace, ScheduleEdit, StallTable};
use gpusim::{CompiledProgram, DeltaEngine, GpuConfig, LaunchConfig};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sass::Program;

fn small_kernel() -> (Program, LaunchConfig) {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let config = KernelConfig {
        block_m: 32,
        block_n: 32,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    (kernel.program, kernel.launch)
}

fn arch_profiles() -> Vec<GpuConfig> {
    ["ampere", "turing", "hopper"]
        .iter()
        .map(|name| GpuConfig::by_name(name).expect("built-in profile"))
        .collect()
}

fn full_sim(
    gpu: &GpuConfig,
    compiled: &CompiledProgram,
    launch: &LaunchConfig,
) -> gpusim::SmReport {
    gpusim::SmSimulator::new(gpu.clone())
        .run_compiled(
            compiled,
            gpusim::resident_warps(gpu, launch),
            0,
            &launch.constant_bank(),
            launch.max_cycles,
        )
        .report
}

/// The legal edit table of `program` under the rich space.
fn legal_edits(program: &Program, table: &StallTable) -> Vec<ScheduleEdit> {
    let analysis = analyze(program, table);
    let movable = analysis.movable_memory_indices();
    schedule_edits(program, &movable, &analysis, table, ActionSpace::Rich)
        .into_iter()
        .flatten()
        .collect()
}

fn kind_of(edit: &ScheduleEdit) -> &'static str {
    match edit {
        ScheduleEdit::Swap { .. } => "swap",
        ScheduleEdit::BlockMove { .. } => "block-move",
        ScheduleEdit::ToggleReuse { .. } => "toggle-reuse",
        ScheduleEdit::SetStall { from, to, .. } if to > from => "stall-inc",
        ScheduleEdit::SetStall { .. } => "stall-dec",
        ScheduleEdit::SetWait { on: true, .. } => "wait-widen",
        ScheduleEdit::SetWait { .. } => "wait-tighten",
    }
}

/// Every masked-legal edit of every kind, applied singly to the initial
/// schedule, simulates hazard-free and splices bit-identically to a full
/// re-simulation — on all three architecture profiles. This is the
/// exhaustive (non-randomized) face of the wall: it visits the complete
/// legal edit table, so every edit kind the mask ever offers is covered.
#[test]
fn every_legal_edit_kind_is_hazard_free_and_splices_bit_identically() {
    let (program, launch) = small_kernel();
    for gpu in arch_profiles() {
        let table = StallTable::for_arch(&gpu.arch);
        let edits = legal_edits(&program, &table);
        assert!(!edits.is_empty(), "arch {}: no legal edits", gpu.name);
        let compiled = CompiledProgram::compile(&program, &gpu);
        let baseline_report = full_sim(&gpu, &compiled, &launch);
        assert_eq!(baseline_report.hazards, 0, "arch {}: baseline", gpu.name);
        let mut engine = DeltaEngine::for_launch(gpu.clone(), &launch);
        let baseline = engine.record_baseline(&compiled);
        let mut kinds_seen = std::collections::BTreeSet::new();
        for edit in &edits {
            kinds_seen.insert(kind_of(edit));
            let mut mutated_program = program.clone();
            assert!(edit.apply(&mut mutated_program), "{edit:?}");
            let mut mutated = compiled.clone();
            edit.apply_to_compiled(&mut mutated, &mutated_program, &gpu);
            // The lowered mirror must match recompiling from source — the
            // splice equivalence below would otherwise compare the wrong
            // schedule.
            let recompiled = CompiledProgram::compile(&mutated_program, &gpu);
            let full = full_sim(&gpu, &recompiled, &launch);
            assert_eq!(
                full.hazards, 0,
                "arch {}: legal {edit:?} must stay hazard-free",
                gpu.name
            );
            let (delta_report, _) =
                engine.simulate_delta(&baseline, &mutated, &edit.touched_indices());
            assert_eq!(
                delta_report, full,
                "arch {}: delta vs full for {edit:?}",
                gpu.name
            );
        }
        // The sample kernel's legal table must exercise every edit family
        // (swaps up/down collapse into one discriminator, as do the two
        // directions of a block move).
        for expected in [
            "swap",
            "block-move",
            "toggle-reuse",
            "stall-inc",
            "stall-dec",
            "wait-widen",
        ] {
            assert!(
                kinds_seen.contains(expected),
                "arch {}: kind {expected} never offered (saw {kinds_seen:?})",
                gpu.name
            );
        }
    }
}

/// Wait-tightening only becomes legal once a widen created a redundant wait;
/// exercise the pair explicitly on every profile.
#[test]
fn wait_tighten_after_widen_is_hazard_free_and_splices_bit_identically() {
    let (program, launch) = small_kernel();
    for gpu in arch_profiles() {
        let table = StallTable::for_arch(&gpu.arch);
        let mut widened = program.clone();
        let Some(widen) = legal_edits(&program, &table)
            .into_iter()
            .find(|e| matches!(e, ScheduleEdit::SetWait { on: true, .. }))
        else {
            panic!("arch {}: no legal wait-widen", gpu.name);
        };
        assert!(widen.apply(&mut widened));
        let tightens: Vec<ScheduleEdit> = legal_edits(&widened, &table)
            .into_iter()
            .filter(|e| matches!(e, ScheduleEdit::SetWait { on: false, .. }))
            .collect();
        assert!(
            !tightens.is_empty(),
            "arch {}: widening must enable tightening",
            gpu.name
        );
        let compiled = CompiledProgram::compile(&widened, &gpu);
        let mut engine = DeltaEngine::for_launch(gpu.clone(), &launch);
        let baseline = engine.record_baseline(&compiled);
        for edit in &tightens {
            let mut mutated_program = widened.clone();
            assert!(edit.apply(&mut mutated_program));
            let mut mutated = compiled.clone();
            edit.apply_to_compiled(&mut mutated, &mutated_program, &gpu);
            let full = full_sim(
                &gpu,
                &CompiledProgram::compile(&mutated_program, &gpu),
                &launch,
            );
            assert_eq!(full.hazards, 0, "arch {}: {edit:?}", gpu.name);
            let (delta_report, _) =
                engine.simulate_delta(&baseline, &mutated, &edit.touched_indices());
            assert_eq!(delta_report, full, "arch {}: {edit:?}", gpu.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random legal multi-edit walks — mixed swap / block-move / reuse /
    /// stall / barrier edits resolved against each intermediate schedule —
    /// stay hazard-free at every step, and diffing the whole accumulated
    /// edit set against the original baseline splices bit-identically to a
    /// full simulation, on every architecture profile.
    #[test]
    fn random_legal_edit_walks_are_hazard_free_and_bit_identical(seed in 0u64..1000) {
        let (program, launch) = small_kernel();
        for gpu in arch_profiles() {
            let table = StallTable::for_arch(&gpu.arch);
            let compiled = CompiledProgram::compile(&program, &gpu);
            let mut engine = DeltaEngine::for_launch(gpu.clone(), &launch);
            let baseline = engine.record_baseline(&compiled);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut current = program.clone();
            let mut mutated = compiled.clone();
            let mut changed: Vec<usize> = Vec::new();
            for _ in 0..5 {
                let edits = legal_edits(&current, &table);
                prop_assert!(!edits.is_empty());
                let edit = edits[rng.gen_range(0..edits.len())];
                prop_assert!(edit.apply(&mut current), "{edit:?}");
                edit.apply_to_compiled(&mut mutated, &current, &gpu);
                for index in edit.touched_indices() {
                    if let Err(at) = changed.binary_search(&index) {
                        changed.insert(at, index);
                    }
                }
                // `changed` conservatively over-approximates the diff (an
                // index edited back still counts) — allowed by contract.
                let (report, _) = engine.simulate_delta(&baseline, &mutated, &changed);
                let full = full_sim(&gpu, &CompiledProgram::compile(&current, &gpu), &launch);
                prop_assert_eq!(&report, &full, "arch {} after {:?}", gpu.name, edit);
                prop_assert_eq!(report.hazards, 0, "arch {} after {:?}", gpu.name, edit);
            }
        }
    }

    /// Arbitrary content edits — legal or not, including stall retunes the
    /// mask would reject and random barrier-wait flips — still satisfy the
    /// splice contract: the delta evaluation of the accumulated edit set is
    /// bit-identical to fully simulating the mutated schedule. (Such edits
    /// may well introduce hazards; the game reverts them. What must never
    /// break is the equivalence itself.)
    #[test]
    fn illegal_edits_still_splice_bit_identically(seed in 0u64..1000) {
        let (program, launch) = small_kernel();
        let count = program.instruction_count();
        for gpu in arch_profiles() {
            let compiled = CompiledProgram::compile(&program, &gpu);
            let mut engine = DeltaEngine::for_launch(gpu.clone(), &launch);
            let baseline = engine.record_baseline(&compiled);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut current = program.clone();
            let mut mutated = compiled.clone();
            let mut changed: Vec<usize> = Vec::new();
            for _ in 0..5 {
                let index = rng.gen_range(0..count);
                let edit = match rng.gen_range(0..4) {
                    0 => {
                        let from = current
                            .instruction(index)
                            .map(|i| i.control().stall())
                            .unwrap_or(0);
                        ScheduleEdit::SetStall { index, from, to: rng.gen_range(0..16u8) }
                    }
                    1 => ScheduleEdit::SetWait {
                        index,
                        barrier: rng.gen_range(0..sass::NUM_BARRIERS),
                        on: rng.gen_range(0..2) == 0,
                    },
                    2 => ScheduleEdit::ToggleReuse { index, operand: rng.gen_range(0..4) },
                    _ => ScheduleEdit::Swap { upper: rng.gen_range(0..count - 1) },
                };
                if !edit.apply(&mut current) {
                    // Unapplicable edits (e.g. reuse on an immediate) must
                    // reject without panicking and change nothing.
                    continue;
                }
                edit.apply_to_compiled(&mut mutated, &current, &gpu);
                for index in edit.touched_indices() {
                    if let Err(at) = changed.binary_search(&index) {
                        changed.insert(at, index);
                    }
                }
                let (report, _) = engine.simulate_delta(&baseline, &mutated, &changed);
                let full = full_sim(&gpu, &CompiledProgram::compile(&current, &gpu), &launch);
                prop_assert_eq!(&report, &full, "arch {} after {:?}", gpu.name, edit);
            }
        }
    }
}
