//! Cross-crate integration tests: the full pipeline from kernel spec through
//! the Triton-like compiler, the cubin interception, the assembly game and
//! the optimizer back to an optimized cubin.

use cuasmrl::{analyze, embed_program, CuAsmRl, StallTable, Strategy};
use gpusim::{measure, simulate_launch, GpuConfig, MeasureOptions};
use kernels::{
    generate, Autotuner, ConfigSpace, KernelConfig, KernelKind, KernelSpec, ScheduleStyle,
    TritonPipeline,
};
use rl::Env;

fn fast_measure() -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 2,
        noise_std: 0.0,
        seed: 0,
    }
}

#[test]
fn end_to_end_hierarchical_optimization_produces_a_verified_faster_cubin() {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let optimizer = CuAsmRl::new(GpuConfig::small(), Strategy::Greedy { max_moves: 10 });
    let (report, cubin) = optimizer.optimize_spec(&spec, &ConfigSpace::small(), &fast_measure());
    assert!(report.verified);
    assert!(report.speedup >= 1.0);
    // The optimized cubin still contains the kernel and decodes to the
    // optimized listing.
    let program = cubin.kernel_program(&report.kernel).unwrap();
    assert_eq!(program.to_string(), report.optimized_listing);
}

#[test]
fn optimized_schedule_matches_baseline_outputs_for_every_kernel_kind() {
    // Probabilistic testing across the whole suite: the best schedule found
    // by a short greedy search computes the same outputs as the -O3 one.
    let gpu = GpuConfig::small();
    for kind in KernelKind::all() {
        let spec = KernelSpec::scaled(kind, 16);
        let config = if kind.is_compute_bound() {
            KernelConfig {
                block_m: 32,
                block_n: 32,
                block_k: 32,
                num_warps: 4,
                num_stages: 2,
            }
        } else {
            KernelConfig {
                block_m: 1,
                block_n: 512,
                block_k: 1,
                num_warps: 4,
                num_stages: 1,
            }
        };
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        let baseline = simulate_launch(&gpu, &kernel.program, &kernel.launch);
        let optimizer = CuAsmRl::new(gpu.clone(), Strategy::Greedy { max_moves: 6 });
        let report =
            optimizer.optimize_program(&kernel.name, kernel.program, kernel.launch.clone());
        assert!(report.verified, "{kind:?} must verify");
        let optimized: sass::Program = report.optimized_listing.parse().unwrap();
        let run = simulate_launch(&gpu, &optimized, &kernel.launch);
        assert_eq!(run.sm.hazards, 0, "{kind:?}");
        assert_eq!(run.sm.output_digest, baseline.sm.output_digest, "{kind:?}");
        assert!(
            report.optimized_us <= report.baseline_us * 1.0001,
            "{kind:?}"
        );
    }
}

#[test]
fn autotuner_plus_analysis_plus_embedding_compose() {
    let spec = KernelSpec::scaled(KernelKind::Softmax, 16);
    let tuner = Autotuner::new(GpuConfig::small()).with_options(fast_measure());
    let tuning = tuner.tune(&spec, &KernelKind::Softmax.config_space());
    let pipeline = TritonPipeline::new(GpuConfig::small());
    let compiled = pipeline.compile(&spec, &tuning.best);
    let program = compiled.cubin.kernel_program(&compiled.name).unwrap();
    let analysis = analyze(&program, &StallTable::builtin_a100());
    assert!(!analysis.memory_indices.is_empty());
    let embedding = embed_program(&program, &analysis, &GpuConfig::small().arch);
    assert_eq!(embedding.rows(), program.instruction_count());
    assert_eq!(embedding.cols(), cuasmrl::feature_count(&analysis));
}

#[test]
fn assembly_game_is_a_well_behaved_rl_environment() {
    let spec = KernelSpec::scaled(KernelKind::BatchMatmul, 16);
    let config = KernelConfig {
        block_m: 32,
        block_n: 32,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    let mut game = cuasmrl::AssemblyGame::new(
        GpuConfig::small(),
        kernel.program,
        kernel.launch,
        StallTable::builtin_a100(),
        cuasmrl::GameConfig::default(),
    );
    let obs = game.reset();
    assert_eq!(obs.cols(), game.observation_features());
    // Take a handful of masked actions; the game must never report a
    // corrupted schedule as an improvement.
    for _ in 0..6 {
        let mask = game.action_mask();
        let Some(action) = mask.iter().position(|&m| m) else {
            break;
        };
        let step = game.step(action);
        assert!(step.reward.is_finite());
        if step.done {
            break;
        }
    }
    let (best, runtime) = game.best();
    assert!(runtime <= game.initial_runtime_us());
    let m = measure(&GpuConfig::small(), best, &kernel_launch(), &fast_measure());
    assert_eq!(m.run.sm.hazards, 0);

    fn kernel_launch() -> gpusim::LaunchConfig {
        let spec = KernelSpec::scaled(KernelKind::BatchMatmul, 16);
        let config = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        generate(&spec, &config, ScheduleStyle::Baseline).launch
    }
}

#[test]
fn microbenchmarked_stall_table_feeds_the_masker() {
    let table = cuasmrl::microbenchmark_table(&GpuConfig::a100());
    assert_eq!(table.lookup("MOV"), Some(4));
    assert_eq!(table.lookup("IMAD.WIDE"), Some(5));
    let spec = KernelSpec::scaled(KernelKind::FusedFeedForward, 16);
    let kernel = generate(
        &spec,
        &KernelConfig::default_compute(),
        ScheduleStyle::Baseline,
    );
    let analysis = analyze(&kernel.program, &table);
    assert!(!analysis.movable_memory_indices().is_empty());
}
