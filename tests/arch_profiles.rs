//! Cross-architecture contracts of the pluggable GPU backends.
//!
//! * The **Ampere profile is the pre-refactor simulator, bit for bit**: the
//!   golden numbers below were captured from the hard-coded single-arch
//!   simulator immediately before `ArchSpec` was introduced.
//! * The Turing- and Hopper-like profiles are behaviourally distinct but
//!   run the same contracts: hazard-free baselines over every registry
//!   suite, compiled ≡ reference interpretation, and `jobs = N ≡ jobs = 1`
//!   suite determinism.

use cuasmrl::{GameConfig, Strategy, SuiteOptimizer};
use gpusim::{
    measure, simulate_launch, ArchSpec, ConstantBank, GpuConfig, LaunchConfig, MeasureOptions,
    SmSimulator,
};
use kernels::{generate, workload_suites, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};

const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";

fn fast_measure() -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 3,
        noise_std: 0.0,
        seed: 0,
    }
}

fn test_config(kind: KernelKind) -> KernelConfig {
    if kind.is_compute_bound() {
        KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        }
    } else {
        KernelConfig {
            block_m: 1,
            block_n: 512,
            block_k: 1,
            num_warps: 4,
            num_stages: 1,
        }
    }
}

fn golden_kernel(gpu: &GpuConfig, kind: KernelKind) -> gpusim::Measurement {
    let spec = KernelSpec::scaled(kind, 16);
    let kernel = generate(&spec, &test_config(kind), ScheduleStyle::Baseline);
    measure(gpu, &kernel.program, &kernel.launch, &fast_measure())
}

/// Golden outputs captured from the pre-`ArchSpec` simulator: the Ampere
/// profile must reproduce them exactly — cycles, issue counts, bank
/// conflicts, output digests and the f64 runtime bit patterns.
#[test]
fn ampere_profile_is_bit_identical_to_the_pre_refactor_simulator() {
    let program: sass::Program = SAMPLE.parse().unwrap();

    let a100 = simulate_launch(&GpuConfig::a100(), &program, &LaunchConfig::default());
    assert_eq!(a100.sm.cycles, 483);
    assert_eq!(a100.sm.instructions_issued, 20);
    assert_eq!(a100.sm.output_digest, 0x69ec3d92bdf65a03);
    assert_eq!(a100.runtime_us.to_bits(), 0x3fd5ec6438a5953e);

    let small = simulate_launch(&GpuConfig::small(), &program, &LaunchConfig::default());
    assert_eq!(small.sm.cycles, 163);
    assert_eq!(small.sm.instructions_issued, 20);
    assert_eq!(small.sm.output_digest, 0x69ec3d92bdf65a03);
    assert_eq!(small.runtime_us.to_bits(), 0x3fc4dd2f1a9fbe77);

    let mm = golden_kernel(&GpuConfig::a100(), KernelKind::MatmulLeakyRelu);
    assert_eq!(mm.run.sm.cycles, 1522);
    assert_eq!(mm.run.sm.instructions_issued, 356);
    assert_eq!(mm.run.sm.bank_conflict_cycles, 104);
    assert_eq!(mm.run.sm.output_digest, 0x38a071fc4bd124ed);
    assert_eq!(mm.mean_us.to_bits(), 0x3ff1455b24acd86b);

    let sm = golden_kernel(&GpuConfig::a100(), KernelKind::Softmax);
    assert_eq!(sm.run.sm.cycles, 731);
    assert_eq!(sm.run.sm.bank_conflict_cycles, 32);
    assert_eq!(sm.run.sm.output_digest, 0xa6bf21c75f0a3ae4);
    assert_eq!(sm.mean_us.to_bits(), 0x3fe0970ee3503fe9);

    let mm_small = golden_kernel(&GpuConfig::small(), KernelKind::MatmulLeakyRelu);
    assert_eq!(mm_small.run.sm.cycles, 669);
    assert_eq!(mm_small.mean_us.to_bits(), 0x3fe56872b020c49c);
    let sm_small = golden_kernel(&GpuConfig::small(), KernelKind::Softmax);
    assert_eq!(sm_small.run.sm.cycles, 304);
    assert_eq!(sm_small.mean_us.to_bits(), 0x3fe374bc6a7ef9db);
}

/// The three profiles are behaviourally distinct: the same schedule under
/// the same launch takes a different number of cycles on each backend, while
/// producing the same (architecture-independent) functional output.
#[test]
fn profiles_time_the_same_schedule_differently_but_agree_functionally() {
    let program: sass::Program = SAMPLE.parse().unwrap();
    let launch = LaunchConfig::default();
    let runs: Vec<(&str, gpusim::KernelRun)> = [
        ("ampere", GpuConfig::a100()),
        ("turing", GpuConfig::turing()),
        ("hopper", GpuConfig::hopper()),
    ]
    .into_iter()
    .map(|(name, gpu)| (name, simulate_launch(&gpu, &program, &launch)))
    .collect();
    for (name, run) in &runs {
        assert_eq!(run.sm.hazards, 0, "{name}");
        assert_eq!(run.sm.output_digest, runs[0].1.sm.output_digest, "{name}");
    }
    assert_ne!(runs[0].1.sm.cycles, runs[1].1.sm.cycles);
    assert_ne!(runs[0].1.sm.cycles, runs[2].1.sm.cycles);
    assert_ne!(runs[1].1.sm.cycles, runs[2].1.sm.cycles);
}

/// Every registry suite entry generates a hazard-free, verifying baseline on
/// all three architecture profiles (the contract the fig6 `--arch`/`--suite`
/// matrix relies on).
#[test]
fn registry_baselines_are_hazard_free_on_every_profile() {
    for gpu in [GpuConfig::a100(), GpuConfig::turing(), GpuConfig::hopper()] {
        for suite in workload_suites() {
            for spec in suite.specs(64) {
                let kernel = generate(&spec, &test_config(spec.kind), ScheduleStyle::Baseline);
                let run = simulate_launch(&gpu, &kernel.program, &kernel.launch);
                assert!(
                    run.sm.completed,
                    "{}/{}/{} did not complete",
                    gpu.arch.name,
                    suite.name,
                    spec.kind.name()
                );
                assert_eq!(
                    run.sm.hazards,
                    0,
                    "{}/{}/{} baseline has hazards",
                    gpu.arch.name,
                    suite.name,
                    spec.kind.name()
                );
            }
        }
    }
}

/// The pre-decoded interpreter and the reference interpreter stay
/// bit-identical under every architecture backend, not just Ampere.
#[test]
fn compiled_matches_reference_on_every_profile() {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let kernel = generate(
        &spec,
        &test_config(KernelKind::MatmulLeakyRelu),
        ScheduleStyle::Baseline,
    );
    for arch in [ArchSpec::ampere(), ArchSpec::turing(), ArchSpec::hopper()] {
        let name = arch.name.clone();
        let sim = SmSimulator::new(GpuConfig::small_with_arch(arch));
        let constants = kernel.launch.constant_bank();
        let fast = sim.run(&kernel.program, 4, 0, &constants, 1_000_000);
        let reference = sim.run_reference(&kernel.program, 4, 0, &constants, 1_000_000);
        assert_eq!(fast.report, reference.report, "{name}");
        assert_eq!(
            fast.memory.global_digest(),
            reference.memory.global_digest(),
            "{name}"
        );
    }
    // And the sample program under the full-size profiles.
    let program: sass::Program = SAMPLE.parse().unwrap();
    for gpu in [GpuConfig::turing(), GpuConfig::hopper()] {
        let name = gpu.arch.name.clone();
        let sim = SmSimulator::new(gpu);
        let constants = ConstantBank::new();
        let fast = sim.run(&program, 2, 0, &constants, 1_000_000);
        let reference = sim.run_reference(&program, 2, 0, &constants, 1_000_000);
        assert_eq!(fast.report, reference.report, "{name}");
    }
}

/// `jobs = N ≡ jobs = 1` holds per architecture: sharding the suite across
/// workers never changes a report, whichever backend is being optimized.
#[test]
fn suite_optimization_is_job_count_invariant_per_arch() {
    let specs = [
        KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16),
        KernelSpec::scaled(KernelKind::Softmax, 16),
    ];
    for arch in [ArchSpec::ampere(), ArchSpec::turing(), ArchSpec::hopper()] {
        let gpu = GpuConfig::small_with_arch(arch);
        let run = |jobs: usize| {
            SuiteOptimizer::new(gpu.clone(), Strategy::Greedy { max_moves: 3 })
                .with_jobs(jobs)
                .with_seed(7)
                .with_tune_options(fast_measure())
                .with_config_space(kernels::ConfigSpace::small())
                .with_game_config(GameConfig {
                    episode_length: 6,
                    measure: fast_measure(),
                    ..GameConfig::default()
                })
                .optimize(&specs)
        };
        let serial = run(1);
        let sharded = run(2);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&sharded).unwrap(),
            "jobs=2 diverged from jobs=1 on {}",
            gpu.arch.name
        );
    }
}
