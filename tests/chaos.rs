//! The deterministic chaos harness: every fault a [`cuasmrld::FaultPlan`]
//! can inject — store I/O errors, decode corruption, worker panics, slow
//! workers racing deadlines — must resolve to a typed response or a healed
//! retry, never a hang or a changed answer. Faults are keyed on request
//! ordinals and requests are sent sequentially from one client, so every
//! run exercises exactly the same failure at exactly the same request.

use std::path::PathBuf;
use std::time::Duration;

use cuasmrl::Strategy;
use cuasmrld::{
    Client, ClientBuilder, ErrorCode, FaultKind, FaultPlan, InjectedFault, OptimizeRequest,
    OptimizeResponse, RetryPolicy, ScheduleStore, Server, ServerConfig, PROTOCOL_VERSION,
};
use gpusim::MeasureOptions;

fn temp_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cuasmrld-chaos-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn fast_config(store_dir: &PathBuf) -> ServerConfig {
    let fast_measure = MeasureOptions {
        warmup: 0,
        repeats: 2,
        noise_std: 0.0,
        seed: 0,
    };
    let mut config = ServerConfig::new(store_dir);
    config.scale = 16;
    config.tune_options = fast_measure.clone();
    config.game_config = cuasmrl::GameConfig {
        episode_length: 8,
        measure: fast_measure,
        ..cuasmrl::GameConfig::default()
    };
    config.strategy = Strategy::Greedy { max_moves: 4 };
    config
}

fn expect_ok(response: OptimizeResponse) -> cuasmrld::OptimizeResult {
    match response {
        OptimizeResponse::Ok(result) => result,
        OptimizeResponse::Err(error) => panic!("expected Ok, got {error}"),
        OptimizeResponse::Status(_) => panic!("expected Ok, got a status answer"),
    }
}

fn expect_err(response: OptimizeResponse) -> cuasmrld::ServiceError {
    match response {
        OptimizeResponse::Ok(result) => {
            panic!("expected a typed error, got Ok for {}", result.kernel)
        }
        OptimizeResponse::Err(error) => error,
        OptimizeResponse::Status(_) => panic!("expected a typed error, got a status answer"),
    }
}

fn report_bytes(result: &cuasmrld::OptimizeResult) -> String {
    serde_json::to_string(&result.report).expect("report encodes")
}

#[test]
fn injected_store_faults_heal_by_recompute_without_changing_the_answer() {
    let dir = temp_dir("storefault");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    // Ordinal 0 computes the entry; ordinals 1 and 2 would be store hits,
    // but their lookups are injected to fail two different ways.
    config.fault_plan = Some(FaultPlan::new(vec![
        InjectedFault {
            ordinal: 1,
            kind: FaultKind::StoreReadError,
        },
        InjectedFault {
            ordinal: 2,
            kind: FaultKind::StoreCorrupt,
        },
    ]));
    let server = Server::start(config).expect("daemon starts");
    let client = Client::new(server.local_addr());
    let request = OptimizeRequest::table2("softmax", "ampere");

    let first = expect_ok(client.request(&request).expect("ordinal 0"));
    assert!(!first.from_store && !first.degraded);
    let read_faulted = expect_ok(client.request(&request).expect("ordinal 1"));
    let corrupt_faulted = expect_ok(client.request(&request).expect("ordinal 2"));
    for healed in [&read_faulted, &corrupt_faulted] {
        assert!(!healed.from_store, "a faulted lookup heals by recompute");
        assert!(!healed.degraded);
        assert_eq!(
            report_bytes(healed),
            report_bytes(&first),
            "healing must not change the answer"
        );
    }
    // With the plan exhausted the store answers again.
    let calm = expect_ok(client.request(&request).expect("ordinal 3"));
    assert!(calm.from_store);
    assert_eq!(report_bytes(&calm), report_bytes(&first));

    let status = client.status().expect("status probe");
    assert_eq!(status.protocol_version, PROTOCOL_VERSION);
    assert!(status.stats.injected_faults > 0, "faults were counted");
    assert_eq!(status.stats.requests, 4);
    assert_eq!(status.stats.computed, 3, "two heals recomputed");
    assert_eq!(status.stats.worker_panics, 0);
    assert!(!status.draining);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_injected_worker_panic_is_isolated_and_the_retry_heals() {
    let dir = temp_dir("panic");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    // One worker: if the panic killed the thread, the pool would be dead
    // and the retry below would hang instead of healing.
    config.workers = 1;
    config.fault_plan = Some(FaultPlan::new(vec![InjectedFault {
        ordinal: 0,
        kind: FaultKind::WorkerPanic,
    }]));
    let server = Server::start(config).expect("daemon starts");
    let client = Client::new(server.local_addr());
    let request = OptimizeRequest::table2("rmsnorm", "ampere");

    let error = expect_err(client.request(&request).expect("a typed reply, not a drop"));
    assert_eq!(error.code, ErrorCode::Internal);
    assert!(
        error.message.contains("recovered"),
        "the panic reply is sanitized: {}",
        error.message
    );

    // The same pool — the same single worker thread — serves the retry.
    let healed = expect_ok(
        client
            .request_with_retry(&request, &RetryPolicy::quick())
            .expect("retry heals"),
    );
    assert!(!healed.degraded);
    assert!(healed.report.verified);

    let status = client.status().expect("status probe");
    assert_eq!(status.stats.worker_panics, 1);
    assert_eq!(status.stats.computed, 1);
    assert_eq!(status.workers, 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_deadline_preempts_a_stalled_search_and_the_resume_reaches_the_full_answer() {
    let dir = temp_dir("preempt");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.strategy = Strategy::Rl(rl::PpoConfig {
        total_steps: 96,
        rollout_steps: 24,
        ..rl::PpoConfig::tiny()
    });
    config.workers = 1;
    config.checkpoint_updates = 1;
    // The stall dwarfs the deadline: the request's token fires mid-stall
    // and the search is preempted before finishing.
    config.fault_plan = Some(FaultPlan::new(vec![InjectedFault {
        ordinal: 0,
        kind: FaultKind::SlowWorker { stall_ms: 30_000 },
    }]));
    let server = Server::start(config.clone()).expect("daemon starts");
    let client = Client::new(server.local_addr());
    let mut deadlined = OptimizeRequest::table2("softmax", "ampere");
    deadlined.deadline_ms = Some(400);

    let partial = expect_ok(client.request(&deadlined).expect("degraded answer"));
    assert!(partial.degraded, "a preempted search answers best-so-far");
    assert!(!partial.from_store);

    // The degraded answer was never persisted, but the checkpoint was.
    let canonical = deadlined
        .canonicalize(&config.defaults())
        .expect("canonical");
    let key = cuasmrld::RequestKey::of(&canonical);
    {
        let store = ScheduleStore::open(&dir, 8).expect("open store");
        assert!(
            store.checkpoint_path(&key).exists(),
            "preemption persists the training checkpoint"
        );
        assert!(
            store.get(&key).expect("store readable").is_none(),
            "degraded answers never enter the store"
        );
    }
    let status = client.status().expect("status probe");
    assert_eq!(status.stats.preempted, 1);
    assert_eq!(status.stats.degraded, 1);

    // Re-asked without the deadline (and past the fault plan), the search
    // resumes from the checkpoint and converges to the byte-identical
    // answer of an uninterrupted direct run.
    let request = OptimizeRequest::table2("softmax", "ampere");
    let resumed = expect_ok(client.request(&request).expect("resumed answer"));
    assert!(!resumed.degraded && !resumed.from_store);
    let suite = config.suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer = suite.optimizer_for(&canonical.spec);
    let (direct, _cubin, _telemetry) = optimizer.optimize_spec_instrumented(
        &canonical.spec,
        &suite.config_space_for(&canonical.spec),
        suite.tune_options(),
    );
    assert_eq!(
        serde_json::to_string(&resumed.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "checkpoint resume must converge to the uninterrupted answer"
    );
    {
        let store = ScheduleStore::open(&dir, 8).expect("open store");
        assert!(
            !store.checkpoint_path(&key).exists(),
            "a finished session cleans its checkpoint up"
        );
    }
    let warm = expect_ok(client.request(&request).expect("warm repeat"));
    assert!(warm.from_store);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_mid_burst_then_restart_completes_the_workload_byte_identically() {
    let kernels = ["softmax", "rmsnorm", "bmm", "fused_ff"];

    // Control: the same workload against an undisturbed daemon.
    let control_dir = temp_dir("drain-control");
    let _ = std::fs::remove_dir_all(&control_dir);
    let control: Vec<String> = {
        let server = Server::start(fast_config(&control_dir)).expect("control daemon");
        let client = Client::new(server.local_addr());
        let reports = kernels
            .iter()
            .map(|kernel| {
                report_bytes(&expect_ok(
                    client
                        .request(&OptimizeRequest::table2(*kernel, "ampere"))
                        .expect("control request"),
                ))
            })
            .collect();
        server.shutdown();
        reports
    };

    // Chaos: fire the burst concurrently and drain the daemon mid-flight.
    let dir = temp_dir("drain");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.workers = 2;
    let server = Server::start(config.clone()).expect("daemon starts");
    let addr = server.local_addr();
    let senders: Vec<_> = kernels
        .iter()
        .map(|kernel| {
            let request = OptimizeRequest::table2(*kernel, "ampere");
            std::thread::spawn(move || {
                Client::new(addr)
                    .with_timeout(Duration::from_secs(30))
                    .request(&request)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    for sender in senders {
        // Every burst request resolves — to a full answer, a degraded
        // preempted answer, a typed Busy, or a visible connection error a
        // retrying client would handle. Never a hang.
        match sender.join().expect("sender thread finishes") {
            Ok(OptimizeResponse::Ok(_)) => {}
            Ok(OptimizeResponse::Err(error)) => assert_eq!(error.code, ErrorCode::Busy),
            Ok(OptimizeResponse::Status(_)) => panic!("burst requests never answer status"),
            Err(_io_error_retried_below) => {}
        }
    }

    // Restart on the same store: the full workload completes with answers
    // byte-identical to the undisturbed control.
    let server = Server::start(config).expect("restarted daemon");
    let client = Client::new(server.local_addr());
    for (kernel, control_report) in kernels.iter().zip(&control) {
        let result = expect_ok(
            client
                .request_with_retry(
                    &OptimizeRequest::table2(*kernel, "ampere"),
                    &RetryPolicy::quick(),
                )
                .expect("post-restart request"),
        );
        assert!(!result.degraded);
        assert_eq!(
            report_bytes(&result),
            *control_report,
            "{kernel}: the restarted daemon must reproduce the control answer"
        );
    }
    assert!(!client.status().expect("status").draining);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}

#[test]
fn a_slow_worker_stall_on_one_pipelined_request_never_delays_another() {
    let dir = temp_dir("pipestall");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    // Two workers and a long stall injected at the first request: if the
    // session serialized its pipeline behind the stalled worker — or the
    // response demux blocked on in-order completion — B's answer could not
    // arrive while A is still stalled.
    config.workers = 2;
    config.fault_plan = Some(FaultPlan::new(vec![InjectedFault {
        ordinal: 0,
        kind: FaultKind::SlowWorker { stall_ms: 2_500 },
    }]));
    let server = Server::start(config).expect("daemon starts");
    let connection = ClientBuilder::new(server.local_addr())
        .connect()
        .expect("session connects");

    let slow = connection
        .submit(&OptimizeRequest::table2("softmax", "ampere"))
        .expect("submit A");
    // Give the pool a beat to pick A up, then pipeline B behind it on the
    // same connection.
    std::thread::sleep(Duration::from_millis(150));
    let fast = connection
        .submit(&OptimizeRequest::table2("bmm", "ampere"))
        .expect("submit B");

    // B completes while A is still mid-stall: out-of-order delivery on one
    // session is what keeps one bad request from convoying the rest.
    let quick = expect_ok(
        fast.wait_timeout(Duration::from_millis(1_500))
            .expect("B answers while A stalls"),
    );
    assert_eq!(quick.kernel, "bmm");
    assert!(!quick.degraded);

    // A eventually finishes too — stalled, not lost.
    let stalled = expect_ok(
        slow.wait_timeout(Duration::from_secs(30))
            .expect("A answers"),
    );
    assert_eq!(stalled.kernel, "softmax");
    assert!(!stalled.degraded, "no deadline was set, so no preemption");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_seeded_fault_storm_resolves_every_request_with_a_retrying_client() {
    let dir = temp_dir("storm");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    // Seeded, bounded chaos over the first 12 ordinals: same seed, same
    // storm, every run.
    config.fault_plan = Some(FaultPlan::seeded(0xC6A0, 6, 12));
    config.workers = 2;
    let server = Server::start(config).expect("daemon starts");
    let client = Client::new(server.local_addr()).with_timeout(Duration::from_secs(30));
    let policy = RetryPolicy::quick();

    let mut baseline: Vec<(u64, String)> = Vec::new();
    for round in 0..3u64 {
        for (i, kernel) in ["softmax", "rmsnorm", "bmm", "fused_ff"].iter().enumerate() {
            let mut request = OptimizeRequest::table2(*kernel, "ampere");
            request.seed = Some(i as u64);
            let result = expect_ok(
                client
                    .request_with_retry(&request, &policy)
                    .expect("the storm resolves every request"),
            );
            assert!(!result.degraded, "no deadlines set, so no preemption");
            if round == 0 {
                baseline.push((i as u64, report_bytes(&result)));
            } else {
                let (_, expected) = &baseline[i];
                assert_eq!(
                    report_bytes(&result),
                    *expected,
                    "{kernel}: answers stay identical through the storm"
                );
            }
        }
    }
    let status = client.status().expect("status probe");
    assert!(status.stats.injected_faults > 0, "the storm actually fired");
    assert_eq!(status.stats.requests, 12 + status.stats.worker_panics);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
