//! The delta engine's core contract: incremental re-simulation is
//! **bit-identical to full simulation by construction**, on every built-in
//! architecture profile, across random mutation sequences — both
//! masked-legal swaps (what the assembly game evaluates) and arbitrary
//! adjacent swaps (including hazard-introducing ones the mask would have
//! rejected).

use std::sync::Arc;

use cuasmrl::{
    action_mask, analyze, Action, AssemblyGame, Direction, EvalCache, GameConfig, StallTable,
};
use gpusim::{
    measure, CompiledProgram, DeltaEngine, GpuConfig, LaunchConfig, MeasureOptions, Measurement,
};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rl::Env;
use sass::Program;

fn measure_options() -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 3,
        noise_std: 0.0,
        seed: 0,
    }
}

fn small_kernel() -> (Program, LaunchConfig) {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let config = KernelConfig {
        block_m: 32,
        block_n: 32,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    (kernel.program, kernel.launch)
}

fn arch_profiles() -> Vec<GpuConfig> {
    ["ampere", "turing", "hopper"]
        .iter()
        .map(|name| GpuConfig::by_name(name).expect("built-in profile"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary adjacent-swap sequences — legal or not — evaluated through
    /// the delta engine match a from-scratch full simulation bit for bit on
    /// every architecture profile. Each step of the walk diffs the *whole*
    /// accumulated mutation set against the recorded baseline (exactly what
    /// a game episode without re-baselining does).
    #[test]
    fn random_mutation_walks_are_bit_identical_across_profiles(seed in 0u64..1000) {
        let (program, launch) = small_kernel();
        for gpu in arch_profiles() {
            let compiled = CompiledProgram::compile(&program, &gpu);
            let mut engine = DeltaEngine::for_launch(gpu.clone(), &launch);
            let baseline = engine.record_baseline(&compiled);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut mutated_program = program.clone();
            let mut mutated = compiled.clone();
            let mut changed: Vec<usize> = Vec::new();
            for _ in 0..5 {
                let upper = rng.gen_range(0..compiled.len() - 1);
                mutated_program.swap_instructions(upper, upper + 1).unwrap();
                mutated.swap_insts(upper, upper + 1);
                for index in [upper, upper + 1] {
                    if let Err(at) = changed.binary_search(&index) {
                        changed.insert(at, index);
                    }
                }
                // `changed` conservatively over-approximates the diff (an
                // index swapped back still counts) — allowed by contract.
                let (report, _) = engine.simulate_delta(&baseline, &mutated, &changed);
                let full = gpusim::SmSimulator::new(gpu.clone()).run_compiled(
                    &mutated,
                    gpusim::resident_warps(&gpu, &launch),
                    0,
                    &launch.constant_bank(),
                    launch.max_cycles,
                );
                prop_assert_eq!(report, full.report, "arch {}", gpu.name);
            }
        }
    }

    /// Masked-legal random walks through a real game: every reward-path
    /// measurement the delta session produces equals `gpusim::measure` on
    /// the same schedule, bit for bit, so the shared eval cache stays
    /// transparent with delta evaluation on.
    #[test]
    fn game_measurements_match_full_measure_on_legal_walks(seed in 0u64..1000) {
        let (program, launch) = small_kernel();
        let gpu = GpuConfig::small();
        let table = StallTable::builtin_a100();
        let game_config = GameConfig {
            episode_length: 8,
            measure: measure_options(),
            ..GameConfig::default()
        };
        let mut game = AssemblyGame::new(
            gpu.clone(),
            program.clone(),
            launch.clone(),
            table.clone(),
            game_config,
        );
        let _ = game.reset();
        let mut reference = program.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..6 {
            let mask = game.action_mask();
            let legal: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &m)| m.then_some(i))
                .collect();
            if legal.is_empty() {
                break;
            }
            let action_id = legal[rng.gen_range(0..legal.len())];
            let action = Action::from_id(action_id);
            let analysis = analyze(&reference, &table);
            let movable = analysis.movable_memory_indices();
            let index = movable[action.slot];
            let (a, b) = match action.direction {
                Direction::Up => (index - 1, index),
                Direction::Down => (index, index + 1),
            };
            let step = game.step(action_id);
            // Mirror the accepted swap on the reference program (legal
            // actions are never reverted) and compare the reward the game
            // computed from its delta measurement against a from-scratch
            // measurement of the same schedule.
            reference.swap_instructions(a, b).unwrap();
            let full = measure(&gpu, &reference, &launch, &measure_options());
            let cached = game.cached_measurement(&reference);
            prop_assert_eq!(&cached, &full);
            prop_assert!(step.reward.is_finite());
        }
    }
}

/// The mask computed incrementally after each accepted swap equals the
/// from-scratch `action_mask` of the mutated schedule (the game asserts
/// nothing itself — this pins the equivalence the incremental path relies
/// on, over many random legal walks).
#[test]
fn incremental_masks_equal_full_recomputation_along_legal_walks() {
    let (program, launch) = small_kernel();
    let gpu = GpuConfig::small();
    let table = StallTable::builtin_a100();
    let mut game = AssemblyGame::new(
        gpu,
        program.clone(),
        launch,
        table.clone(),
        GameConfig {
            episode_length: 32,
            measure: measure_options(),
            ..GameConfig::default()
        },
    );
    for seed in 0..4u64 {
        let _ = game.reset();
        let mut reference = program.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..8 {
            let mask = game.action_mask();
            let analysis = analyze(&reference, &table);
            let movable = analysis.movable_memory_indices();
            let mut expected = action_mask(&reference, &movable, &analysis, &table);
            expected.resize(mask.len().max(1), false);
            assert_eq!(mask, expected, "seed {seed}");
            let legal: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter_map(|(i, &m)| m.then_some(i))
                .collect();
            if legal.is_empty() {
                break;
            }
            let action_id = legal[rng.gen_range(0..legal.len())];
            let action = Action::from_id(action_id);
            let index = movable[action.slot];
            let (a, b) = match action.direction {
                Direction::Up => (index - 1, index),
                Direction::Down => (index, index + 1),
            };
            let _ = game.step(action_id);
            reference.swap_instructions(a, b).unwrap();
        }
    }
}

/// Sharing one eval cache across games (the `VecEnv` / suite pattern) with
/// delta evaluation on cannot change a single observable value: a game
/// using a warm shared cache steps bit-identically to a game simulating
/// everything itself.
#[test]
fn shared_cache_and_fresh_cache_games_step_identically() {
    let (program, launch) = small_kernel();
    let gpu = GpuConfig::small();
    let table = StallTable::builtin_a100();
    let config = GameConfig {
        episode_length: 8,
        measure: measure_options(),
        ..GameConfig::default()
    };
    let shared = Arc::new(EvalCache::new());
    let mut warm = AssemblyGame::with_eval_cache(
        gpu.clone(),
        program.clone(),
        launch.clone(),
        table.clone(),
        config.clone(),
        Arc::clone(&shared),
    );
    // Warm the shared cache with one full episode.
    let _ = warm.reset();
    loop {
        let mask = warm.action_mask();
        let Some(action) = mask.iter().position(|&m| m) else {
            break;
        };
        if warm.step(action).done {
            break;
        }
    }
    let mut cached_game = AssemblyGame::with_eval_cache(
        gpu.clone(),
        program.clone(),
        launch.clone(),
        table.clone(),
        config.clone(),
        shared,
    );
    let mut fresh_game = AssemblyGame::new(gpu, program, launch, table, config);
    let mut obs_a = cached_game.reset();
    let mut obs_b = fresh_game.reset();
    loop {
        assert_eq!(obs_a, obs_b);
        assert_eq!(cached_game.action_mask(), fresh_game.action_mask());
        let mask = cached_game.action_mask();
        let Some(action) = mask.iter().position(|&m| m) else {
            break;
        };
        let a = cached_game.step(action);
        let b = fresh_game.step(action);
        assert_eq!(a.reward.to_bits(), b.reward.to_bits());
        assert_eq!(a.done, b.done);
        obs_a = a.observation;
        obs_b = b.observation;
        if a.done {
            break;
        }
    }
}

/// Delta-session measurements populate the shared cache with values other
/// consumers would have computed in full: the measurement a suite-style
/// `get_or_insert_with` sees after a game ran is the `measure` value.
#[test]
fn delta_populated_cache_entries_equal_full_measurements() {
    let (program, launch) = small_kernel();
    let gpu = GpuConfig::small();
    let table = StallTable::builtin_a100();
    let cache = Arc::new(EvalCache::new());
    let mut game = AssemblyGame::with_eval_cache(
        gpu.clone(),
        program.clone(),
        launch.clone(),
        table,
        GameConfig {
            episode_length: 6,
            measure: measure_options(),
            ..GameConfig::default()
        },
        Arc::clone(&cache),
    );
    let _ = game.reset();
    let mut schedules: Vec<Program> = vec![program.clone()];
    let mut reference = program;
    for _ in 0..6 {
        let mask = game.action_mask();
        let Some(action_id) = mask.iter().position(|&m| m) else {
            break;
        };
        let action = Action::from_id(action_id);
        let analysis = analyze(&reference, &StallTable::builtin_a100());
        let movable = analysis.movable_memory_indices();
        let index = movable[action.slot];
        let (a, b) = match action.direction {
            Direction::Up => (index - 1, index),
            Direction::Down => (index, index + 1),
        };
        let _ = game.step(action_id);
        reference.swap_instructions(a, b).unwrap();
        schedules.push(reference.clone());
    }
    let stats = cache.stats();
    assert!(
        stats.delta_hits + stats.delta_fallbacks > 0,
        "delta engine must have run"
    );
    for schedule in &schedules {
        let key = cuasmrl::eval_key(schedule, &launch, &gpu, &measure_options());
        let cached: Measurement =
            cache.get_or_insert_with(key, || panic!("schedule must already be cached"));
        assert_eq!(cached, measure(&gpu, schedule, &launch, &measure_options()));
    }
}
