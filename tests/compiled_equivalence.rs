//! Differential test of the precompiled-IR fast path: for real generated
//! kernels, the compiled interpreter ([`gpusim::SmSimulator::run`]) must be
//! bit-identical to the instruction-at-a-time reference interpreter
//! ([`gpusim::SmSimulator::run_reference`]) — same reports, same memory
//! image — across kernel kinds, schedule styles and warp counts.

use gpusim::{GpuConfig, SmSimulator};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};

#[test]
fn compiled_interpreter_matches_reference_on_generated_kernels() {
    let simulator = SmSimulator::new(GpuConfig::small());
    for kind in KernelKind::all() {
        let spec = KernelSpec::scaled(kind, 32);
        let config = if kind.is_compute_bound() {
            KernelConfig {
                block_m: 32,
                block_n: 32,
                block_k: 32,
                num_warps: 4,
                num_stages: 2,
            }
        } else {
            KernelConfig {
                block_m: 1,
                block_n: 256,
                block_k: 1,
                num_warps: 4,
                num_stages: 1,
            }
        };
        for style in [ScheduleStyle::Baseline, ScheduleStyle::Expert] {
            let kernel = generate(&spec, &config, style);
            let constants = kernel.launch.constant_bank();
            for warps in [1usize, 4] {
                let fast = simulator.run(&kernel.program, warps, 0, &constants, 2_000_000);
                let reference =
                    simulator.run_reference(&kernel.program, warps, 0, &constants, 2_000_000);
                assert_eq!(
                    fast.report, reference.report,
                    "{kind:?} {style:?} warps={warps}: reports must be bit-identical"
                );
                assert_eq!(
                    fast.memory.global_digest(),
                    reference.memory.global_digest(),
                    "{kind:?} {style:?} warps={warps}: memory must be bit-identical"
                );
            }
        }
    }
}

#[test]
fn compiled_interpreter_matches_reference_after_masked_moves() {
    // The fast path must stay equivalent on *mutated* schedules too — the
    // states the assembly game actually measures.
    use cuasmrl::{action_mask, analyze, Action, Direction, StallTable};

    let kernel = generate(
        &KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 32),
        &KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        },
        ScheduleStyle::Baseline,
    );
    let simulator = SmSimulator::new(GpuConfig::small());
    let table = StallTable::builtin_a100();
    let constants = kernel.launch.constant_bank();
    let mut program = kernel.program.clone();
    let mut rng_state = 5u64;
    let mut next_index = move |n: usize| {
        rng_state = gpusim::splitmix64(rng_state);
        (rng_state % n as u64) as usize
    };
    for round in 0..8 {
        let analysis = analyze(&program, &table);
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        let legal: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect();
        if legal.is_empty() {
            break;
        }
        let action = Action::from_id(legal[next_index(legal.len())]);
        let index = movable[action.slot];
        let (a, b) = match action.direction {
            Direction::Up => (index - 1, index),
            Direction::Down => (index, index + 1),
        };
        program.swap_instructions(a, b).unwrap();

        let fast = simulator.run(&program, 4, 0, &constants, 2_000_000);
        let reference = simulator.run_reference(&program, 4, 0, &constants, 2_000_000);
        assert_eq!(fast.report, reference.report, "round {round}");
        assert_eq!(
            fast.memory.global_digest(),
            reference.memory.global_digest(),
            "round {round}"
        );
    }
}
