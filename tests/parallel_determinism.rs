//! The determinism contract of the parallel engine: for a fixed seed,
//! N-worker results must be bit-identical to 1-worker results, at every
//! layer — `VecEnv` rollouts in `rl` and `SuiteOptimizer` reports in
//! `cuasmrl`.

use cuasmrl::{GameConfig, Strategy, SuiteOptimizer};
use gpusim::{GpuConfig, MeasureOptions};
use kernels::{ConfigSpace, KernelKind, KernelSpec};
use rl::test_envs::BanditEnv;
use rl::{Env, PpoConfig, PpoTrainer, VecAction, VecEnv};

fn fast_measure() -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 2,
        noise_std: 0.0,
        seed: 0,
    }
}

/// A compact bit-exact fingerprint of a rollout buffer.
fn rollout_fingerprint(buffer: &rl::RolloutBuffer) -> Vec<(usize, u32, u32, u32, bool, Vec<u32>)> {
    buffer
        .transitions()
        .iter()
        .map(|t| {
            (
                t.action,
                t.log_prob.to_bits(),
                t.value.to_bits(),
                t.reward.to_bits(),
                t.done,
                t.observation.data().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

#[test]
fn vecenv_rollouts_with_four_workers_match_the_single_worker_path() {
    let collect = |workers: usize| {
        let envs: Vec<BanditEnv> = (0..4).map(|_| BanditEnv::new(6)).collect();
        let mut venv = VecEnv::new(envs, workers);
        let mut trainer = PpoTrainer::new(PpoConfig::tiny(), 3, 3);
        let rollout = trainer.collect_rollouts(&mut venv, 64);
        (
            rollout_fingerprint(&rollout.buffer),
            rollout.segments,
            rollout.buffer.episodic_returns(),
        )
    };
    let single = collect(1);
    let quad = collect(4);
    assert_eq!(single.0, quad.0, "transitions must be bit-identical");
    assert_eq!(single.1, quad.1, "segments must be identical");
    assert_eq!(single.2, quad.2, "episodic returns must be identical");
    assert!(single.0.len() >= 64);
}

#[test]
fn vecenv_honours_the_env_contract_with_bandit_envs() {
    // The contract test of the issue: VecEnv over the reference BanditEnv
    // behaves exactly like the underlying env stepped by hand.
    let mut reference = BanditEnv::new(4);
    let mut venv = VecEnv::new(vec![BanditEnv::new(4)], 1);
    let mut expected_obs = reference.reset();
    for round in 0..10 {
        let action = if round % 3 == 0 { 0 } else { 1 };
        let state = &venv.states()[0];
        assert_eq!(state.observation, expected_obs);
        assert_eq!(state.mask, reference.action_mask());
        let step = reference.step(action);
        let vec_steps = venv.step(&[VecAction::Step(action)]);
        assert_eq!(vec_steps[0].reward, step.reward);
        assert_eq!(vec_steps[0].done, step.done);
        expected_obs = if step.done {
            reference.reset()
        } else {
            step.observation
        };
    }
}

fn suite_driver(jobs: usize, seed: u64) -> SuiteOptimizer {
    SuiteOptimizer::new(
        GpuConfig::small(),
        Strategy::Evolutionary {
            generations: 6,
            mutation_length: 8,
            seed: 0,
        },
    )
    .with_jobs(jobs)
    .with_seed(seed)
    .with_tune_options(fast_measure())
    .with_config_space(ConfigSpace::small())
    .with_game_config(GameConfig {
        episode_length: 8,
        measure: fast_measure(),
        ..GameConfig::default()
    })
}

fn suite_specs() -> Vec<KernelSpec> {
    vec![
        KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 32),
        KernelSpec::scaled(KernelKind::Softmax, 32),
        KernelSpec::scaled(KernelKind::BatchMatmul, 32),
        KernelSpec::scaled(KernelKind::Rmsnorm, 32),
    ]
}

#[test]
fn suite_optimizer_with_four_jobs_matches_the_single_job_path() {
    let single = suite_driver(1, 42).optimize(&suite_specs());
    let quad = suite_driver(4, 42).optimize(&suite_specs());
    // The serialized form captures every field, including the f64 runtimes,
    // with shortest-round-trip formatting — equality here is bit-equality.
    assert_eq!(
        serde_json::to_string_pretty(&single).unwrap(),
        serde_json::to_string_pretty(&quad).unwrap()
    );
    assert_eq!(single.reports.len(), 4);
    assert!(single.reports.iter().all(|r| r.verified));
}

#[test]
fn suite_optimizer_seeds_change_the_search_but_stay_deterministic() {
    let specs = vec![KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 32)];
    let a = suite_driver(2, 1).optimize(&specs);
    let b = suite_driver(2, 1).optimize(&specs);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same seed must reproduce the same suite report"
    );
}

#[test]
fn schedule_cache_round_trips_across_runs() {
    let dir =
        std::env::temp_dir().join(format!("cuasmrl-determinism-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs = suite_specs();
    let first = suite_driver(4, 7).with_cache_dir(&dir).optimize(&specs);
    // A second run (different job count) answers from the cache and returns
    // identical reports.
    let second = suite_driver(2, 7).with_cache_dir(&dir).optimize(&specs);
    assert_eq!(
        serde_json::to_string(&first.reports).unwrap(),
        serde_json::to_string(&second.reports).unwrap()
    );
    let loaded =
        cuasmrl::load_suite_report(&dir, &first.gpu, &first.suite).expect("aggregate persisted");
    assert_eq!(
        serde_json::to_string(&loaded).unwrap(),
        serde_json::to_string(&second).unwrap()
    );
    let _ = std::fs::remove_dir_all(dir);
}
