//! End-to-end contract tests of the `cuasmrld` optimization service: the
//! serving-path determinism contract (a daemon answer is byte-identical to
//! a direct `SuiteOptimizer` run, and repeat answers are byte-identical to
//! each other — across daemon restarts), admission control, deadlines, and
//! the typed rejection paths.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use cuasmrl::Strategy;
use cuasmrld::{
    Client, ErrorCode, OptimizeRequest, OptimizeResponse, ScheduleStore, Server, ServerConfig,
};
use gpusim::MeasureOptions;

fn temp_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cuasmrld-e2e-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A fast daemon configuration: greedy strategy, scaled-down shapes,
/// noise-free two-repeat measurements.
fn fast_config(store_dir: &PathBuf) -> ServerConfig {
    let fast_measure = MeasureOptions {
        warmup: 0,
        repeats: 2,
        noise_std: 0.0,
        seed: 0,
    };
    let mut config = ServerConfig::new(store_dir);
    config.scale = 16;
    config.tune_options = fast_measure.clone();
    config.game_config = cuasmrl::GameConfig {
        episode_length: 8,
        measure: fast_measure,
        ..cuasmrl::GameConfig::default()
    };
    config.strategy = Strategy::Greedy { max_moves: 4 };
    config
}

fn expect_ok(response: OptimizeResponse) -> cuasmrld::OptimizeResult {
    match response {
        OptimizeResponse::Ok(result) => result,
        OptimizeResponse::Err(error) => panic!("expected Ok, got {error}"),
        OptimizeResponse::Status(_) => panic!("expected Ok, got a status answer"),
    }
}

fn expect_err(response: OptimizeResponse) -> cuasmrld::ServiceError {
    match response {
        OptimizeResponse::Ok(result) => {
            panic!("expected a typed error, got Ok for {}", result.kernel)
        }
        OptimizeResponse::Err(error) => error,
        OptimizeResponse::Status(_) => panic!("expected a typed error, got a status answer"),
    }
}

#[test]
fn daemon_answers_match_a_direct_suite_optimizer_run_and_repeat_bytes_are_identical() {
    let dir = temp_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let config = fast_config(&dir);
    let server = Server::start(config.clone()).expect("daemon starts");
    let client = Client::new(server.local_addr());

    let request = OptimizeRequest::table2("softmax", "a100");
    let first = expect_ok(client.request(&request).expect("first request"));
    assert!(!first.from_store, "first exposure must compute");
    assert_eq!(first.kernel, "softmax");
    assert!(first.report.verified);

    // The direct run, built through the same exported constructors the
    // daemon uses: byte-identical reports.
    let canonical = request.canonicalize(&config.defaults()).expect("canonical");
    let suite = config.suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer = suite.optimizer_for(&canonical.spec);
    let (direct, _cubin, _telemetry) = optimizer.optimize_spec_instrumented(
        &canonical.spec,
        &suite.config_space_for(&canonical.spec),
        suite.tune_options(),
    );
    assert_eq!(
        serde_json::to_string(&first.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "daemon answer must be byte-identical to the direct run"
    );

    // Repeats are store hits with byte-identical response frames, and the
    // alias spelling of the same canonical request shares the entry.
    let repeat_a = client.request_bytes(&request).expect("repeat a");
    let repeat_b = client.request_bytes(&request).expect("repeat b");
    assert_eq!(repeat_a, repeat_b, "same request + same store state");
    let aliased = expect_ok(
        client
            .request(&OptimizeRequest::table2("SOFTMAX", "Ampere"))
            .expect("aliased request"),
    );
    assert!(aliased.from_store, "aliases canonicalize onto one entry");
    assert_eq!(server.stats().computed, 1);
    assert!(server.stats().store_hits >= 3);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_store_survives_a_daemon_restart_and_recovers_from_corruption() {
    let dir = temp_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let config = fast_config(&dir);
    let request = OptimizeRequest::table2("rmsnorm", "ampere");

    let warm_bytes = {
        let server = Server::start(config.clone()).expect("first daemon");
        let client = Client::new(server.local_addr());
        let first = expect_ok(client.request(&request).expect("compute"));
        assert!(!first.from_store);
        let bytes = client.request_bytes(&request).expect("warm repeat");
        server.shutdown();
        bytes
    };

    // Second daemon, same store: the repeat is served from disk without
    // recomputing, byte-identical to the pre-restart answer.
    {
        let server = Server::start(config.clone()).expect("second daemon");
        let client = Client::new(server.local_addr());
        let bytes = client.request_bytes(&request).expect("post-restart repeat");
        assert_eq!(bytes, warm_bytes, "restart must not change the answer");
        assert_eq!(server.stats().computed, 0);
        assert_eq!(server.stats().store_hits, 1);
        server.shutdown();
    }

    // Corrupt the entry on disk: the next daemon skips it at open,
    // recomputes on demand, overwrites the damage, and the answer bytes
    // still match (determinism makes recovery invisible).
    let canonical = request.canonicalize(&config.defaults()).expect("canonical");
    let key = cuasmrld::RequestKey::of(&canonical);
    let store = ScheduleStore::open(&dir, 8).expect("open store");
    std::fs::write(store.entry_path(&key), "{ damaged").expect("corrupt entry");
    drop(store);
    {
        let server = Server::start(config).expect("third daemon");
        let client = Client::new(server.local_addr());
        let recomputed = expect_ok(client.request(&request).expect("recompute"));
        assert!(!recomputed.from_store, "damage forces a recompute");
        let bytes = client.request_bytes(&request).expect("healed repeat");
        assert_eq!(bytes, warm_bytes, "recovery must reproduce the answer");
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rl_requests_run_through_the_checkpointing_session_and_match_the_direct_run() {
    let dir = temp_dir("rl");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.strategy = Strategy::Rl(rl::PpoConfig {
        total_steps: 96,
        rollout_steps: 24,
        ..rl::PpoConfig::tiny()
    });
    config.workers = 1;
    let server = Server::start(config.clone()).expect("daemon starts");
    let client = Client::new(server.local_addr());
    let request = OptimizeRequest::table2("softmax", "ampere");
    let served = expect_ok(client.request(&request).expect("rl request"));
    assert!(!served.from_store);

    let canonical = request.canonicalize(&config.defaults()).expect("canonical");
    let suite = config.suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer = suite.optimizer_for(&canonical.spec);
    let (direct, _cubin, _telemetry) = optimizer.optimize_spec_instrumented(
        &canonical.spec,
        &suite.config_space_for(&canonical.spec),
        suite.tune_options(),
    );
    assert_eq!(
        serde_json::to_string(&served.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "the checkpointing session must match the one-shot run"
    );
    // The session cleans its checkpoint up after finishing.
    let key = cuasmrld::RequestKey::of(&canonical);
    let store = ScheduleStore::open(&dir, 8).expect("open store");
    assert!(!store.checkpoint_path(&key).exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_traffic_gets_typed_rejections_not_hangs_or_panics() {
    let dir = temp_dir("reject");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(fast_config(&dir)).expect("daemon starts");
    let client = Client::new(server.local_addr()).with_timeout(Duration::from_secs(10));

    // Not JSON at all.
    let garbage: OptimizeResponse = {
        let raw = client
            .request_raw(b"definitely not json")
            .expect("exchange");
        serde_json::from_str(std::str::from_utf8(&raw).unwrap()).expect("typed response")
    };
    assert_eq!(expect_err(garbage).code, ErrorCode::BadRequest);

    // An oversized length prefix is refused without reading the payload.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        use std::io::Write as _;
        stream
            .write_all(&(cuasmrld::MAX_FRAME_LEN + 1).to_be_bytes())
            .expect("header");
        let mut response = stream;
        response
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let frame = cuasmrld::read_frame(&mut response).expect("error frame");
        let decoded: OptimizeResponse =
            serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(expect_err(decoded).code, ErrorCode::BadRequest);
    }

    // Wrong protocol version and unknown names.
    let mut wrong_version = OptimizeRequest::table2("softmax", "ampere");
    wrong_version.protocol_version = 99;
    assert_eq!(
        expect_err(client.request(&wrong_version).expect("exchange")).code,
        ErrorCode::UnsupportedVersion
    );
    let err = expect_err(
        client
            .request(&OptimizeRequest::table2("conv3d", "ampere"))
            .expect("exchange"),
    );
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.message.contains("conv3d"));
    assert_eq!(
        expect_err(
            client
                .request(&OptimizeRequest::table2("softmax", "pascal"))
                .expect("exchange")
        )
        .code,
        ErrorCode::BadRequest
    );
    assert_eq!(server.stats().computed, 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_full_queue_answers_busy_and_an_expired_deadline_is_rejected_at_dequeue() {
    // Busy: no workers, a one-slot queue. Once any request occupies the
    // slot, every further store-missing request is rejected at admission.
    let dir = temp_dir("busy");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.workers = 0;
    config.queue_capacity = 1;
    let server = Server::start(config).expect("daemon starts");
    let probe = Client::new(server.local_addr()).with_timeout(Duration::from_millis(500));
    let mut saw_busy = false;
    for seed in 0..3u64 {
        let mut request = OptimizeRequest::table2("bmm", "ampere");
        request.seed = Some(seed);
        match probe.request(&request) {
            Ok(response) => {
                assert_eq!(expect_err(response).code, ErrorCode::Busy);
                saw_busy = true;
                break;
            }
            // A timeout means this request took the queue slot; the next
            // distinct request must then be rejected.
            Err(_) => continue,
        }
    }
    assert!(saw_busy, "the one-slot queue must reject the overflow");
    assert!(server.stats().busy >= 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Deadline: a request admitted with `deadline_ms: 0` has, by
    // definition, already expired when a worker picks it up.
    let dir = temp_dir("deadline");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(fast_config(&dir)).expect("daemon starts");
    let client = Client::new(server.local_addr());
    let mut request = OptimizeRequest::table2("fused_ff", "ampere");
    request.deadline_ms = Some(0);
    assert_eq!(
        expect_err(client.request(&request).expect("exchange")).code,
        ErrorCode::DeadlineExceeded
    );
    assert_eq!(server.stats().deadline_expired, 1);
    assert_eq!(server.stats().computed, 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_frame_disconnects_and_stalls_never_wedge_the_daemon() {
    use std::io::Write as _;
    let dir = temp_dir("midframe");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(fast_config(&dir)).expect("daemon starts");

    // A connection that promises a payload, sends half of it, and vanishes.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&100u32.to_be_bytes()).expect("prefix");
        stream.write_all(b"{\"protocol_ver").expect("half frame");
    }
    // A connection that dies inside the 4-byte length prefix itself.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&[0u8, 0]).expect("half prefix");
    }
    // A connection that never writes a byte.
    drop(TcpStream::connect(server.local_addr()).expect("connect"));

    // A connection that stalls mid-frame WITHOUT closing: it must tie up
    // only its own reader thread — the request below completes long before
    // the staller's read timeout expires.
    let mut staller = TcpStream::connect(server.local_addr()).expect("connect");
    staller.write_all(&64u32.to_be_bytes()).expect("prefix");
    staller.write_all(b"{").expect("stalled frame");

    let client = Client::new(server.local_addr()).with_timeout(Duration::from_secs(30));
    let healthy = expect_ok(
        client
            .request(&OptimizeRequest::table2("softmax", "ampere"))
            .expect("daemon healthy after mid-frame drops"),
    );
    assert!(!healthy.degraded);
    assert!(healthy.report.verified);
    drop(staller);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_load_generator_proves_zero_failures_and_warm_phase_hit_economics() {
    let dir = temp_dir("load");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.workers = 4;
    let server = Server::start(config).expect("daemon starts");
    let mut spec = cuasmrld::LoadSpec::smoke("ampere");
    spec.clients = 4;
    spec.repeat_rounds = 3;
    let report = cuasmrld::run_load(server.local_addr(), &spec);
    assert_eq!(
        report.failed(),
        0,
        "burst must not drop requests: {report:?}"
    );
    assert_eq!(report.sent, 6 * 4);
    assert_eq!(report.ok, report.sent);
    assert_eq!(
        report.warm_hit_rate, 1.0,
        "every warm repeat must be a store hit: {report:?}"
    );
    // Telemetry manifest: one entry per answered request, keyed under the
    // service suite label.
    let gpu = cuasmrl::cli::resolve_arch("ampere").unwrap().name;
    let manifest = cuasmrl::load_run_manifest(&dir, &gpu, cuasmrld::SERVICE_SUITE_LABEL)
        .expect("service manifest persisted");
    assert_eq!(manifest.suite, cuasmrld::SERVICE_SUITE_LABEL);
    assert_eq!(manifest.kernels.len(), report.ok);
    assert!(manifest.kernels.iter().any(|k| k.from_deploy_cache));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
