//! End-to-end contract tests of the `cuasmrld` optimization service: the
//! serving-path determinism contract (a daemon answer is byte-identical to
//! a direct `SuiteOptimizer` run, and repeat answers are byte-identical to
//! each other — across daemon restarts), protocol-v2 sessions (pipelining,
//! version sniffing, per-`request_id` damage scoping, deadline-rank
//! admission), admission control, deadlines, and the typed rejection
//! paths.

use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use cuasmrl::Strategy;
use cuasmrld::{
    Client, ClientBuilder, ErrorCode, FaultKind, FaultPlan, InjectedFault, OptimizeRequest,
    OptimizeResponse, RequestBody, ScheduleStore, Server, ServerConfig, StatusRequest,
    TaggedRequest, TaggedResponse,
};
use gpusim::MeasureOptions;

fn temp_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cuasmrld-e2e-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A fast daemon configuration: greedy strategy, scaled-down shapes,
/// noise-free two-repeat measurements.
fn fast_config(store_dir: &PathBuf) -> ServerConfig {
    let fast_measure = MeasureOptions {
        warmup: 0,
        repeats: 2,
        noise_std: 0.0,
        seed: 0,
    };
    let mut config = ServerConfig::new(store_dir);
    config.scale = 16;
    config.tune_options = fast_measure.clone();
    config.game_config = cuasmrl::GameConfig {
        episode_length: 8,
        measure: fast_measure,
        ..cuasmrl::GameConfig::default()
    };
    config.strategy = Strategy::Greedy { max_moves: 4 };
    config
}

fn expect_ok(response: OptimizeResponse) -> cuasmrld::OptimizeResult {
    match response {
        OptimizeResponse::Ok(result) => result,
        OptimizeResponse::Err(error) => panic!("expected Ok, got {error}"),
        OptimizeResponse::Status(_) => panic!("expected Ok, got a status answer"),
    }
}

fn expect_err(response: OptimizeResponse) -> cuasmrld::ServiceError {
    match response {
        OptimizeResponse::Ok(result) => {
            panic!("expected a typed error, got Ok for {}", result.kernel)
        }
        OptimizeResponse::Err(error) => error,
        OptimizeResponse::Status(_) => panic!("expected a typed error, got a status answer"),
    }
}

#[test]
fn daemon_answers_match_a_direct_suite_optimizer_run_and_repeat_bytes_are_identical() {
    let dir = temp_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let config = fast_config(&dir);
    let server = Server::start(config.clone()).expect("daemon starts");
    let client = Client::new(server.local_addr());

    let request = OptimizeRequest::table2("softmax", "a100");
    let first = expect_ok(client.request(&request).expect("first request"));
    assert!(!first.from_store, "first exposure must compute");
    assert_eq!(first.kernel, "softmax");
    assert!(first.report.verified);

    // The direct run, built through the same exported constructors the
    // daemon uses: byte-identical reports.
    let canonical = request.canonicalize(&config.defaults()).expect("canonical");
    let suite = config.suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer = suite.optimizer_for(&canonical.spec);
    let (direct, _cubin, _telemetry) = optimizer.optimize_spec_instrumented(
        &canonical.spec,
        &suite.config_space_for(&canonical.spec),
        suite.tune_options(),
    );
    assert_eq!(
        serde_json::to_string(&first.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "daemon answer must be byte-identical to the direct run"
    );

    // Repeats are store hits with byte-identical response frames, and the
    // alias spelling of the same canonical request shares the entry.
    let repeat_a = client.request_bytes(&request).expect("repeat a");
    let repeat_b = client.request_bytes(&request).expect("repeat b");
    assert_eq!(repeat_a, repeat_b, "same request + same store state");
    let aliased = expect_ok(
        client
            .request(&OptimizeRequest::table2("SOFTMAX", "Ampere"))
            .expect("aliased request"),
    );
    assert!(aliased.from_store, "aliases canonicalize onto one entry");
    assert_eq!(server.stats().computed, 1);
    assert!(server.stats().store_hits >= 3);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_store_survives_a_daemon_restart_and_recovers_from_corruption() {
    let dir = temp_dir("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let config = fast_config(&dir);
    let request = OptimizeRequest::table2("rmsnorm", "ampere");

    let warm_bytes = {
        let server = Server::start(config.clone()).expect("first daemon");
        let client = Client::new(server.local_addr());
        let first = expect_ok(client.request(&request).expect("compute"));
        assert!(!first.from_store);
        let bytes = client.request_bytes(&request).expect("warm repeat");
        server.shutdown();
        bytes
    };

    // Second daemon, same store: the repeat is served from disk without
    // recomputing, byte-identical to the pre-restart answer.
    {
        let server = Server::start(config.clone()).expect("second daemon");
        let client = Client::new(server.local_addr());
        let bytes = client.request_bytes(&request).expect("post-restart repeat");
        assert_eq!(bytes, warm_bytes, "restart must not change the answer");
        assert_eq!(server.stats().computed, 0);
        assert_eq!(server.stats().store_hits, 1);
        server.shutdown();
    }

    // Corrupt the entry on disk: the next daemon skips it at open,
    // recomputes on demand, overwrites the damage, and the answer bytes
    // still match (determinism makes recovery invisible).
    let canonical = request.canonicalize(&config.defaults()).expect("canonical");
    let key = cuasmrld::RequestKey::of(&canonical);
    let store = ScheduleStore::open(&dir, 8).expect("open store");
    std::fs::write(store.entry_path(&key), "{ damaged").expect("corrupt entry");
    drop(store);
    {
        let server = Server::start(config).expect("third daemon");
        let client = Client::new(server.local_addr());
        let recomputed = expect_ok(client.request(&request).expect("recompute"));
        assert!(!recomputed.from_store, "damage forces a recompute");
        let bytes = client.request_bytes(&request).expect("healed repeat");
        assert_eq!(bytes, warm_bytes, "recovery must reproduce the answer");
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rl_requests_run_through_the_checkpointing_session_and_match_the_direct_run() {
    let dir = temp_dir("rl");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.strategy = Strategy::Rl(rl::PpoConfig {
        total_steps: 96,
        rollout_steps: 24,
        ..rl::PpoConfig::tiny()
    });
    config.workers = 1;
    let server = Server::start(config.clone()).expect("daemon starts");
    let client = Client::new(server.local_addr());
    let request = OptimizeRequest::table2("softmax", "ampere");
    let served = expect_ok(client.request(&request).expect("rl request"));
    assert!(!served.from_store);

    let canonical = request.canonicalize(&config.defaults()).expect("canonical");
    let suite = config.suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer = suite.optimizer_for(&canonical.spec);
    let (direct, _cubin, _telemetry) = optimizer.optimize_spec_instrumented(
        &canonical.spec,
        &suite.config_space_for(&canonical.spec),
        suite.tune_options(),
    );
    assert_eq!(
        serde_json::to_string(&served.report).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "the checkpointing session must match the one-shot run"
    );
    // The session cleans its checkpoint up after finishing.
    let key = cuasmrld::RequestKey::of(&canonical);
    let store = ScheduleStore::open(&dir, 8).expect("open store");
    assert!(!store.checkpoint_path(&key).exists());
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_traffic_gets_typed_rejections_not_hangs_or_panics() {
    let dir = temp_dir("reject");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(fast_config(&dir)).expect("daemon starts");
    let client = Client::new(server.local_addr()).with_timeout(Duration::from_secs(10));

    // Not JSON at all.
    let garbage: OptimizeResponse = {
        let raw = client
            .request_raw(b"definitely not json")
            .expect("exchange");
        serde_json::from_str(std::str::from_utf8(&raw).unwrap()).expect("typed response")
    };
    assert_eq!(expect_err(garbage).code, ErrorCode::BadRequest);

    // An oversized length prefix is refused without reading the payload.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        use std::io::Write as _;
        stream
            .write_all(&(cuasmrld::MAX_FRAME_LEN + 1).to_be_bytes())
            .expect("header");
        let mut response = stream;
        response
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let frame = cuasmrld::read_frame(&mut response).expect("error frame");
        let decoded: OptimizeResponse =
            serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(expect_err(decoded).code, ErrorCode::BadRequest);
    }

    // Wrong protocol version and unknown names.
    let mut wrong_version = OptimizeRequest::table2("softmax", "ampere");
    wrong_version.protocol_version = 99;
    assert_eq!(
        expect_err(client.request(&wrong_version).expect("exchange")).code,
        ErrorCode::UnsupportedVersion
    );
    let err = expect_err(
        client
            .request(&OptimizeRequest::table2("conv3d", "ampere"))
            .expect("exchange"),
    );
    assert_eq!(err.code, ErrorCode::BadRequest);
    assert!(err.message.contains("conv3d"));
    assert_eq!(
        expect_err(
            client
                .request(&OptimizeRequest::table2("softmax", "pascal"))
                .expect("exchange")
        )
        .code,
        ErrorCode::BadRequest
    );
    assert_eq!(server.stats().computed, 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_full_queue_answers_busy_and_an_expired_deadline_is_rejected_at_dequeue() {
    // Busy: no workers, a one-slot queue. Once any request occupies the
    // slot, every further store-missing request is rejected at admission.
    let dir = temp_dir("busy");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.workers = 0;
    config.queue_capacity = 1;
    let server = Server::start(config).expect("daemon starts");
    let probe = Client::new(server.local_addr()).with_timeout(Duration::from_millis(500));
    let mut saw_busy = false;
    for seed in 0..3u64 {
        let mut request = OptimizeRequest::table2("bmm", "ampere");
        request.seed = Some(seed);
        match probe.request(&request) {
            Ok(response) => {
                assert_eq!(expect_err(response).code, ErrorCode::Busy);
                saw_busy = true;
                break;
            }
            // A timeout means this request took the queue slot; the next
            // distinct request must then be rejected.
            Err(_) => continue,
        }
    }
    assert!(saw_busy, "the one-slot queue must reject the overflow");
    assert!(server.stats().busy >= 1);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Deadline: a request admitted with `deadline_ms: 0` has, by
    // definition, already expired when a worker picks it up.
    let dir = temp_dir("deadline");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(fast_config(&dir)).expect("daemon starts");
    let client = Client::new(server.local_addr());
    let mut request = OptimizeRequest::table2("fused_ff", "ampere");
    request.deadline_ms = Some(0);
    assert_eq!(
        expect_err(client.request(&request).expect("exchange")).code,
        ErrorCode::DeadlineExceeded
    );
    assert_eq!(server.stats().deadline_expired, 1);
    assert_eq!(server.stats().computed, 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_frame_disconnects_and_stalls_never_wedge_the_daemon() {
    use std::io::Write as _;
    let dir = temp_dir("midframe");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(fast_config(&dir)).expect("daemon starts");

    // A connection that promises a payload, sends half of it, and vanishes.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&100u32.to_be_bytes()).expect("prefix");
        stream.write_all(b"{\"protocol_ver").expect("half frame");
    }
    // A connection that dies inside the 4-byte length prefix itself.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&[0u8, 0]).expect("half prefix");
    }
    // A connection that never writes a byte.
    drop(TcpStream::connect(server.local_addr()).expect("connect"));

    // A connection that stalls mid-frame WITHOUT closing: it must tie up
    // only its own reader thread — the request below completes long before
    // the staller's read timeout expires.
    let mut staller = TcpStream::connect(server.local_addr()).expect("connect");
    staller.write_all(&64u32.to_be_bytes()).expect("prefix");
    staller.write_all(b"{").expect("stalled frame");

    let client = Client::new(server.local_addr()).with_timeout(Duration::from_secs(30));
    let healthy = expect_ok(
        client
            .request(&OptimizeRequest::table2("softmax", "ampere"))
            .expect("daemon healthy after mid-frame drops"),
    );
    assert!(!healthy.degraded);
    assert!(healthy.report.verified);
    drop(staller);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_v1_client_frame_gets_byte_identical_v1_answers_and_a_single_exchange_close() {
    let dir = temp_dir("v1compat");
    let _ = std::fs::remove_dir_all(&dir);
    let config = fast_config(&dir);
    let server = Server::start(config.clone()).expect("daemon starts");
    let client = Client::new(server.local_addr());

    // First exposure computes and populates the store; the v1 exchange
    // below is then a store hit, whose bytes are fully deterministic.
    let request = OptimizeRequest::table2("softmax", "a100");
    expect_ok(client.request(&request).expect("warm the store"));

    // The exact frame a v1 client binary sends: version 1, every optional
    // field serialized as null, no `priority` field (it predates v2).
    let v1_literal = concat!(
        r#"{"protocol_version":1,"kernel":"softmax","arch":"a100","#,
        r#""shape":null,"scale":null,"seed":null,"deadline_ms":null}"#
    );
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    cuasmrld::write_frame(&mut stream, v1_literal.as_bytes()).expect("send v1 frame");
    let raw = cuasmrld::read_frame(&mut stream).expect("v1 answer");

    // Expected bytes, reconstructed from the shared constructors: the
    // stored (direct-run) report inside an Ok result echoing version 1 —
    // exactly what the v1 server answered.
    let canonical = request.canonicalize(&config.defaults()).expect("canonical");
    let suite = config.suite_optimizer(canonical.gpu.clone(), canonical.seed);
    let optimizer = suite.optimizer_for(&canonical.spec);
    let (direct, _cubin, _telemetry) = optimizer.optimize_spec_instrumented(
        &canonical.spec,
        &suite.config_space_for(&canonical.spec),
        suite.tune_options(),
    );
    let key = cuasmrld::RequestKey::of(&canonical);
    let expected = OptimizeResponse::Ok(cuasmrld::OptimizeResult {
        protocol_version: 1,
        arch: key.arch.clone(),
        kernel: key.kernel.clone(),
        request_key: key.digest.clone(),
        from_store: true,
        degraded: false,
        report: direct,
    });
    assert_eq!(
        raw,
        serde_json::to_string(&expected).unwrap().into_bytes(),
        "a v1 frame must get a byte-identical v1 answer from the v2 server"
    );

    // The v1 contract's second half: one exchange, then the server closes.
    use std::io::Read as _;
    let mut probe = [0u8; 1];
    assert_eq!(
        stream.read(&mut probe).expect("clean close"),
        0,
        "a bare-frame connection must close after its one exchange"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_answers_are_byte_identical_to_sequential_one_shots_and_resolve_in_any_order() {
    let dir = temp_dir("pipeline");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.workers = 2;
    let server = Server::start(config).expect("daemon starts");
    let client = Client::new(server.local_addr());

    // Sequential v1 one-shots: cold round computes, then the warm repeat
    // records the reference bytes for each kernel.
    let kernels = ["softmax", "bmm", "rmsnorm", "fused_ff"];
    let mut warm_bytes = Vec::new();
    for kernel in kernels {
        let request = OptimizeRequest::table2(kernel, "ampere");
        expect_ok(client.request(&request).expect("cold compute"));
        warm_bytes.push(client.request_bytes(&request).expect("warm one-shot"));
    }

    // One connection, all four requests in flight before any wait; ids are
    // issued sequentially from 1 (0 is reserved).
    let connection = ClientBuilder::new(server.local_addr())
        .connect()
        .expect("session connects");
    let handles: Vec<cuasmrld::RequestHandle> = kernels
        .iter()
        .map(|kernel| {
            connection
                .submit(&OptimizeRequest::table2(*kernel, "ampere"))
                .expect("pipelined submit")
        })
        .collect();
    assert_eq!(
        handles
            .iter()
            .map(cuasmrld::RequestHandle::id)
            .collect::<Vec<u64>>(),
        vec![1, 2, 3, 4]
    );

    // Wait in REVERSE submission order: completion routing is by id, so
    // waiting on the last submission first must work, and every pipelined
    // answer must be byte-identical to its sequential one-shot.
    let mut indexed: Vec<(usize, cuasmrld::RequestHandle)> =
        handles.into_iter().enumerate().collect();
    indexed.reverse();
    for (index, handle) in indexed {
        let response = handle.wait().expect("pipelined answer");
        assert_eq!(
            serde_json::to_string(&response).unwrap().into_bytes(),
            warm_bytes[index],
            "pipelined answer for {} must match the sequential one-shot",
            kernels[index]
        );
        let result = expect_ok(response);
        assert!(result.from_store, "warm pipelined traffic hits the store");
        assert_eq!(result.kernel, kernels[index]);
    }

    // Status rides the same session as a tagged body and sees the queue
    // gauge the v2 schema added.
    let status = connection.status().expect("status over the session");
    assert_eq!(status.stats.requests, 12, "4 cold + 4 warm + 4 pipelined");
    assert_eq!(status.queue_depth, 0, "nothing left queued");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_malformed_session_frame_poisons_only_its_request_id_never_the_connection() {
    let dir = temp_dir("poison");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.workers = 1;
    let server = Server::start(config).expect("daemon starts");
    let connection = ClientBuilder::new(server.local_addr())
        .connect()
        .expect("session connects");

    // A real request keeps the session busy while the damage lands.
    let first = connection
        .submit(&OptimizeRequest::table2("softmax", "ampere"))
        .expect("in-flight request");
    // Malformed-but-JSON: the id is salvageable, so exactly request 7 is
    // poisoned with a tagged BadRequest.
    let poisoned = connection.expect(7);
    connection
        .send_raw(br#"{"request_id": 7, "body": {"bogus": true}}"#)
        .expect("send malformed body");
    // Not JSON at all: unattributable, answered under the reserved id 0.
    let unattributed = connection.expect(cuasmrld::UNATTRIBUTED_REQUEST_ID);
    connection
        .send_raw(b"definitely not json")
        .expect("send garbage");

    // Both rejections arrive (out of order with the in-flight compute),
    // tagged with exactly the ids they poison.
    assert_eq!(
        expect_err(poisoned.wait().expect("poisoned answer")).code,
        ErrorCode::BadRequest
    );
    assert_eq!(
        expect_err(unattributed.wait().expect("unattributed answer")).code,
        ErrorCode::BadRequest
    );

    // The connection survived: the in-flight request completes, and fresh
    // submissions on the same session still serve.
    let healthy = expect_ok(first.wait().expect("in-flight answer"));
    assert!(healthy.report.verified);
    let after = expect_ok(
        connection
            .request(&OptimizeRequest::table2("bmm", "ampere"))
            .expect("post-damage request"),
    );
    assert_eq!(after.kernel, "bmm");
    assert_eq!(server.stats().rejected, 2, "exactly the two damaged frames");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn framing_damage_closes_the_session_while_concurrent_sessions_keep_serving() {
    use std::io::{Read as _, Write as _};
    let dir = temp_dir("framing");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(fast_config(&dir)).expect("daemon starts");

    // Session A, spoken raw so the test controls framing exactly. A tagged
    // status probe opens it as a v2 session.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect A");
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let probe = |id: u64| {
        serde_json::to_string(&TaggedRequest {
            request_id: id,
            body: RequestBody::Status(StatusRequest::new()),
        })
        .unwrap()
    };
    cuasmrld::write_frame(&mut raw, probe(1).as_bytes()).expect("first frame");
    let frame = cuasmrld::read_frame(&mut raw).expect("tagged answer");
    let tagged: TaggedResponse =
        serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(tagged.request_id, 1);

    // A frame delivered in two writes with a pause in between (longer than
    // the server's idle poll) still parses: only ABANDONED frames are
    // framing damage, slow ones are fine.
    let second = probe(2);
    let payload = second.as_bytes();
    let split = payload.len() / 2;
    raw.write_all(&u32::try_from(payload.len()).unwrap().to_be_bytes())
        .expect("prefix");
    raw.write_all(&payload[..split]).expect("first half");
    std::thread::sleep(Duration::from_millis(250));
    raw.write_all(&payload[split..]).expect("second half");
    let frame = cuasmrld::read_frame(&mut raw).expect("split frame answered");
    let tagged: TaggedResponse =
        serde_json::from_str(std::str::from_utf8(&frame).unwrap()).unwrap();
    assert_eq!(tagged.request_id, 2);

    // A concurrent session whose fate must stay independent of A's.
    let survivor = ClientBuilder::new(server.local_addr())
        .connect()
        .expect("connect B");

    // Truncation: promise 64 bytes, deliver 3, half-close. That is framing
    // damage — no request_id boundary left to trust — so session A closes.
    raw.write_all(&64u32.to_be_bytes()).expect("prefix");
    raw.write_all(b"{\"r").expect("torso");
    raw.shutdown(std::net::Shutdown::Write).expect("half close");
    let mut eof = [0u8; 1];
    assert_eq!(
        raw.read(&mut eof).expect("server closed A"),
        0,
        "a truncated frame is connection-fatal for its own session"
    );

    // Session B never noticed.
    let status = survivor.status().expect("session B still serves");
    assert!(status.stats.status_served >= 2);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_serves_by_deadline_rank_and_the_order_survives_arrival_permutation() {
    // One worker, and an injected stall on the gate request (ordinal 0)
    // long enough for the whole batch to pile into the admission queue
    // while it runs — so pop order, not arrival order, decides service
    // order. Telemetry appends in served order, which makes the manifest
    // the order witness. Expected rank order: rmsnorm (60 s) beats bmm
    // (80 s); fused_ff (80 s + priority 5 ⇒ effectively 75 s) slots
    // between them; no deadline serves last.
    let queued: [(&str, Option<u64>, Option<i32>); 4] = [
        ("rmsnorm", Some(60_000), None),
        ("bmm", Some(80_000), None),
        ("fused_ff", Some(80_000), Some(5)),
        ("mmLeakyReLu", None, None),
    ];
    let expected = ["softmax", "rmsnorm", "fused_ff", "bmm", "mmLeakyReLu"];
    for permutation in 0..2 {
        let dir = temp_dir(&format!("priority{permutation}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = fast_config(&dir);
        config.workers = 1;
        config.fault_plan = Some(FaultPlan::new(vec![InjectedFault {
            ordinal: 0,
            kind: FaultKind::SlowWorker { stall_ms: 1_500 },
        }]));
        let server = Server::start(config).expect("daemon starts");
        let connection = ClientBuilder::new(server.local_addr())
            .connect()
            .expect("session connects");
        let gate = connection
            .submit(&OptimizeRequest::table2("softmax", "ampere"))
            .expect("gate submit");
        // Let the single worker pick the gate up before the batch arrives,
        // so every batch request is queued behind the stall.
        std::thread::sleep(Duration::from_millis(400));
        let mut arrival: Vec<usize> = (0..queued.len()).collect();
        if permutation == 1 {
            arrival.reverse();
        }
        let mut handles = Vec::new();
        for &index in &arrival {
            let (kernel, deadline_ms, priority) = queued[index];
            let mut request = OptimizeRequest::table2(kernel, "ampere");
            request.deadline_ms = deadline_ms;
            request.priority = priority;
            handles.push(connection.submit(&request).expect("batch submit"));
        }
        for handle in handles {
            assert!(!expect_ok(handle.wait().expect("batch answer")).degraded);
        }
        expect_ok(gate.wait().expect("gate answer"));
        server.shutdown();

        let gpu = cuasmrl::cli::resolve_arch("ampere").unwrap().name;
        let manifest = cuasmrl::load_run_manifest(&dir, &gpu, cuasmrld::SERVICE_SUITE_LABEL)
            .expect("service manifest persisted");
        // Manifest entries carry the full spec name (kernel + shape); the
        // kernel prefix is the order witness.
        let served: Vec<&str> = manifest.kernels.iter().map(|k| k.kernel.as_str()).collect();
        assert_eq!(served.len(), expected.len());
        for (entry, kernel) in served.iter().zip(expected) {
            assert!(
                entry.starts_with(&format!("{kernel}_")),
                "served order must follow admission rank, independent of \
                 arrival order (permutation {permutation}): got {served:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn the_load_generator_proves_zero_failures_and_warm_phase_hit_economics() {
    let dir = temp_dir("load");
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = fast_config(&dir);
    config.workers = 4;
    let server = Server::start(config).expect("daemon starts");
    let mut spec = cuasmrld::LoadSpec::smoke("ampere");
    spec.clients = 4;
    spec.repeat_rounds = 3;
    let report = cuasmrld::run_load(server.local_addr(), &spec);
    assert_eq!(
        report.failed(),
        0,
        "burst must not drop requests: {report:?}"
    );
    assert_eq!(report.sent, 6 * 4);
    assert_eq!(report.ok, report.sent);
    assert_eq!(
        report.warm_hit_rate, 1.0,
        "every warm repeat must be a store hit: {report:?}"
    );
    // Telemetry manifest: one entry per answered request, keyed under the
    // service suite label.
    let gpu = cuasmrl::cli::resolve_arch("ampere").unwrap().name;
    let manifest = cuasmrl::load_run_manifest(&dir, &gpu, cuasmrld::SERVICE_SUITE_LABEL)
        .expect("service manifest persisted");
    assert_eq!(manifest.suite, cuasmrld::SERVICE_SUITE_LABEL);
    assert_eq!(manifest.kernels.len(), report.ok);
    assert!(manifest.kernels.iter().any(|k| k.from_deploy_cache));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
