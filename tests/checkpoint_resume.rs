//! End-to-end checkpoint/resume over the real assembly game: killing an RL
//! training run at an update boundary and resuming it from the checkpoint
//! must produce bit-identical final policy weights **and** bit-identical
//! optimized schedules versus the run that was never interrupted. This is
//! the cross-crate counterpart of `crates/rl/tests/checkpoint.rs` (which
//! proves the same contract on a synthetic env).

use cuasmrl::{ActionSpace, AssemblyGame, GameConfig, StallTable};
use gpusim::{GpuConfig, MeasureOptions};
use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
use rl::{Env, PolicyState, PpoConfig, PpoTrainer};

fn fast_measure() -> MeasureOptions {
    MeasureOptions {
        warmup: 0,
        repeats: 2,
        noise_std: 0.0,
        seed: 0,
    }
}

fn game_in(space: ActionSpace) -> AssemblyGame {
    let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
    let config = KernelConfig {
        block_m: 32,
        block_n: 32,
        block_k: 32,
        num_warps: 4,
        num_stages: 2,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    AssemblyGame::new(
        GpuConfig::small(),
        kernel.program,
        kernel.launch,
        StallTable::builtin_a100(),
        GameConfig {
            episode_length: 8,
            measure: fast_measure(),
            action_space: space,
        },
    )
}

fn game() -> AssemblyGame {
    game_in(ActionSpace::default())
}

fn ppo() -> PpoConfig {
    PpoConfig {
        total_steps: 96,
        rollout_steps: 32,
        learning_rate: 1e-2,
        ..PpoConfig::tiny()
    }
}

fn policy_bits(state: &PolicyState) -> Vec<u32> {
    let mut bits: Vec<u32> = Vec::new();
    for series in [
        &state.encoder_weight,
        &state.encoder_bias,
        &state.actor_weight,
        &state.actor_bias,
        &state.critic_weight,
        &state.critic_bias,
    ] {
        bits.extend(series.iter().map(|v| v.to_bits()));
    }
    for opt in [&state.encoder_opt, &state.actor_opt, &state.critic_opt] {
        bits.push(opt.learning_rate.to_bits());
        bits.push(opt.step as u32);
        bits.extend(opt.first_moment.iter().map(|v| v.to_bits()));
        bits.extend(opt.second_moment.iter().map(|v| v.to_bits()));
    }
    bits.extend(state.rng.key);
    bits.push(state.rng.counter as u32);
    bits.extend(state.rng.buffer);
    bits.push(state.rng.index);
    bits
}

#[test]
fn killed_and_resumed_rl_training_yields_bit_identical_schedules() {
    // The uninterrupted control run.
    let mut control_game = game();
    let mut control = PpoTrainer::new(
        ppo(),
        control_game.observation_features(),
        control_game.action_count(),
    );
    control.train(&mut control_game);
    let control_policy = policy_bits(&control.policy().state());
    let (control_best, control_best_us) = control_game.best();
    let control_listing = control_best.to_string();
    let total_updates = control.total_updates();
    assert!(total_updates >= 3);

    for interrupt_after in 1..total_updates {
        let path = std::env::temp_dir().join(format!(
            "cuasmrl-game-ckpt-{}-{interrupt_after}.ckpt",
            std::process::id()
        ));
        // Phase 1: train to the boundary, checkpoint, "kill the process"
        // (drop trainer and game).
        {
            let mut interrupted_game = game();
            let mut trainer = PpoTrainer::new(
                ppo(),
                interrupted_game.observation_features(),
                interrupted_game.action_count(),
            );
            assert!(!trainer.train_updates(&mut interrupted_game, interrupt_after));
            trainer
                .save_checkpoint(&interrupted_game, &path)
                .expect("checkpoint the run");
        }
        // Phase 2: a fresh process reconstructs the game from the same
        // kernel and resumes from the checkpoint file.
        let mut resumed_game = game();
        let mut resumed =
            PpoTrainer::resume_from(&path, &mut resumed_game).expect("resume from file");
        assert_eq!(resumed.completed_updates(), interrupt_after);
        resumed.train(&mut resumed_game);

        assert_eq!(
            policy_bits(&resumed.policy().state()),
            control_policy,
            "policy weights diverged when killed after update {interrupt_after}"
        );
        let (resumed_best, resumed_best_us) = resumed_game.best();
        assert_eq!(
            resumed_best.to_string(),
            control_listing,
            "optimized schedule diverged when killed after update {interrupt_after}"
        );
        assert_eq!(resumed_best_us.to_bits(), control_best_us.to_bits());
        let _ = std::fs::remove_file(&path);
    }
}

/// The interrupt/resume contract holds unchanged under the rich action
/// space: a run killed at any update boundary and resumed from its
/// checkpoint — with the full edit set of swaps, block moves, reuse
/// toggles, stall retunes and barrier edits in play — finishes with
/// bit-identical policy weights and a byte-identical best schedule.
#[test]
fn killed_and_resumed_rich_training_yields_bit_identical_schedules() {
    let mut control_game = game_in(ActionSpace::Rich);
    let mut control = PpoTrainer::new(
        ppo(),
        control_game.observation_features(),
        control_game.action_count(),
    );
    control.train(&mut control_game);
    let control_policy = policy_bits(&control.policy().state());
    let (control_best, control_best_us) = control_game.best();
    let control_listing = control_best.to_string();
    let total_updates = control.total_updates();
    assert!(total_updates >= 3);

    for interrupt_after in 1..total_updates {
        let path = std::env::temp_dir().join(format!(
            "cuasmrl-rich-ckpt-{}-{interrupt_after}.ckpt",
            std::process::id()
        ));
        {
            let mut interrupted_game = game_in(ActionSpace::Rich);
            let mut trainer = PpoTrainer::new(
                ppo(),
                interrupted_game.observation_features(),
                interrupted_game.action_count(),
            );
            assert!(!trainer.train_updates(&mut interrupted_game, interrupt_after));
            trainer
                .save_checkpoint(&interrupted_game, &path)
                .expect("checkpoint the run");
        }
        let mut resumed_game = game_in(ActionSpace::Rich);
        let mut resumed =
            PpoTrainer::resume_from(&path, &mut resumed_game).expect("resume from file");
        assert_eq!(resumed.completed_updates(), interrupt_after);
        resumed.train(&mut resumed_game);

        assert_eq!(
            policy_bits(&resumed.policy().state()),
            control_policy,
            "rich policy weights diverged when killed after update {interrupt_after}"
        );
        let (resumed_best, resumed_best_us) = resumed_game.best();
        assert_eq!(
            resumed_best.to_string(),
            control_listing,
            "rich optimized schedule diverged when killed after update {interrupt_after}"
        );
        assert_eq!(resumed_best_us.to_bits(), control_best_us.to_bits());
        let _ = std::fs::remove_file(&path);
    }
}

/// A checkpoint taken under one action space must not silently resume into
/// a game configured for another: the edit table, the action ids and the
/// policy head widths all differ.
#[test]
fn resume_rejects_a_checkpoint_for_a_different_action_space() {
    let path = std::env::temp_dir().join(format!(
        "cuasmrl-space-mismatch-{}.ckpt",
        std::process::id()
    ));
    let mut rich = game_in(ActionSpace::Rich);
    let mut trainer = PpoTrainer::new(ppo(), rich.observation_features(), rich.action_count());
    trainer.train_updates(&mut rich, 1);
    trainer.save_checkpoint(&rich, &path).expect("save");

    let mut swap_game = game();
    assert!(matches!(
        PpoTrainer::resume_from(&path, &mut swap_game),
        Err(rl::CheckpointError::EnvRejectedState)
    ));
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint recording an action-space version this build does not know
/// (for example, written by a future release) is rejected with the typed
/// [`rl::CheckpointError::EnvRejectedState`] instead of being misread.
#[test]
fn resume_rejects_a_checkpoint_with_an_unknown_action_space_version() {
    let path =
        std::env::temp_dir().join(format!("cuasmrl-unknown-space-{}.ckpt", std::process::id()));
    let mut rich = game_in(ActionSpace::Rich);
    let mut trainer = PpoTrainer::new(ppo(), rich.observation_features(), rich.action_count());
    trainer.train_updates(&mut rich, 1);
    let mut checkpoint = trainer.checkpoint(&rich).expect("snapshot");

    // Rewrite the env snapshot as if a future build had written an
    // action-space variant this one has never heard of.
    let state = String::from_utf8(checkpoint.envs[0].state.clone()).expect("snapshots are JSON");
    assert!(state.contains("\"Rich\""), "snapshot must record its space");
    checkpoint.envs[0].state = state.replace("\"Rich\"", "\"Quantum\"").into_bytes();
    checkpoint.write(&path).expect("write tampered checkpoint");

    let mut resumed_game = game_in(ActionSpace::Rich);
    assert!(matches!(
        PpoTrainer::resume_from(&path, &mut resumed_game),
        Err(rl::CheckpointError::EnvRejectedState)
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_game_for_a_different_kernel() {
    let path = std::env::temp_dir().join(format!(
        "cuasmrl-game-ckpt-mismatch-{}.ckpt",
        std::process::id()
    ));
    let mut original = game();
    let mut trainer = PpoTrainer::new(
        ppo(),
        original.observation_features(),
        original.action_count(),
    );
    trainer.train_updates(&mut original, 1);
    trainer.save_checkpoint(&original, &path).expect("save");

    // A game built from a different kernel (different schedule length)
    // refuses the checkpointed state instead of silently adopting it.
    let spec = KernelSpec::scaled(KernelKind::Softmax, 16);
    let config = KernelConfig {
        block_m: 1,
        block_n: 256,
        block_k: 1,
        num_warps: 4,
        num_stages: 1,
    };
    let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
    let mut wrong_game = AssemblyGame::new(
        GpuConfig::small(),
        kernel.program,
        kernel.launch,
        StallTable::builtin_a100(),
        GameConfig {
            episode_length: 8,
            measure: fast_measure(),
            ..GameConfig::default()
        },
    );
    assert!(matches!(
        PpoTrainer::resume_from(&path, &mut wrong_game),
        Err(rl::CheckpointError::EnvRejectedState)
    ));
    let _ = std::fs::remove_file(&path);
}
