//! Masked categorical action distributions.
//!
//! CuAsmRL masks out actions that would violate a dependence (§3.5) by
//! assigning them "an impossible probability": the masked logits are set to
//! negative infinity before the softmax, so masked actions are never sampled
//! and contribute nothing to the entropy.

use rand::Rng;

/// A categorical distribution over actions with a validity mask.
#[derive(Debug, Clone)]
pub struct MaskedCategorical {
    probs: Vec<f32>,
    mask: Vec<bool>,
}

impl MaskedCategorical {
    /// Builds the distribution from raw logits and a validity mask.
    ///
    /// If every action is masked the distribution is empty and
    /// [`MaskedCategorical::sample`] returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` and `mask` have different lengths.
    #[must_use]
    pub fn from_logits(logits: &[f32], mask: &[bool]) -> Self {
        assert_eq!(logits.len(), mask.len(), "logits and mask must align");
        let max = logits
            .iter()
            .zip(mask)
            .filter(|(_, m)| **m)
            .map(|(l, _)| *l)
            .fold(f32::NEG_INFINITY, f32::max);
        let mut probs = vec![0.0; logits.len()];
        if max.is_finite() {
            let mut total = 0.0;
            for (i, (&l, &m)) in logits.iter().zip(mask).enumerate() {
                if m {
                    let e = (l - max).exp();
                    probs[i] = e;
                    total += e;
                }
            }
            if total > 0.0 {
                for p in &mut probs {
                    *p /= total;
                }
            }
        }
        MaskedCategorical {
            probs,
            mask: mask.to_vec(),
        }
    }

    /// The probability vector (masked entries are exactly zero).
    #[must_use]
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// True if no action is available.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.mask.iter().any(|&m| m)
    }

    /// Samples an action index, or `None` when every action is masked.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let draw: f32 = rng.gen_range(0.0..1.0);
        let mut cumulative = 0.0;
        let mut last_valid = None;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > 0.0 {
                cumulative += p;
                last_valid = Some(i);
                if draw < cumulative {
                    return Some(i);
                }
            }
        }
        last_valid
    }

    /// The most probable action, or `None` when every action is masked.
    #[must_use]
    pub fn argmax(&self) -> Option<usize> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(i, _)| self.mask[*i])
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
    }

    /// Natural log-probability of an action (`-inf` for masked actions).
    #[must_use]
    pub fn log_prob(&self, action: usize) -> f32 {
        let p = self.probs.get(action).copied().unwrap_or(0.0);
        if p > 0.0 {
            p.ln()
        } else {
            f32::NEG_INFINITY
        }
    }

    /// Shannon entropy of the distribution (in nats).
    #[must_use]
    pub fn entropy(&self) -> f32 {
        -self
            .probs
            .iter()
            .filter(|p| **p > 0.0)
            .map(|p| p * p.ln())
            .sum::<f32>()
    }

    /// Gradient of `log_prob(action)` with respect to the logits:
    /// `onehot(action) - probs`, with masked entries zeroed.
    #[must_use]
    pub fn log_prob_grad(&self, action: usize) -> Vec<f32> {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if !self.mask[i] {
                    0.0
                } else if i == action {
                    1.0 - p
                } else {
                    -p
                }
            })
            .collect()
    }

    /// Gradient of the entropy with respect to the logits:
    /// `-p_i (ln p_i + H)`, with masked entries zeroed.
    #[must_use]
    pub fn entropy_grad(&self) -> Vec<f32> {
        let h = self.entropy();
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if !self.mask[i] || p <= 0.0 {
                    0.0
                } else {
                    -p * (p.ln() + h)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn masked_actions_are_never_sampled() {
        let dist = MaskedCategorical::from_logits(&[10.0, 0.0, 0.0], &[false, true, true]);
        assert_eq!(dist.probs()[0], 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert_ne!(dist.sample(&mut rng), Some(0));
        }
    }

    #[test]
    fn probabilities_sum_to_one_over_valid_actions() {
        let dist =
            MaskedCategorical::from_logits(&[1.0, 2.0, 3.0, 4.0], &[true, false, true, true]);
        let total: f32 = dist.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_distribution_is_empty() {
        let dist = MaskedCategorical::from_logits(&[1.0, 2.0], &[false, false]);
        assert!(dist.is_empty());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(dist.sample(&mut rng), None);
        assert_eq!(dist.argmax(), None);
        assert_eq!(dist.entropy(), 0.0);
    }

    #[test]
    fn log_prob_and_entropy_match_uniform_case() {
        let dist = MaskedCategorical::from_logits(&[0.0, 0.0, 0.0, 0.0], &[true; 4]);
        assert!((dist.log_prob(2) - (0.25f32).ln()).abs() < 1e-6);
        assert!((dist.entropy() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn argmax_picks_the_highest_logit() {
        let dist = MaskedCategorical::from_logits(&[0.1, 5.0, 1.0], &[true, true, true]);
        assert_eq!(dist.argmax(), Some(1));
    }

    #[test]
    fn log_prob_grad_matches_finite_differences() {
        let logits = [0.3f32, -0.7, 1.2];
        let mask = [true, true, true];
        let action = 2;
        let analytic = MaskedCategorical::from_logits(&logits, &mask).log_prob_grad(action);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut bumped = logits;
            bumped[i] += eps;
            let hi = MaskedCategorical::from_logits(&bumped, &mask).log_prob(action);
            let lo = MaskedCategorical::from_logits(&logits, &mask).log_prob(action);
            let numeric = (hi - lo) / eps;
            assert!(
                (analytic[i] - numeric).abs() < 1e-2,
                "component {i}: {} vs {}",
                analytic[i],
                numeric
            );
        }
    }

    #[test]
    fn entropy_grad_matches_finite_differences() {
        let logits = [0.5f32, -0.2, 0.9];
        let mask = [true, true, false];
        let analytic = MaskedCategorical::from_logits(&logits, &mask).entropy_grad();
        let eps = 1e-3;
        for i in 0..2 {
            let mut bumped = logits;
            bumped[i] += eps;
            let hi = MaskedCategorical::from_logits(&bumped, &mask).entropy();
            let lo = MaskedCategorical::from_logits(&logits, &mask).entropy();
            let numeric = (hi - lo) / eps;
            assert!(
                (analytic[i] - numeric).abs() < 1e-2,
                "component {i}: {} vs {}",
                analytic[i],
                numeric
            );
        }
        assert_eq!(analytic[2], 0.0);
    }

    #[test]
    fn sampling_follows_the_distribution() {
        let dist = MaskedCategorical::from_logits(&[2.0, 0.0], &[true, true]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 2000;
        let hits = (0..n).filter(|_| dist.sample(&mut rng) == Some(0)).count() as f32;
        let expected = dist.probs()[0] * n as f32;
        assert!((hits - expected).abs() < n as f32 * 0.05);
    }
}
