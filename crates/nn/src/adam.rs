//! The Adam optimizer.

use serde::{Deserialize, Serialize};

/// Adam optimizer state for one flat parameter vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates an optimizer for `parameter_count` parameters with the given
    /// learning rate and PPO-default betas (0.9, 0.999).
    #[must_use]
    pub fn new(parameter_count: usize, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-5,
            step: 0,
            m: vec![0.0; parameter_count],
            v: vec![0.0; parameter_count],
        }
    }

    /// Rebuilds an optimizer from checkpointed state (learning rate, update
    /// count and both moment vectors). Returns `None` when the moment
    /// vectors disagree in length.
    #[must_use]
    pub fn from_state(lr: f32, step: u64, m: Vec<f32>, v: Vec<f32>) -> Option<Self> {
        if m.len() != v.len() {
            return None;
        }
        Some(Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-5,
            step,
            m,
            v,
        })
    }

    /// Number of update steps applied so far.
    #[must_use]
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The first-moment estimate vector.
    #[must_use]
    pub fn first_moment(&self) -> &[f32] {
        &self.m
    }

    /// The second-moment estimate vector.
    #[must_use]
    pub fn second_moment(&self) -> &[f32] {
        &self.v
    }

    /// The current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (used for annealing).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` do not match the optimizer size.
    pub fn step(&mut self, params: &mut [&mut f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        for i in 0..grads.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            *params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_a_quadratic() {
        // Minimise f(x) = (x - 3)^2 starting from 0.
        let mut x = 0.0f32;
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let grad = 2.0 * (x - 3.0);
            opt.step(&mut [&mut x], &[grad]);
        }
        assert!((x - 3.0).abs() < 0.05, "converged to {x}");
    }

    #[test]
    fn learning_rate_can_be_annealed() {
        let mut opt = Adam::new(2, 0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn state_round_trip_resumes_bit_identically() {
        let mut x_a = 0.0f32;
        let mut original = Adam::new(1, 0.1);
        for _ in 0..10 {
            let grad = 2.0 * (x_a - 3.0);
            original.step(&mut [&mut x_a], &[grad]);
        }
        let mut x_b = x_a;
        let mut restored = Adam::from_state(
            original.learning_rate(),
            original.step_count(),
            original.first_moment().to_vec(),
            original.second_moment().to_vec(),
        )
        .expect("consistent state");
        for _ in 0..10 {
            let grad_a = 2.0 * (x_a - 3.0);
            original.step(&mut [&mut x_a], &[grad_a]);
            let grad_b = 2.0 * (x_b - 3.0);
            restored.step(&mut [&mut x_b], &[grad_b]);
        }
        assert_eq!(x_a.to_bits(), x_b.to_bits());
        assert!(Adam::from_state(0.1, 1, vec![0.0], vec![0.0, 0.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(2, 0.01);
        let mut x = 0.0f32;
        opt.step(&mut [&mut x], &[0.0, 0.0]);
    }
}
