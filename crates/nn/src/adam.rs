//! The Adam optimizer.

use serde::{Deserialize, Serialize};

/// Adam optimizer state for one flat parameter vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates an optimizer for `parameter_count` parameters with the given
    /// learning rate and PPO-default betas (0.9, 0.999).
    #[must_use]
    pub fn new(parameter_count: usize, lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-5,
            step: 0,
            m: vec![0.0; parameter_count],
            v: vec![0.0; parameter_count],
        }
    }

    /// The current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (used for annealing).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` do not match the optimizer size.
    pub fn step(&mut self, params: &mut [&mut f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        for i in 0..grads.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bias1;
            let v_hat = self.v[i] / bias2;
            *params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimises_a_quadratic() {
        // Minimise f(x) = (x - 3)^2 starting from 0.
        let mut x = 0.0f32;
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let grad = 2.0 * (x - 3.0);
            opt.step(&mut [&mut x], &[grad]);
        }
        assert!((x - 3.0).abs() < 0.05, "converged to {x}");
    }

    #[test]
    fn learning_rate_can_be_annealed() {
        let mut opt = Adam::new(2, 0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "parameter count mismatch")]
    fn size_mismatch_panics() {
        let mut opt = Adam::new(2, 0.01);
        let mut x = 0.0f32;
        opt.step(&mut [&mut x], &[0.0, 0.0]);
    }
}
