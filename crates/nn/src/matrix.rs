//! A small row-major matrix of `f32`, sufficient for the PPO agent.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row * self.cols + col] = value;
    }

    /// One row as a slice.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Flat row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }
}
