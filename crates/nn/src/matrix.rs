//! A small row-major matrix of `f32`, sufficient for the PPO agent.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row * self.cols + col] = value;
    }

    /// One row as a slice.
    #[must_use]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Flat row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Blocked matrix product against a **transposed** right-hand side:
    /// `self` is `m x k`, `other` is `n x k` (its rows are the columns of
    /// the logical right-hand operand), and the result is `m x n`.
    ///
    /// This is the batched-inference workhorse: network weights are stored
    /// row-major as `[out x in]`, which is exactly the transposed layout, so
    /// a whole batch of activations multiplies against the weights with
    /// both operands walked contiguously. Blocking tiles the output so the
    /// right-hand rows stay cache-hot across the tile.
    ///
    /// Each output element is a single sequentially accumulated dot product
    /// (ascending `k`), bit-for-bit identical to the per-vector loops it
    /// replaces — blocking reorders the *elements*, never the accumulation
    /// within one element, so batched and per-sample inference agree
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree (`self.cols != other.cols`).
    #[must_use]
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "inner dimensions must match (got {} vs {})",
            self.cols, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        matmul_bt(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
        out
    }
}

/// Output tile edge of the blocked transposed-weights matmul.
const MATMUL_BLOCK: usize = 16;

/// `out[m x n] = a[m x k] · b[n x k]ᵀ`, blocked over the output tiles; see
/// [`Matrix::matmul_transposed`] for the determinism contract.
pub(crate) fn matmul_bt(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i0 in (0..m).step_by(MATMUL_BLOCK) {
        let i_end = (i0 + MATMUL_BLOCK).min(m);
        for j0 in (0..n).step_by(MATMUL_BLOCK) {
            let j_end = (j0 + MATMUL_BLOCK).min(n);
            for i in i0..i_end {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, out_cell) in out_row.iter_mut().enumerate().take(j_end).skip(j0) {
                    let b_row = &b[j * k..(j + 1) * k];
                    *out_cell = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum::<f32>();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_transposed_matches_manual_dot_products() {
        // a: 2x3, b (transposed rhs): 2x3 -> out 2x2.
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        let out = a.matmul_transposed(&b);
        assert_eq!(out.rows(), 2);
        assert_eq!(out.cols(), 2);
        assert_eq!(out.get(0, 0), 1.0 * 1.0 + 2.0 * 0.0 - 3.0);
        assert_eq!(out.get(0, 1), (1.0f32 * 0.5 + 2.0 * 0.5) + 3.0 * 0.5);
        assert_eq!(out.get(1, 0), 4.0 * 1.0 + 5.0 * 0.0 - 6.0);
    }

    #[test]
    fn matmul_transposed_is_bit_identical_to_the_vector_loop_across_blocks() {
        // Dimensions straddling the block size so multiple tiles execute.
        let m = 21;
        let k = 19;
        let n = 35;
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i as f32).sin()).collect());
        let b = Matrix::from_vec(n, k, (0..n * k).map(|i| (i as f32).cos()).collect());
        let out = a.matmul_transposed(&b);
        for i in 0..m {
            for j in 0..n {
                let scalar = a
                    .row(i)
                    .iter()
                    .zip(b.row(j))
                    .map(|(x, y)| x * y)
                    .sum::<f32>();
                assert_eq!(out.get(i, j).to_bits(), scalar.to_bits(), "({i}, {j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_transposed_validates_dimensions() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = a.matmul_transposed(&b);
    }
}
