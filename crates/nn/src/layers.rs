//! Layers with explicit forward/backward passes.
//!
//! The CuAsmRL policy network (§3.5, §3.7) is a small convolutional encoder
//! over the instruction-embedding matrix followed by MLP heads. The layers
//! here implement exactly what that network needs — forward evaluation,
//! gradient accumulation, and flattened parameter access for the Adam
//! optimizer — without a general autograd engine.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// Rectified linear unit applied in place.
pub fn relu_inplace(values: &mut [f32]) {
    for v in values {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Hyperbolic tangent applied elementwise.
#[must_use]
pub fn tanh(values: &[f32]) -> Vec<f32> {
    values.iter().map(|v| v.tanh()).collect()
}

fn scaled_uniform_init<R: Rng>(rng: &mut R, fan_in: usize, n: usize) -> Vec<f32> {
    let bound = (1.0 / fan_in.max(1) as f32).sqrt();
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

/// A fully connected layer `y = W x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    /// Row-major `[out_features x in_features]` weights.
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with scaled-uniform initial weights and zero bias.
    #[must_use]
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        Linear {
            in_features,
            out_features,
            weight: scaled_uniform_init(rng, in_features, in_features * out_features),
            bias: vec![0.0; out_features],
            grad_weight: vec![0.0; in_features * out_features],
            grad_bias: vec![0.0; out_features],
        }
    }

    /// Rebuilds a layer from raw parameter vectors (e.g. a checkpoint).
    /// Returns `None` when the vector lengths disagree with the dimensions.
    #[must_use]
    pub fn from_parts(
        in_features: usize,
        out_features: usize,
        weight: Vec<f32>,
        bias: Vec<f32>,
    ) -> Option<Self> {
        if weight.len() != in_features * out_features || bias.len() != out_features {
            return None;
        }
        Some(Linear {
            in_features,
            out_features,
            grad_weight: vec![0.0; weight.len()],
            grad_bias: vec![0.0; bias.len()],
            weight,
            bias,
        })
    }

    /// The row-major `[out_features x in_features]` weights.
    #[must_use]
    pub fn weight_values(&self) -> &[f32] {
        &self.weight
    }

    /// The bias vector.
    #[must_use]
    pub fn bias_values(&self) -> &[f32] {
        &self.bias
    }

    /// Input dimensionality.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output dimensionality.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward pass for a single input vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_features`.
    #[must_use]
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.in_features, "input size mismatch");
        (0..self.out_features)
            .map(|o| {
                let row = &self.weight[o * self.in_features..(o + 1) * self.in_features];
                row.iter().zip(input).map(|(w, x)| w * x).sum::<f32>() + self.bias[o]
            })
            .collect()
    }

    /// Batched forward pass: one blocked GEMM over a whole `[batch x in]`
    /// matrix instead of `batch` vector loops. Row `i` of the result is
    /// bit-identical to `forward(input.row(i))`.
    ///
    /// # Panics
    ///
    /// Panics if `input.cols() != in_features`.
    #[must_use]
    pub fn forward_batch(&self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_features, "input size mismatch");
        let rows = input.rows();
        let mut out = Matrix::zeros(rows, self.out_features);
        crate::matrix::matmul_bt(
            input.data(),
            rows,
            self.in_features,
            &self.weight,
            self.out_features,
            out.data_mut(),
        );
        for r in 0..rows {
            for (o, bias) in self.bias.iter().enumerate() {
                out.set(r, o, out.get(r, o) + bias);
            }
        }
        out
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    #[allow(clippy::needless_range_loop)] // indexes three parallel buffers
    pub fn backward(&mut self, input: &[f32], grad_output: &[f32]) -> Vec<f32> {
        let mut grad_input = vec![0.0; self.in_features];
        for o in 0..self.out_features {
            let go = grad_output[o];
            self.grad_bias[o] += go;
            for i in 0..self.in_features {
                self.grad_weight[o * self.in_features + i] += go * input[i];
                grad_input[i] += go * self.weight[o * self.in_features + i];
            }
        }
        grad_input
    }

    /// Batched backward pass over `[batch x ..]` matrices: accumulates the
    /// parameter gradients of every sample and returns the per-sample input
    /// gradients. Each gradient slot receives its per-sample additions in
    /// ascending sample order, so the accumulated state is bit-identical to
    /// calling [`Linear::backward`] once per row.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes disagree with the layer dimensions.
    #[allow(clippy::needless_range_loop)] // indexes parallel buffers
    pub fn backward_batch(&mut self, input: &Matrix, grad_output: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_features, "input size mismatch");
        assert_eq!(grad_output.cols(), self.out_features, "grad size mismatch");
        assert_eq!(input.rows(), grad_output.rows(), "batch size mismatch");
        let rows = input.rows();
        let mut grad_input = Matrix::zeros(rows, self.in_features);
        for o in 0..self.out_features {
            for r in 0..rows {
                let go = grad_output.get(r, o);
                self.grad_bias[o] += go;
                let in_row = input.row(r);
                for i in 0..self.in_features {
                    self.grad_weight[o * self.in_features + i] += go * in_row[i];
                }
            }
        }
        for r in 0..rows {
            let go_row = grad_output.row(r);
            for o in 0..self.out_features {
                let go = go_row[o];
                let w_row = &self.weight[o * self.in_features..(o + 1) * self.in_features];
                for i in 0..self.in_features {
                    grad_input.set(r, i, grad_input.get(r, i) + go * w_row[i]);
                }
            }
        }
        grad_input
    }

    /// Flattened parameters (weights then bias).
    pub fn parameters_mut(&mut self) -> Vec<&mut f32> {
        self.weight.iter_mut().chain(self.bias.iter_mut()).collect()
    }

    /// Flattened gradients in the same order as [`Linear::parameters_mut`].
    #[must_use]
    pub fn gradients(&self) -> Vec<f32> {
        self.grad_weight
            .iter()
            .chain(self.grad_bias.iter())
            .copied()
            .collect()
    }

    /// Zeroes the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Number of parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// A 1-D convolution over the instruction axis followed by global mean
/// pooling and a ReLU: the "CNN encoder" of the CuAsmRL policy.
///
/// Input is a `[T x F]` matrix (one row per instruction, `F` embedding
/// features); output is a `[channels]` vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvEncoder {
    channels: usize,
    kernel: usize,
    features: usize,
    /// `[channels x kernel x features]` weights, row-major.
    weight: Vec<f32>,
    bias: Vec<f32>,
    grad_weight: Vec<f32>,
    grad_bias: Vec<f32>,
}

impl ConvEncoder {
    /// Creates an encoder with `channels` output channels and a window of
    /// `kernel` instructions over `features` embedding features.
    #[must_use]
    pub fn new<R: Rng>(rng: &mut R, channels: usize, kernel: usize, features: usize) -> Self {
        let fan_in = kernel * features;
        ConvEncoder {
            channels,
            kernel,
            features,
            weight: scaled_uniform_init(rng, fan_in, channels * kernel * features),
            bias: vec![0.0; channels],
            grad_weight: vec![0.0; channels * kernel * features],
            grad_bias: vec![0.0; channels],
        }
    }

    /// Rebuilds an encoder from raw parameter vectors (e.g. a checkpoint).
    /// Returns `None` when the vector lengths disagree with the dimensions.
    #[must_use]
    pub fn from_parts(
        channels: usize,
        kernel: usize,
        features: usize,
        weight: Vec<f32>,
        bias: Vec<f32>,
    ) -> Option<Self> {
        if weight.len() != channels * kernel * features || bias.len() != channels {
            return None;
        }
        Some(ConvEncoder {
            channels,
            kernel,
            features,
            grad_weight: vec![0.0; weight.len()],
            grad_bias: vec![0.0; bias.len()],
            weight,
            bias,
        })
    }

    /// The `[channels x kernel x features]` row-major weights.
    #[must_use]
    pub fn weight_values(&self) -> &[f32] {
        &self.weight
    }

    /// The bias vector.
    #[must_use]
    pub fn bias_values(&self) -> &[f32] {
        &self.bias
    }

    /// Convolution window length (instructions).
    #[must_use]
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Embedding features per input row.
    #[must_use]
    pub fn input_features(&self) -> usize {
        self.features
    }

    /// Output dimensionality.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn windows(&self, rows: usize) -> usize {
        rows.saturating_sub(self.kernel) + 1
    }

    /// Forward pass: convolution, ReLU, then mean pooling over positions.
    /// Also returns the pre-pooling activations needed by the backward pass.
    #[must_use]
    pub fn forward(&self, input: &Matrix) -> (Vec<f32>, Matrix) {
        self.forward_rows(input, 0, input.rows())
    }

    /// Forward pass over the row range `[row_start, row_end)` of a stacked
    /// input matrix: lets a batch of variable-length inputs share one
    /// backing matrix (as produced by a vectorized env) without copying each
    /// sample out. Bit-identical to [`ConvEncoder::forward`] on the
    /// extracted sub-matrix.
    #[must_use]
    pub fn forward_rows(
        &self,
        input: &Matrix,
        row_start: usize,
        row_end: usize,
    ) -> (Vec<f32>, Matrix) {
        let rows = row_end - row_start;
        let windows = if rows >= self.kernel {
            self.windows(rows)
        } else {
            0
        };
        let mut activations = Matrix::zeros(self.channels, windows.max(1));
        let mut pooled = vec![0.0; self.channels];
        if windows == 0 {
            return (pooled, activations);
        }
        #[allow(clippy::needless_range_loop)] // indexes parallel buffers
        for c in 0..self.channels {
            for t in 0..windows {
                let mut acc = self.bias[c];
                for k in 0..self.kernel {
                    for f in 0..self.features.min(input.cols()) {
                        let w = self.weight[(c * self.kernel + k) * self.features + f];
                        acc += w * input.get(row_start + t + k, f);
                    }
                }
                let act = acc.max(0.0);
                activations.set(c, t, act);
                pooled[c] += act / windows as f32;
            }
        }
        (pooled, activations)
    }

    /// Batched forward pass over a stacked input: `offsets[i]..offsets[i+1]`
    /// are the rows of sample `i` (the layout vectorized envs already
    /// produce). Returns the pooled outputs stacked as a `[batch x
    /// channels]` matrix — ready for one GEMM through the downstream heads —
    /// plus each sample's pre-pooling activations. Row `i` of the pooled
    /// matrix is bit-identical to `forward` on sample `i` alone.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty or not ascending within the input.
    #[must_use]
    pub fn forward_batch(&self, stacked: &Matrix, offsets: &[usize]) -> (Matrix, Vec<Matrix>) {
        assert!(!offsets.is_empty(), "offsets must have batch + 1 entries");
        let batch = offsets.len() - 1;
        let mut pooled = Matrix::zeros(batch, self.channels);
        let mut activations = Vec::with_capacity(batch);
        for i in 0..batch {
            let (sample_pooled, sample_acts) =
                self.forward_rows(stacked, offsets[i], offsets[i + 1]);
            pooled.data_mut()[i * self.channels..(i + 1) * self.channels]
                .copy_from_slice(&sample_pooled);
            activations.push(sample_acts);
        }
        (pooled, activations)
    }

    /// Backward pass from the gradient of the pooled output. Accumulates
    /// parameter gradients (the gradient with respect to the input state is
    /// not needed and not computed).
    pub fn backward(&mut self, input: &Matrix, activations: &Matrix, grad_pooled: &[f32]) {
        self.backward_rows(input, 0, input.rows(), activations, grad_pooled);
    }

    /// Backward pass over the row range `[row_start, row_end)` of a stacked
    /// input matrix (the counterpart of [`ConvEncoder::forward_rows`]).
    #[allow(clippy::needless_range_loop)] // indexes three parallel buffers
    pub fn backward_rows(
        &mut self,
        input: &Matrix,
        row_start: usize,
        row_end: usize,
        activations: &Matrix,
        grad_pooled: &[f32],
    ) {
        let rows = row_end - row_start;
        if rows < self.kernel {
            return;
        }
        let windows = self.windows(rows);
        for c in 0..self.channels {
            for t in 0..windows {
                if activations.get(c, t) <= 0.0 {
                    continue; // ReLU gate.
                }
                let upstream = grad_pooled[c] / windows as f32;
                self.grad_bias[c] += upstream;
                for k in 0..self.kernel {
                    for f in 0..self.features.min(input.cols()) {
                        self.grad_weight[(c * self.kernel + k) * self.features + f] +=
                            upstream * input.get(row_start + t + k, f);
                    }
                }
            }
        }
    }

    /// Batched backward pass over a stacked input: accumulates every
    /// sample's parameter gradients in ascending sample order, so the
    /// resulting gradient state is bit-identical to calling
    /// [`ConvEncoder::backward`] once per sample.
    ///
    /// # Panics
    ///
    /// Panics if the batch dimensions disagree.
    pub fn backward_batch(
        &mut self,
        stacked: &Matrix,
        offsets: &[usize],
        activations: &[Matrix],
        grad_pooled: &Matrix,
    ) {
        assert!(!offsets.is_empty(), "offsets must have batch + 1 entries");
        let batch = offsets.len() - 1;
        assert_eq!(activations.len(), batch, "one activation set per sample");
        assert_eq!(grad_pooled.rows(), batch, "one pooled gradient per sample");
        for i in 0..batch {
            self.backward_rows(
                stacked,
                offsets[i],
                offsets[i + 1],
                &activations[i],
                grad_pooled.row(i),
            );
        }
    }

    /// Flattened parameters (weights then bias).
    pub fn parameters_mut(&mut self) -> Vec<&mut f32> {
        self.weight.iter_mut().chain(self.bias.iter_mut()).collect()
    }

    /// Flattened gradients in the same order as [`ConvEncoder::parameters_mut`].
    #[must_use]
    pub fn gradients(&self) -> Vec<f32> {
        self.grad_weight
            .iter()
            .chain(self.grad_bias.iter())
            .copied()
            .collect()
    }

    /// Zeroes the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Number of parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0)
    }

    #[test]
    fn linear_forward_matches_manual_computation() {
        let mut layer = Linear::new(&mut rng(), 2, 1);
        // Overwrite with known weights.
        for (p, v) in layer.parameters_mut().into_iter().zip([2.0, 3.0, 1.0]) {
            *p = v;
        }
        let out = layer.forward(&[10.0, 20.0]);
        assert_eq!(out, vec![2.0 * 10.0 + 3.0 * 20.0 + 1.0]);
    }

    #[test]
    fn linear_backward_matches_finite_differences() {
        let mut layer = Linear::new(&mut rng(), 3, 2);
        let input = [0.5, -1.0, 2.0];
        let grad_out = [1.0, -0.5];
        layer.zero_grad();
        let grad_in = layer.backward(&input, &grad_out);
        // Finite-difference check of d(sum(g .* y))/d(input[0]).
        let eps = 1e-3;
        let loss = |layer: &Linear, input: &[f32]| -> f32 {
            layer
                .forward(input)
                .iter()
                .zip(grad_out)
                .map(|(y, g)| y * g)
                .sum()
        };
        let mut bumped = input;
        bumped[0] += eps;
        let numeric = (loss(&layer, &bumped) - loss(&layer, &input)) / eps;
        assert!(
            (grad_in[0] - numeric).abs() < 1e-2,
            "{} vs {}",
            grad_in[0],
            numeric
        );
    }

    #[test]
    fn linear_weight_gradient_matches_finite_differences() {
        let mut layer = Linear::new(&mut rng(), 2, 2);
        let input = [1.5, -0.5];
        let grad_out = [0.7, 0.3];
        layer.zero_grad();
        let _ = layer.backward(&input, &grad_out);
        let analytic = layer.gradients()[0]; // d/d w[0][0]
        let eps = 1e-3;
        let loss = |layer: &Linear| -> f32 {
            layer
                .forward(&input)
                .iter()
                .zip(grad_out)
                .map(|(y, g)| y * g)
                .sum()
        };
        let base = loss(&layer);
        *layer.parameters_mut()[0] += eps;
        let numeric = (loss(&layer) - base) / eps;
        assert!((analytic - numeric).abs() < 1e-2);
    }

    #[test]
    fn conv_encoder_pools_over_positions() {
        let enc = ConvEncoder::new(&mut rng(), 4, 3, 5);
        let input = Matrix::from_vec(6, 5, (0..30).map(|i| i as f32 * 0.1).collect());
        let (pooled, activations) = enc.forward(&input);
        assert_eq!(pooled.len(), 4);
        assert_eq!(activations.rows(), 4);
        assert_eq!(activations.cols(), 4); // 6 - 3 + 1 windows
        assert!(pooled.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn conv_encoder_handles_inputs_shorter_than_the_kernel() {
        let enc = ConvEncoder::new(&mut rng(), 2, 5, 3);
        let input = Matrix::zeros(2, 3);
        let (pooled, _) = enc.forward(&input);
        assert_eq!(pooled, vec![0.0, 0.0]);
    }

    #[test]
    fn conv_encoder_gradient_matches_finite_differences() {
        let mut enc = ConvEncoder::new(&mut rng(), 2, 2, 3);
        let input = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32 - 6.0) * 0.25).collect());
        let grad_pooled = [1.0, -2.0];
        enc.zero_grad();
        let (_, activations) = enc.forward(&input);
        enc.backward(&input, &activations, &grad_pooled);
        let analytic = enc.gradients()[0];
        let eps = 1e-3;
        let loss = |enc: &ConvEncoder| -> f32 {
            enc.forward(&input)
                .0
                .iter()
                .zip(grad_pooled)
                .map(|(y, g)| y * g)
                .sum()
        };
        let base = loss(&enc);
        *enc.parameters_mut()[0] += eps;
        let numeric = (loss(&enc) - base) / eps;
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn linear_forward_batch_is_bit_identical_to_per_row_forward() {
        let layer = Linear::new(&mut rng(), 7, 5);
        let rows = 19; // straddles the matmul block size together with 7x5
        let input = Matrix::from_vec(rows, 7, (0..rows * 7).map(|i| (i as f32).sin()).collect());
        let batched = layer.forward_batch(&input);
        for r in 0..rows {
            let single = layer.forward(input.row(r));
            for (o, v) in single.iter().enumerate() {
                assert_eq!(batched.get(r, o).to_bits(), v.to_bits(), "row {r} out {o}");
            }
        }
    }

    #[test]
    fn linear_backward_batch_matches_repeated_backward_bit_for_bit() {
        let mut batched = Linear::new(&mut rng(), 4, 3);
        let mut sequential = batched.clone();
        let rows = 6;
        let input = Matrix::from_vec(rows, 4, (0..rows * 4).map(|i| (i as f32).cos()).collect());
        let grads = Matrix::from_vec(rows, 3, (0..rows * 3).map(|i| (i as f32).sin()).collect());
        batched.zero_grad();
        sequential.zero_grad();
        let grad_in_batched = batched.backward_batch(&input, &grads);
        for r in 0..rows {
            let grad_in = sequential.backward(input.row(r), grads.row(r));
            for (i, g) in grad_in.iter().enumerate() {
                assert_eq!(grad_in_batched.get(r, i).to_bits(), g.to_bits());
            }
        }
        let a: Vec<u32> = batched.gradients().iter().map(|g| g.to_bits()).collect();
        let b: Vec<u32> = sequential.gradients().iter().map(|g| g.to_bits()).collect();
        assert_eq!(a, b, "accumulated gradients must be bit-identical");
    }

    #[test]
    fn conv_forward_batch_matches_per_sample_forward_bit_for_bit() {
        let enc = ConvEncoder::new(&mut rng(), 4, 3, 5);
        // Three samples of different lengths stacked into one matrix, one
        // shorter than the kernel window.
        let lengths = [6usize, 2, 9];
        let mut offsets = vec![0usize];
        for len in lengths {
            offsets.push(offsets.last().unwrap() + len);
        }
        let total = *offsets.last().unwrap();
        let stacked =
            Matrix::from_vec(total, 5, (0..total * 5).map(|i| (i as f32).sin()).collect());
        let (pooled, activations) = enc.forward_batch(&stacked, &offsets);
        assert_eq!(pooled.rows(), 3);
        for (i, len) in lengths.iter().enumerate() {
            let mut data = Vec::new();
            for row in offsets[i]..offsets[i + 1] {
                data.extend_from_slice(stacked.row(row));
            }
            let sample = Matrix::from_vec(*len, 5, data);
            let (single_pooled, single_acts) = enc.forward(&sample);
            for (c, v) in single_pooled.iter().enumerate() {
                assert_eq!(pooled.get(i, c).to_bits(), v.to_bits(), "sample {i}");
            }
            assert_eq!(activations[i], single_acts);
        }
    }

    #[test]
    fn conv_backward_batch_matches_repeated_backward_bit_for_bit() {
        let mut batched = ConvEncoder::new(&mut rng(), 3, 2, 4);
        let mut sequential = batched.clone();
        let lengths = [5usize, 4];
        let mut offsets = vec![0usize];
        for len in lengths {
            offsets.push(offsets.last().unwrap() + len);
        }
        let total = *offsets.last().unwrap();
        let stacked =
            Matrix::from_vec(total, 4, (0..total * 4).map(|i| (i as f32).cos()).collect());
        let grad_pooled = Matrix::from_vec(2, 3, (0..6).map(|i| (i as f32) * 0.3 - 0.7).collect());
        let (_, activations) = batched.forward_batch(&stacked, &offsets);
        batched.zero_grad();
        sequential.zero_grad();
        batched.backward_batch(&stacked, &offsets, &activations, &grad_pooled);
        for (i, len) in lengths.iter().enumerate() {
            let mut data = Vec::new();
            for row in offsets[i]..offsets[i + 1] {
                data.extend_from_slice(stacked.row(row));
            }
            let sample = Matrix::from_vec(*len, 4, data);
            let (_, acts) = sequential.forward(&sample);
            sequential.backward(&sample, &acts, grad_pooled.row(i));
        }
        let a: Vec<u32> = batched.gradients().iter().map(|g| g.to_bits()).collect();
        let b: Vec<u32> = sequential.gradients().iter().map(|g| g.to_bits()).collect();
        assert_eq!(a, b, "accumulated gradients must be bit-identical");
    }

    #[test]
    fn activations_helpers() {
        let mut v = vec![-1.0, 2.0];
        relu_inplace(&mut v);
        assert_eq!(v, vec![0.0, 2.0]);
        let t = tanh(&[0.0]);
        assert_eq!(t, vec![0.0]);
    }

    #[test]
    fn from_parts_round_trips_and_validates_shapes() {
        let layer = Linear::new(&mut rng(), 3, 2);
        let rebuilt = Linear::from_parts(
            3,
            2,
            layer.weight_values().to_vec(),
            layer.bias_values().to_vec(),
        )
        .expect("consistent shapes");
        let input = [0.25, -1.5, 2.0];
        let a: Vec<u32> = layer.forward(&input).iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = rebuilt
            .forward(&input)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(a, b);
        assert!(Linear::from_parts(3, 2, vec![0.0; 5], vec![0.0; 2]).is_none());

        let enc = ConvEncoder::new(&mut rng(), 2, 3, 4);
        let rebuilt = ConvEncoder::from_parts(
            enc.channels(),
            enc.kernel_size(),
            enc.input_features(),
            enc.weight_values().to_vec(),
            enc.bias_values().to_vec(),
        )
        .expect("consistent shapes");
        let input = Matrix::from_vec(5, 4, (0..20).map(|i| (i as f32).sin()).collect());
        let (pa, _) = enc.forward(&input);
        let (pb, _) = rebuilt.forward(&input);
        let a: Vec<u32> = pa.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = pb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
        assert!(ConvEncoder::from_parts(2, 3, 4, vec![0.0; 7], vec![0.0; 2]).is_none());
    }

    #[test]
    fn parameter_counts() {
        let layer = Linear::new(&mut rng(), 3, 2);
        assert_eq!(layer.parameter_count(), 8);
        let enc = ConvEncoder::new(&mut rng(), 2, 3, 4);
        assert_eq!(enc.parameter_count(), 2 * 3 * 4 + 2);
    }
}
