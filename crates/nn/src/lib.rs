//! Minimal neural-network building blocks for the CuAsmRL reproduction.
//!
//! The paper's RL agent (§3.5, §3.7) is a small network — a convolutional
//! encoder over the instruction-embedding matrix followed by MLP heads —
//! trained with PPO. This crate provides exactly the pieces that network
//! needs, implemented from scratch with explicit forward/backward passes:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix,
//! * [`Linear`] and [`ConvEncoder`] — layers with manual backpropagation,
//! * [`Adam`] — the optimizer,
//! * [`MaskedCategorical`] — the action distribution with invalid-action
//!   masking.
//!
//! # Example
//!
//! ```
//! use nn::{Linear, MaskedCategorical};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let actor = Linear::new(&mut rng, 4, 3);
//! let logits = actor.forward(&[0.1, 0.2, 0.3, 0.4]);
//! let dist = MaskedCategorical::from_logits(&logits, &[true, true, false]);
//! assert_eq!(dist.probs()[2], 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod categorical;
mod layers;
mod matrix;

pub use adam::Adam;
pub use categorical::MaskedCategorical;
pub use layers::{relu_inplace, tanh, ConvEncoder, Linear};
pub use matrix::Matrix;
