//! Property-based tests for the SASS instruction model.

use proptest::prelude::*;
use sass::{adjacent_register, decode_program, encode_program, ControlCode, Program};

proptest! {
    /// The adjacent-register rule (equation 2) is an involution and always
    /// pairs an even register with the next odd one.
    #[test]
    fn adjacent_register_is_an_involution(n in 0u16..255) {
        let adj = adjacent_register(n);
        prop_assert_eq!(adjacent_register(adj), n);
        prop_assert_eq!(n / 2, adj / 2);
        prop_assert_ne!(n, adj);
    }

    /// Control codes round-trip through both the textual and the packed
    /// binary representation.
    #[test]
    fn control_codes_round_trip(
        wait in 0u8..64,
        read in prop::option::of(0u8..6),
        write in prop::option::of(0u8..6),
        yld in any::<bool>(),
        stall in 0u8..16,
    ) {
        let mut cc = ControlCode::with_stall(stall).set_yield(yld);
        for b in 0..6 {
            if wait & (1 << b) != 0 {
                cc = cc.wait_on(b);
            }
        }
        if let Some(r) = read {
            cc = cc.set_read_barrier(r);
        }
        if let Some(w) = write {
            cc = cc.set_write_barrier(w);
        }
        let text = cc.to_string();
        prop_assert_eq!(text.parse::<ControlCode>().unwrap(), cc);
        prop_assert_eq!(ControlCode::from_bits(cc.to_bits()).unwrap(), cc);
    }

    /// Any sequence of in-range adjacent swaps preserves the instruction
    /// multiset and the label positions, and the encoded program always
    /// round-trips.
    #[test]
    fn swaps_preserve_instructions_and_encoding_round_trips(
        swaps in prop::collection::vec(0usize..4, 0..16)
    ) {
        let text = "\
[B------:R-:W-:-:S04] MOV R4, 0x100 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
.L_mid:
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S04] IADD3 R8, R6, 0x2, RZ ;
[B------:R-:W-:-:S02] STG.E [R4], R8 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let original: Program = text.parse().unwrap();
        let mut mutated = original.clone();
        for s in swaps {
            let _ = mutated.swap_instructions(s, s + 1);
        }
        prop_assert_eq!(mutated.instruction_count(), original.instruction_count());
        let mut original_texts: Vec<String> =
            original.instructions().map(ToString::to_string).collect();
        let mut mutated_texts: Vec<String> =
            mutated.instructions().map(ToString::to_string).collect();
        original_texts.sort();
        mutated_texts.sort();
        prop_assert_eq!(original_texts, mutated_texts);
        // Labels stay where they were in the item list.
        prop_assert!(matches!(mutated.items()[2], sass::Item::Label(_)));
        // Binary encoding round-trips the mutated schedule exactly.
        let decoded = decode_program(&encode_program(&mutated)).unwrap();
        prop_assert_eq!(decoded, mutated);
    }
}
