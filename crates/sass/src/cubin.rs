//! An ELF-like cubin container.
//!
//! When CuAsmRL intercepts the compiled cubin (§4.1), it must replace *only*
//! the kernel text section while preserving every other section byte for
//! byte — symbol tables, relocation info and the ELF headers must stay
//! intact or the module will not load. This module models that constraint:
//! a [`Cubin`] is a list of named [`Section`]s plus a symbol table, and
//! [`Cubin::replace_kernel_section`] rewrites the text section of one kernel
//! without touching anything else.

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::{decode_program, encode_program, Program, SassError};

/// The role of a section within the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SectionKind {
    /// Executable kernel text (encoded SASS).
    Text,
    /// Symbol table.
    SymbolTable,
    /// Kernel metadata (register counts, shared memory sizes, ...).
    Info,
    /// Constant bank initial data.
    Constant,
    /// Anything else.
    Other,
}

/// A named section of the cubin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Section name, e.g. `.text.matmul_kernel`.
    pub name: String,
    /// Section role.
    pub kind: SectionKind,
    /// Raw section contents.
    pub data: Vec<u8>,
}

/// A symbol table entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbol {
    /// Symbol name (the kernel entry point name for text symbols).
    pub name: String,
    /// Name of the section the symbol lives in.
    pub section: String,
    /// Offset of the symbol within its section.
    pub offset: u64,
    /// Size of the symbol in bytes.
    pub size: u64,
}

/// A binary kernel container, standing in for an NVIDIA cubin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cubin {
    architecture: String,
    sections: Vec<Section>,
    symbols: Vec<Symbol>,
}

const CUBIN_MAGIC: &[u8; 4] = b"CUBN";

impl Cubin {
    /// Creates a cubin containing a single kernel.
    ///
    /// Besides the text section this synthesises the metadata sections a real
    /// cubin carries (symbol table entry, `.nv.info` blob, constant bank),
    /// so that the interception workflow has realistic invariants to
    /// preserve.
    #[must_use]
    pub fn from_kernel(architecture: &str, kernel_name: &str, program: &Program) -> Self {
        let text_name = format!(".text.{kernel_name}");
        let text = encode_program(program);
        let text_len = text.len() as u64;
        let info = format!("EIATTR_KERNEL {kernel_name} regs=255 smem=49152 arch={architecture}")
            .into_bytes();
        let sections = vec![
            Section {
                name: text_name.clone(),
                kind: SectionKind::Text,
                data: text,
            },
            Section {
                name: format!(".nv.info.{kernel_name}"),
                kind: SectionKind::Info,
                data: info,
            },
            Section {
                name: ".nv.constant0".to_string(),
                kind: SectionKind::Constant,
                data: vec![0u8; 256],
            },
        ];
        let symbols = vec![Symbol {
            name: kernel_name.to_string(),
            section: text_name,
            offset: 0,
            size: text_len,
        }];
        Cubin {
            architecture: architecture.to_string(),
            sections,
            symbols,
        }
    }

    /// Target architecture string (e.g. `sm_80`).
    #[must_use]
    pub fn architecture(&self) -> &str {
        &self.architecture
    }

    /// All sections, in order.
    #[must_use]
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// The symbol table.
    #[must_use]
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Names of all kernels (text-section symbols) in the container.
    #[must_use]
    pub fn kernel_names(&self) -> Vec<&str> {
        self.symbols
            .iter()
            .filter(|s| {
                self.sections
                    .iter()
                    .any(|sec| sec.name == s.section && sec.kind == SectionKind::Text)
            })
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Disassembles the text section of the named kernel.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel or its section is missing or its text
    /// section cannot be decoded.
    pub fn kernel_program(&self, kernel_name: &str) -> Result<Program, SassError> {
        let section = self.text_section(kernel_name)?;
        decode_program(&section.data)
    }

    /// Replaces the text section of the named kernel with a new schedule,
    /// leaving every other section untouched and updating the symbol size.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel is unknown.
    pub fn replace_kernel_section(
        &mut self,
        kernel_name: &str,
        program: &Program,
    ) -> Result<(), SassError> {
        let section_name = self.symbol(kernel_name)?.section.clone();
        let encoded = encode_program(program);
        let new_size = encoded.len() as u64;
        let section = self
            .sections
            .iter_mut()
            .find(|s| s.name == section_name)
            .ok_or_else(|| SassError::Cubin(format!("missing section `{section_name}`")))?;
        section.data = encoded;
        let symbol = self
            .symbols
            .iter_mut()
            .find(|s| s.name == kernel_name)
            .ok_or_else(|| SassError::Cubin(format!("missing symbol `{kernel_name}`")))?;
        symbol.size = new_size;
        Ok(())
    }

    fn symbol(&self, kernel_name: &str) -> Result<&Symbol, SassError> {
        self.symbols
            .iter()
            .find(|s| s.name == kernel_name)
            .ok_or_else(|| SassError::Cubin(format!("unknown kernel `{kernel_name}`")))
    }

    fn text_section(&self, kernel_name: &str) -> Result<&Section, SassError> {
        let symbol = self.symbol(kernel_name)?;
        self.sections
            .iter()
            .find(|s| s.name == symbol.section)
            .ok_or_else(|| SassError::Cubin(format!("missing section `{}`", symbol.section)))
    }

    /// Serializes the container to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_slice(CUBIN_MAGIC);
        put_string(&mut buf, &self.architecture);
        buf.put_u32_le(self.sections.len() as u32);
        for section in &self.sections {
            put_string(&mut buf, &section.name);
            buf.put_u8(match section.kind {
                SectionKind::Text => 0,
                SectionKind::SymbolTable => 1,
                SectionKind::Info => 2,
                SectionKind::Constant => 3,
                SectionKind::Other => 4,
            });
            buf.put_u32_le(section.data.len() as u32);
            buf.put_slice(&section.data);
        }
        buf.put_u32_le(self.symbols.len() as u32);
        for symbol in &self.symbols {
            put_string(&mut buf, &symbol.name);
            put_string(&mut buf, &symbol.section);
            buf.put_u64_le(symbol.offset);
            buf.put_u64_le(symbol.size);
        }
        buf
    }

    /// Deserializes a container produced by [`Cubin::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer is truncated or malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SassError> {
        let mut buf = bytes;
        if buf.remaining() < 4 {
            return Err(SassError::Cubin("truncated container".to_string()));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != CUBIN_MAGIC {
            return Err(SassError::Cubin("bad container magic".to_string()));
        }
        let architecture = get_string(&mut buf)?;
        let section_count = get_u32(&mut buf)? as usize;
        let mut sections = Vec::with_capacity(section_count);
        for _ in 0..section_count {
            let name = get_string(&mut buf)?;
            let kind = match get_u8(&mut buf)? {
                0 => SectionKind::Text,
                1 => SectionKind::SymbolTable,
                2 => SectionKind::Info,
                3 => SectionKind::Constant,
                _ => SectionKind::Other,
            };
            let len = get_u32(&mut buf)? as usize;
            if buf.remaining() < len {
                return Err(SassError::Cubin("truncated section".to_string()));
            }
            let mut data = vec![0u8; len];
            buf.copy_to_slice(&mut data);
            sections.push(Section { name, kind, data });
        }
        let symbol_count = get_u32(&mut buf)? as usize;
        let mut symbols = Vec::with_capacity(symbol_count);
        for _ in 0..symbol_count {
            let name = get_string(&mut buf)?;
            let section = get_string(&mut buf)?;
            if buf.remaining() < 16 {
                return Err(SassError::Cubin("truncated symbol".to_string()));
            }
            let offset = buf.get_u64_le();
            let size = buf.get_u64_le();
            symbols.push(Symbol {
                name,
                section,
                offset,
                size,
            });
        }
        Ok(Cubin {
            architecture,
            sections,
            symbols,
        })
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, SassError> {
    if buf.remaining() < 1 {
        return Err(SassError::Cubin("truncated container".to_string()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, SassError> {
    if buf.remaining() < 4 {
        return Err(SassError::Cubin("truncated container".to_string()));
    }
    Ok(buf.get_u32_le())
}

fn get_string(buf: &mut &[u8]) -> Result<String, SassError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(SassError::Cubin("truncated string".to_string()));
    }
    let mut data = vec![0u8; len];
    buf.copy_to_slice(&mut data);
    String::from_utf8(data).map_err(|e| SassError::Cubin(format!("invalid UTF-8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
[B------:R-:W0:-:S02] LDG.E R2, [R10.64] ;
[B0-----:R-:W-:-:S04] IMAD R8, R4, R2, RZ ;
[B------:R-:W-:-:S02] STG.E [R12.64], R8 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn sample_program() -> Program {
        SAMPLE.parse().unwrap()
    }

    #[test]
    fn build_and_read_back_kernel() {
        let program = sample_program();
        let cubin = Cubin::from_kernel("sm_80", "matmul_kernel", &program);
        assert_eq!(cubin.kernel_names(), vec!["matmul_kernel"]);
        assert_eq!(cubin.kernel_program("matmul_kernel").unwrap(), program);
        assert_eq!(cubin.architecture(), "sm_80");
    }

    #[test]
    fn replace_kernel_section_preserves_metadata() {
        let program = sample_program();
        let mut cubin = Cubin::from_kernel("sm_80", "matmul_kernel", &program);
        let metadata_before: Vec<Section> = cubin
            .sections()
            .iter()
            .filter(|s| s.kind != SectionKind::Text)
            .cloned()
            .collect();

        let mut optimized = program.clone();
        optimized.swap_instructions(1, 2).unwrap();
        cubin
            .replace_kernel_section("matmul_kernel", &optimized)
            .unwrap();

        let metadata_after: Vec<Section> = cubin
            .sections()
            .iter()
            .filter(|s| s.kind != SectionKind::Text)
            .cloned()
            .collect();
        assert_eq!(metadata_before, metadata_after);
        assert_eq!(cubin.kernel_program("matmul_kernel").unwrap(), optimized);
    }

    #[test]
    fn replace_unknown_kernel_is_an_error() {
        let mut cubin = Cubin::from_kernel("sm_80", "k", &sample_program());
        assert!(cubin
            .replace_kernel_section("missing", &sample_program())
            .is_err());
        assert!(cubin.kernel_program("missing").is_err());
    }

    #[test]
    fn container_bytes_round_trip() {
        let cubin = Cubin::from_kernel("sm_80", "softmax_kernel", &sample_program());
        let bytes = cubin.to_bytes();
        let decoded = Cubin::from_bytes(&bytes).unwrap();
        assert_eq!(cubin, decoded);
    }

    #[test]
    fn container_rejects_corruption() {
        let cubin = Cubin::from_kernel("sm_80", "k", &sample_program());
        let bytes = cubin.to_bytes();
        assert!(Cubin::from_bytes(&bytes[..10]).is_err());
        let mut corrupted = bytes.clone();
        corrupted[0] = b'X';
        assert!(Cubin::from_bytes(&corrupted).is_err());
    }
}
