//! Error type shared by the parser, encoder and cubin container.

use std::fmt;

/// Error produced while parsing, encoding or decoding SASS artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SassError {
    /// A line of SASS text could not be parsed.
    Parse {
        /// 1-based line number within the listing, when known.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A control code field was malformed.
    ControlCode(String),
    /// An operand token could not be parsed.
    Operand(String),
    /// The binary encoding of a program or cubin was malformed.
    Encoding(String),
    /// A cubin section or symbol was missing or inconsistent.
    Cubin(String),
}

impl SassError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        SassError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SassError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SassError::ControlCode(msg) => write!(f, "invalid control code: {msg}"),
            SassError::Operand(msg) => write!(f, "invalid operand: {msg}"),
            SassError::Encoding(msg) => write!(f, "invalid encoding: {msg}"),
            SassError::Cubin(msg) => write!(f, "invalid cubin: {msg}"),
        }
    }
}

impl std::error::Error for SassError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SassError::parse(3, "unexpected token `foo`");
        let text = err.to_string();
        assert!(text.contains("line 3"));
        assert!(text.contains("unexpected token"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SassError>();
    }
}
