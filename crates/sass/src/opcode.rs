//! Opcodes, modifiers and instruction classification.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::SassError;

/// Latency class of an instruction (§2.3.1 of the paper).
///
/// Fixed-latency instructions (mostly ALU operations) complete in a known
/// number of cycles and resolve their hazards through the stall count.
/// Variable-latency instructions (memory operations, transcendentals) signal
/// completion through scoreboard barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Completes after a fixed number of pipeline cycles.
    Fixed,
    /// Completion time depends on the memory hierarchy or a long-latency unit.
    Variable,
}

/// Memory space targeted by a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemorySpace {
    /// Off-chip global memory (through L1/L2).
    Global,
    /// On-chip shared memory.
    Shared,
    /// Per-thread local memory.
    Local,
    /// Constant bank.
    Constant,
    /// Asynchronous global-to-shared copy path (`LDGSTS`).
    GlobalToShared,
}

/// The base mnemonic of a SASS instruction.
///
/// The set below covers every mnemonic that appears in the kernels evaluated
/// by the paper (Table 2) plus the mnemonics used by the microbenchmarks.
/// Unknown mnemonics are preserved verbatim in [`Mnemonic::Other`] so that a
/// listing always round-trips.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Mnemonic {
    // Integer ALU (fixed latency).
    Iadd3,
    Imad,
    Imnmx,
    Lea,
    Sel,
    Mov,
    Iabs,
    Shf,
    Lop3,
    Isetp,
    Iset,
    Plop3,
    Popc,
    Flo,
    Vote,
    // Floating point ALU (fixed latency).
    Fadd,
    Fmul,
    Ffma,
    Fsel,
    Fsetp,
    Fmnmx,
    Hadd2,
    Hmul2,
    Hfma2,
    Hset2,
    Hsetp2,
    F2f,
    F2i,
    I2f,
    // Tensor core.
    Hmma,
    Imma,
    // Special function unit (variable latency).
    Mufu,
    // Register / system moves.
    Cs2r,
    S2r,
    R2p,
    P2r,
    Shfl,
    // Memory (variable latency).
    Ldg,
    Stg,
    Lds,
    Sts,
    Ldsm,
    Ldgsts,
    Ldl,
    Stl,
    Ld,
    St,
    Atom,
    Atoms,
    Atomg,
    Red,
    Ldc,
    // Barriers and synchronisation.
    Bar,
    Depbar,
    Ldgdepbar,
    Membar,
    Errbar,
    Cctl,
    Fence,
    Bssy,
    Bsync,
    // Control flow.
    Bra,
    Brx,
    Jmp,
    Call,
    Ret,
    Exit,
    Nop,
    Warpsync,
    Yield,
    Nanosleep,
    /// Any mnemonic not in the list above, preserved verbatim.
    Other(String),
}

impl Mnemonic {
    /// Canonical upper-case text of the mnemonic.
    #[must_use]
    pub fn as_str(&self) -> &str {
        match self {
            Mnemonic::Iadd3 => "IADD3",
            Mnemonic::Imad => "IMAD",
            Mnemonic::Imnmx => "IMNMX",
            Mnemonic::Lea => "LEA",
            Mnemonic::Sel => "SEL",
            Mnemonic::Mov => "MOV",
            Mnemonic::Iabs => "IABS",
            Mnemonic::Shf => "SHF",
            Mnemonic::Lop3 => "LOP3",
            Mnemonic::Isetp => "ISETP",
            Mnemonic::Iset => "ISET",
            Mnemonic::Plop3 => "PLOP3",
            Mnemonic::Popc => "POPC",
            Mnemonic::Flo => "FLO",
            Mnemonic::Vote => "VOTE",
            Mnemonic::Fadd => "FADD",
            Mnemonic::Fmul => "FMUL",
            Mnemonic::Ffma => "FFMA",
            Mnemonic::Fsel => "FSEL",
            Mnemonic::Fsetp => "FSETP",
            Mnemonic::Fmnmx => "FMNMX",
            Mnemonic::Hadd2 => "HADD2",
            Mnemonic::Hmul2 => "HMUL2",
            Mnemonic::Hfma2 => "HFMA2",
            Mnemonic::Hset2 => "HSET2",
            Mnemonic::Hsetp2 => "HSETP2",
            Mnemonic::F2f => "F2F",
            Mnemonic::F2i => "F2I",
            Mnemonic::I2f => "I2F",
            Mnemonic::Hmma => "HMMA",
            Mnemonic::Imma => "IMMA",
            Mnemonic::Mufu => "MUFU",
            Mnemonic::Cs2r => "CS2R",
            Mnemonic::S2r => "S2R",
            Mnemonic::R2p => "R2P",
            Mnemonic::P2r => "P2R",
            Mnemonic::Shfl => "SHFL",
            Mnemonic::Ldg => "LDG",
            Mnemonic::Stg => "STG",
            Mnemonic::Lds => "LDS",
            Mnemonic::Sts => "STS",
            Mnemonic::Ldsm => "LDSM",
            Mnemonic::Ldgsts => "LDGSTS",
            Mnemonic::Ldl => "LDL",
            Mnemonic::Stl => "STL",
            Mnemonic::Ld => "LD",
            Mnemonic::St => "ST",
            Mnemonic::Atom => "ATOM",
            Mnemonic::Atoms => "ATOMS",
            Mnemonic::Atomg => "ATOMG",
            Mnemonic::Red => "RED",
            Mnemonic::Ldc => "LDC",
            Mnemonic::Bar => "BAR",
            Mnemonic::Depbar => "DEPBAR",
            Mnemonic::Ldgdepbar => "LDGDEPBAR",
            Mnemonic::Membar => "MEMBAR",
            Mnemonic::Errbar => "ERRBAR",
            Mnemonic::Cctl => "CCTL",
            Mnemonic::Fence => "FENCE",
            Mnemonic::Bssy => "BSSY",
            Mnemonic::Bsync => "BSYNC",
            Mnemonic::Bra => "BRA",
            Mnemonic::Brx => "BRX",
            Mnemonic::Jmp => "JMP",
            Mnemonic::Call => "CALL",
            Mnemonic::Ret => "RET",
            Mnemonic::Exit => "EXIT",
            Mnemonic::Nop => "NOP",
            Mnemonic::Warpsync => "WARPSYNC",
            Mnemonic::Yield => "YIELD",
            Mnemonic::Nanosleep => "NANOSLEEP",
            Mnemonic::Other(s) => s,
        }
    }
}

impl FromStr for Mnemonic {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(SassError::Operand("empty mnemonic".to_string()));
        }
        Ok(match s {
            "IADD3" => Mnemonic::Iadd3,
            "IMAD" => Mnemonic::Imad,
            "IMNMX" => Mnemonic::Imnmx,
            "LEA" => Mnemonic::Lea,
            "SEL" => Mnemonic::Sel,
            "MOV" => Mnemonic::Mov,
            "IABS" => Mnemonic::Iabs,
            "SHF" => Mnemonic::Shf,
            "LOP3" => Mnemonic::Lop3,
            "ISETP" => Mnemonic::Isetp,
            "ISET" => Mnemonic::Iset,
            "PLOP3" => Mnemonic::Plop3,
            "POPC" => Mnemonic::Popc,
            "FLO" => Mnemonic::Flo,
            "VOTE" => Mnemonic::Vote,
            "FADD" => Mnemonic::Fadd,
            "FMUL" => Mnemonic::Fmul,
            "FFMA" => Mnemonic::Ffma,
            "FSEL" => Mnemonic::Fsel,
            "FSETP" => Mnemonic::Fsetp,
            "FMNMX" => Mnemonic::Fmnmx,
            "HADD2" => Mnemonic::Hadd2,
            "HMUL2" => Mnemonic::Hmul2,
            "HFMA2" => Mnemonic::Hfma2,
            "HSET2" => Mnemonic::Hset2,
            "HSETP2" => Mnemonic::Hsetp2,
            "F2F" => Mnemonic::F2f,
            "F2I" => Mnemonic::F2i,
            "I2F" => Mnemonic::I2f,
            "HMMA" => Mnemonic::Hmma,
            "IMMA" => Mnemonic::Imma,
            "MUFU" => Mnemonic::Mufu,
            "CS2R" => Mnemonic::Cs2r,
            "S2R" => Mnemonic::S2r,
            "R2P" => Mnemonic::R2p,
            "P2R" => Mnemonic::P2r,
            "SHFL" => Mnemonic::Shfl,
            "LDG" => Mnemonic::Ldg,
            "STG" => Mnemonic::Stg,
            "LDS" => Mnemonic::Lds,
            "STS" => Mnemonic::Sts,
            "LDSM" => Mnemonic::Ldsm,
            "LDGSTS" => Mnemonic::Ldgsts,
            "LDL" => Mnemonic::Ldl,
            "STL" => Mnemonic::Stl,
            "LD" => Mnemonic::Ld,
            "ST" => Mnemonic::St,
            "ATOM" => Mnemonic::Atom,
            "ATOMS" => Mnemonic::Atoms,
            "ATOMG" => Mnemonic::Atomg,
            "RED" => Mnemonic::Red,
            "LDC" => Mnemonic::Ldc,
            "BAR" => Mnemonic::Bar,
            "DEPBAR" => Mnemonic::Depbar,
            "LDGDEPBAR" => Mnemonic::Ldgdepbar,
            "MEMBAR" => Mnemonic::Membar,
            "ERRBAR" => Mnemonic::Errbar,
            "CCTL" => Mnemonic::Cctl,
            "FENCE" => Mnemonic::Fence,
            "BSSY" => Mnemonic::Bssy,
            "BSYNC" => Mnemonic::Bsync,
            "BRA" => Mnemonic::Bra,
            "BRX" => Mnemonic::Brx,
            "JMP" => Mnemonic::Jmp,
            "CALL" => Mnemonic::Call,
            "RET" => Mnemonic::Ret,
            "EXIT" => Mnemonic::Exit,
            "NOP" => Mnemonic::Nop,
            "WARPSYNC" => Mnemonic::Warpsync,
            "YIELD" => Mnemonic::Yield,
            "NANOSLEEP" => Mnemonic::Nanosleep,
            other => Mnemonic::Other(other.to_string()),
        })
    }
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An opcode: the base mnemonic plus its dot-separated modifiers.
///
/// For example `IMAD.WIDE.U32` has base [`Mnemonic::Imad`] and modifiers
/// `["WIDE", "U32"]`, and `LDGSTS.E.BYPASS.LTC128B.128` has base
/// [`Mnemonic::Ldgsts`] with four modifiers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Opcode {
    base: Mnemonic,
    modifiers: Vec<String>,
}

impl Opcode {
    /// Creates an opcode with no modifiers.
    #[must_use]
    pub fn new(base: Mnemonic) -> Self {
        Opcode {
            base,
            modifiers: Vec::new(),
        }
    }

    /// Creates an opcode with the given modifiers.
    #[must_use]
    pub fn with_modifiers<I, S>(base: Mnemonic, modifiers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Opcode {
            base,
            modifiers: modifiers.into_iter().map(Into::into).collect(),
        }
    }

    /// The base mnemonic.
    #[must_use]
    pub fn base(&self) -> &Mnemonic {
        &self.base
    }

    /// The dot-separated modifiers, in order.
    #[must_use]
    pub fn modifiers(&self) -> &[String] {
        &self.modifiers
    }

    /// Returns true if the opcode carries the given modifier.
    #[must_use]
    pub fn has_modifier(&self, modifier: &str) -> bool {
        self.modifiers.iter().any(|m| m == modifier)
    }

    /// The full dotted name, e.g. `IMAD.WIDE.U32`.
    #[must_use]
    pub fn full_name(&self) -> String {
        self.to_string()
    }

    /// Returns true for memory load/store instructions (the instructions the
    /// CuAsmRL action space is restricted to).
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.memory_space().is_some()
    }

    /// Returns true for loads (instructions that read memory into registers
    /// or into shared memory).
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(
            self.base,
            Mnemonic::Ldg
                | Mnemonic::Lds
                | Mnemonic::Ldsm
                | Mnemonic::Ldgsts
                | Mnemonic::Ldl
                | Mnemonic::Ld
                | Mnemonic::Ldc
        )
    }

    /// Returns true for stores.
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(
            self.base,
            Mnemonic::Stg | Mnemonic::Sts | Mnemonic::Stl | Mnemonic::St | Mnemonic::Red
        )
    }

    /// The memory space accessed, if this is a memory instruction.
    #[must_use]
    pub fn memory_space(&self) -> Option<MemorySpace> {
        Some(match self.base {
            Mnemonic::Ldg | Mnemonic::Stg | Mnemonic::Atomg | Mnemonic::Red => MemorySpace::Global,
            Mnemonic::Lds | Mnemonic::Sts | Mnemonic::Ldsm | Mnemonic::Atoms => MemorySpace::Shared,
            Mnemonic::Ldgsts => MemorySpace::GlobalToShared,
            Mnemonic::Ldl | Mnemonic::Stl => MemorySpace::Local,
            Mnemonic::Ldc => MemorySpace::Constant,
            Mnemonic::Ld | Mnemonic::St | Mnemonic::Atom => MemorySpace::Global,
            _ => return None,
        })
    }

    /// Latency class (§2.3.1): fixed for ALU operations, variable for memory
    /// and long-latency units.
    #[must_use]
    pub fn latency_class(&self) -> LatencyClass {
        if self.is_memory() {
            return LatencyClass::Variable;
        }
        match self.base {
            Mnemonic::Mufu | Mnemonic::S2r | Mnemonic::I2f | Mnemonic::F2i | Mnemonic::Shfl => {
                LatencyClass::Variable
            }
            _ => LatencyClass::Fixed,
        }
    }

    /// Returns true for barrier / synchronisation instructions, across which
    /// the CuAsmRL action space never reorders (§3.5).
    #[must_use]
    pub fn is_barrier_or_sync(&self) -> bool {
        matches!(
            self.base,
            Mnemonic::Bar
                | Mnemonic::Depbar
                | Mnemonic::Ldgdepbar
                | Mnemonic::Membar
                | Mnemonic::Errbar
                | Mnemonic::Fence
                | Mnemonic::Bssy
                | Mnemonic::Bsync
                | Mnemonic::Warpsync
                | Mnemonic::Cctl
        )
    }

    /// Returns true for control-flow instructions (basic-block terminators).
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self.base,
            Mnemonic::Bra
                | Mnemonic::Brx
                | Mnemonic::Jmp
                | Mnemonic::Call
                | Mnemonic::Ret
                | Mnemonic::Exit
        )
    }

    /// Returns true if the instruction may not be moved by the scheduler,
    /// nor may other instructions be moved across it.
    #[must_use]
    pub fn is_scheduling_fence(&self) -> bool {
        self.is_barrier_or_sync() || self.is_control_flow()
    }

    /// Returns true for tensor-core matrix-multiply-accumulate instructions.
    #[must_use]
    pub fn is_mma(&self) -> bool {
        matches!(self.base, Mnemonic::Hmma | Mnemonic::Imma)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for m in &self.modifiers {
            write!(f, ".{m}")?;
        }
        Ok(())
    }
}

impl FromStr for Opcode {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let base_text = parts
            .next()
            .ok_or_else(|| SassError::Operand("empty opcode".to_string()))?;
        let base: Mnemonic = base_text.parse()?;
        let modifiers: Vec<String> = parts.map(str::to_string).collect();
        Ok(Opcode { base, modifiers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_opcode_with_modifiers() {
        let op: Opcode = "LDGSTS.E.BYPASS.LTC128B.128".parse().unwrap();
        assert_eq!(*op.base(), Mnemonic::Ldgsts);
        assert_eq!(op.modifiers(), ["E", "BYPASS", "LTC128B", "128"]);
        assert!(op.has_modifier("BYPASS"));
        assert!(!op.has_modifier("WIDE"));
        assert_eq!(op.to_string(), "LDGSTS.E.BYPASS.LTC128B.128");
    }

    #[test]
    fn classification_of_memory_ops() {
        for (text, space) in [
            ("LDG.E", MemorySpace::Global),
            ("STG.E", MemorySpace::Global),
            ("LDS.128", MemorySpace::Shared),
            ("STS", MemorySpace::Shared),
            ("LDGSTS.E.BYPASS", MemorySpace::GlobalToShared),
            ("LDC", MemorySpace::Constant),
            ("LDL", MemorySpace::Local),
        ] {
            let op: Opcode = text.parse().unwrap();
            assert!(op.is_memory(), "{text} should be memory");
            assert_eq!(op.memory_space(), Some(space), "{text}");
            assert_eq!(op.latency_class(), LatencyClass::Variable, "{text}");
        }
    }

    #[test]
    fn classification_of_alu_ops() {
        for text in [
            "IADD3",
            "IMAD.WIDE",
            "MOV",
            "FFMA",
            "HADD2",
            "SEL",
            "LEA",
            "HMMA.16816.F32",
        ] {
            let op: Opcode = text.parse().unwrap();
            assert!(!op.is_memory(), "{text}");
            assert_eq!(op.latency_class(), LatencyClass::Fixed, "{text}");
        }
    }

    #[test]
    fn classification_of_sync_and_control_flow() {
        for text in [
            "BAR.SYNC",
            "DEPBAR.LE",
            "LDGDEPBAR",
            "MEMBAR.GPU",
            "BSSY",
            "BSYNC",
        ] {
            let op: Opcode = text.parse().unwrap();
            assert!(op.is_barrier_or_sync(), "{text}");
            assert!(op.is_scheduling_fence(), "{text}");
        }
        for text in ["BRA", "EXIT", "RET.ABS.NODEC"] {
            let op: Opcode = text.parse().unwrap();
            assert!(op.is_control_flow(), "{text}");
            assert!(op.is_scheduling_fence(), "{text}");
        }
        let imad: Opcode = "IMAD".parse().unwrap();
        assert!(!imad.is_scheduling_fence());
    }

    #[test]
    fn unknown_mnemonics_round_trip() {
        let op: Opcode = "FRobNICATE.X.Y".parse().unwrap();
        assert_eq!(op.to_string(), "FRobNICATE.X.Y");
        assert!(!op.is_memory());
    }

    #[test]
    fn variable_latency_non_memory() {
        for text in ["MUFU.RCP", "S2R", "I2F.F32.S32"] {
            let op: Opcode = text.parse().unwrap();
            assert_eq!(op.latency_class(), LatencyClass::Variable, "{text}");
        }
    }

    #[test]
    fn mma_detection() {
        assert!("HMMA.16816.F32".parse::<Opcode>().unwrap().is_mma());
        assert!(!"FFMA".parse::<Opcode>().unwrap().is_mma());
    }
}
