//! A kernel section: an ordered list of labels and instructions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::{parse_program, Instruction, SassError};

/// One item of a SASS listing: either a label or an instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// A code label such as `.L_x_1:`.
    Label(String),
    /// An instruction.
    Instr(Instruction),
}

/// A basic block: a maximal range of instructions with no label in the
/// middle and no scheduling fence (branch, barrier, synchronisation) other
/// than possibly the final instruction.
///
/// CuAsmRL only reorders instructions *within* a basic block (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Index (into [`Program::instructions`]) of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
}

impl BasicBlock {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns true if the block contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns true if the given instruction index lies in this block.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        index >= self.start && index < self.end
    }
}

/// A parsed kernel section.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    items: Vec<Item>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Program { items: Vec::new() }
    }

    /// Creates a program from a list of items.
    #[must_use]
    pub fn from_items(items: Vec<Item>) -> Self {
        Program { items }
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.items.push(Item::Instr(instruction));
    }

    /// Appends a label.
    pub fn push_label(&mut self, name: impl Into<String>) {
        self.items.push(Item::Label(name.into()));
    }

    /// The raw items (labels and instructions) in listing order.
    #[must_use]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the instructions in listing order, skipping labels.
    pub fn instructions(&self) -> impl Iterator<Item = &Instruction> {
        self.items.iter().filter_map(|item| match item {
            Item::Instr(i) => Some(i),
            Item::Label(_) => None,
        })
    }

    /// Number of instructions (labels excluded).
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.instructions().count()
    }

    /// Returns the instruction with the given instruction index (labels are
    /// not counted), or `None` if out of range.
    #[must_use]
    pub fn instruction(&self, index: usize) -> Option<&Instruction> {
        self.instructions().nth(index)
    }

    /// Mutable access to the instruction with the given instruction index.
    pub fn instruction_mut(&mut self, index: usize) -> Option<&mut Instruction> {
        self.items
            .iter_mut()
            .filter_map(|item| match item {
                Item::Instr(i) => Some(i),
                Item::Label(_) => None,
            })
            .nth(index)
    }

    /// Swaps the instructions at instruction indices `a` and `b`.
    ///
    /// Labels keep their positions in the item list; only the instructions
    /// move. This is the primitive mutation applied by the assembly game.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn swap_instructions(&mut self, a: usize, b: usize) -> Result<(), SassError> {
        let item_indices: Vec<usize> = self
            .items
            .iter()
            .enumerate()
            .filter_map(|(idx, item)| match item {
                Item::Instr(_) => Some(idx),
                Item::Label(_) => None,
            })
            .collect();
        let ia = *item_indices
            .get(a)
            .ok_or_else(|| SassError::Encoding(format!("instruction index {a} out of range")))?;
        let ib = *item_indices
            .get(b)
            .ok_or_else(|| SassError::Encoding(format!("instruction index {b} out of range")))?;
        self.items.swap(ia, ib);
        Ok(())
    }

    /// Basic blocks of the program, as ranges of instruction indices.
    ///
    /// A block ends at a label, after a control-flow instruction, or after a
    /// barrier/synchronisation instruction (the fences across which CuAsmRL
    /// never moves instructions).
    #[must_use]
    pub fn basic_blocks(&self) -> Vec<BasicBlock> {
        let mut blocks = Vec::new();
        let mut start = 0usize;
        let mut index = 0usize;
        for item in &self.items {
            match item {
                Item::Label(_) => {
                    if index > start {
                        blocks.push(BasicBlock { start, end: index });
                    }
                    start = index;
                }
                Item::Instr(inst) => {
                    index += 1;
                    if inst.opcode().is_scheduling_fence() {
                        blocks.push(BasicBlock { start, end: index });
                        start = index;
                    }
                }
            }
        }
        if index > start {
            blocks.push(BasicBlock { start, end: index });
        }
        blocks
    }

    /// The basic block containing the given instruction index, if any.
    #[must_use]
    pub fn block_of(&self, index: usize) -> Option<BasicBlock> {
        self.basic_blocks().into_iter().find(|b| b.contains(index))
    }

    /// Indices of all memory load/store instructions (the CuAsmRL action
    /// space is restricted to these).
    #[must_use]
    pub fn memory_instruction_indices(&self) -> Vec<usize> {
        self.instructions()
            .enumerate()
            .filter_map(|(i, inst)| inst.opcode().is_memory().then_some(i))
            .collect()
    }

    /// The largest operand count over all instructions; operand embeddings
    /// are padded to this width (§3.4).
    #[must_use]
    pub fn max_operand_count(&self) -> usize {
        self.instructions()
            .map(|i| i.operands().len())
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            match item {
                Item::Label(name) => writeln!(f, "{name}:")?,
                Item::Instr(inst) => writeln!(f, "{inst}")?,
            }
        }
        Ok(())
    }
}

impl FromStr for Program {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_program(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
[B------:R-:W0:-:S02] LDG.E R2, [R10.64] ;
[B------:R-:W-:-:S04] IADD3 R4, R6, 0x1, RZ ;
.L_x_1:
[B0-----:R-:W-:-:S04] IMAD R8, R4, R2, RZ ;
[B------:R-:W-:-:S02] STG.E [R12.64], R8 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn sample() -> Program {
        SAMPLE.parse().unwrap()
    }

    #[test]
    fn instruction_iteration_skips_labels() {
        let p = sample();
        assert_eq!(p.instruction_count(), 5);
        assert_eq!(p.items().len(), 6);
    }

    #[test]
    fn basic_blocks_split_on_labels_and_fences() {
        let p = sample();
        let blocks = p.basic_blocks();
        assert_eq!(
            blocks,
            vec![
                BasicBlock { start: 0, end: 2 },
                BasicBlock { start: 2, end: 5 },
            ]
        );
        assert_eq!(p.block_of(1), Some(BasicBlock { start: 0, end: 2 }));
        assert_eq!(p.block_of(3), Some(BasicBlock { start: 2, end: 5 }));
        assert_eq!(p.block_of(10), None);
    }

    #[test]
    fn memory_instruction_indices() {
        let p = sample();
        assert_eq!(p.memory_instruction_indices(), vec![0, 3]);
    }

    #[test]
    fn swap_moves_instructions_but_not_labels() {
        let mut p = sample();
        p.swap_instructions(2, 3).unwrap();
        // The label stays at the same item position.
        assert!(matches!(p.items()[2], Item::Label(_)));
        assert!(p.instruction(2).unwrap().opcode().is_memory());
        assert!(!p.instruction(3).unwrap().opcode().is_memory());
    }

    #[test]
    fn swap_out_of_range_is_an_error() {
        let mut p = sample();
        assert!(p.swap_instructions(0, 99).is_err());
    }

    #[test]
    fn display_round_trip() {
        let p = sample();
        let printed = p.to_string();
        let reparsed: Program = printed.parse().unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn max_operand_count() {
        let p = sample();
        assert_eq!(p.max_operand_count(), 4);
        assert_eq!(Program::new().max_operand_count(), 0);
    }

    #[test]
    fn push_and_block_of_empty() {
        let mut p = Program::new();
        assert!(p.basic_blocks().is_empty());
        p.push_label(".L_start");
        p.push("MOV R0, 0x1 ;".parse().unwrap());
        assert_eq!(p.instruction_count(), 1);
        assert_eq!(p.basic_blocks().len(), 1);
    }
}
