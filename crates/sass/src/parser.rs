//! Listing-level parser: turns a textual SASS dump into a [`Program`].

use crate::{Instruction, Item, Program, SassError};

/// Parses a complete SASS listing.
///
/// The accepted format mirrors CuAssembler/`nvdisasm` dumps:
///
/// * blank lines and `//` comment lines are skipped,
/// * a line ending in `:` (and not containing an instruction) is a label,
/// * any other line is an instruction, optionally prefixed by its control
///   code and guard predicate and optionally followed by a `//` comment.
///
/// # Errors
///
/// Returns a [`SassError::Parse`] identifying the offending line when any
/// instruction fails to parse.
pub fn parse_program(text: &str) -> Result<Program, SassError> {
    let mut items = Vec::new();
    for (line_no, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        // Header lines emitted by disassemblers (e.g. `.headerflags`,
        // `.section`) are ignored: they are metadata, not instructions.
        if line.starts_with('.') && !line.starts_with(".L") {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            if !label.contains(' ') && !label.contains('[') {
                items.push(Item::Label(label.to_string()));
                continue;
            }
        }
        let instruction: Instruction = line.parse().map_err(|e: SassError| match e {
            SassError::Parse { message, .. } => SassError::parse(line_no + 1, message),
            other => SassError::parse(line_no + 1, other.to_string()),
        })?;
        items.push(Item::Instr(instruction));
    }
    Ok(Program::from_items(items))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing_with_comments_and_directives() {
        let text = "\
// disassembled kernel
.headerflags @\"EF_CUDA_SM80\"
.L_x_0:
[B------:R-:W0:-:S02] LDG.E R2, [R4.64] ; // load tile
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;

[B------:R-:W-:-:S05] EXIT ;
";
        let program = parse_program(text).unwrap();
        assert_eq!(program.instruction_count(), 3);
        assert_eq!(program.items().len(), 4);
    }

    #[test]
    fn reports_line_number_on_error() {
        let text = "MOV R0, 0x1 ;\nNOT_AN INSTRUCTION @@ ;\n";
        let err = parse_program(text).unwrap_err();
        match err {
            SassError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_listing_is_an_empty_program() {
        let program = parse_program("\n\n// nothing\n").unwrap();
        assert_eq!(program.instruction_count(), 0);
    }

    #[test]
    fn labels_with_spaces_are_not_labels() {
        // A line such as `BAR.SYNC 0x0 ;` must not be mistaken for a label
        // even if a malformed variant ends with a colon.
        let text = ".L_loop:\nBAR.SYNC 0x0 ;\n";
        let program = parse_program(text).unwrap();
        assert_eq!(program.instruction_count(), 1);
    }
}
