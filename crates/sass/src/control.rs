//! The per-instruction scheduling control code.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::SassError;

/// Number of scoreboard wait barriers available per warp on Ampere.
pub const NUM_BARRIERS: u8 = 6;

/// The GPU architecture generation a SASS listing targets.
///
/// The textual control-code format (`[B------:R-:W-:-:Sxx]`) is shared by
/// every generation this crate models, but its *interpretation* is
/// architecture-specific: how many scoreboard barriers a warp owns, how wide
/// the stall field is, and whether asynchronous `LDGSTS` copies exist at
/// all. [`crate::ControlCode`] stores the syntactic fields; this enum
/// answers the semantic questions, and `gpusim::ArchSpec` builds its
/// simulation parameters on top of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchClass {
    /// Turing (sm_75): 6 scoreboard barriers, no `LDGSTS` asynchronous
    /// copies (they are accepted but behave like fused `LDG`+`STS`).
    Turing,
    /// Ampere (sm_80/sm_86): the generation the paper evaluates.
    Ampere,
    /// Hopper (sm_90): Ampere semantics plus the TMA-era extensions (still
    /// expressed through `LDGSTS` in this model).
    Hopper,
}

impl ArchClass {
    /// The `sm_XX` compute-capability number of this generation.
    #[must_use]
    pub fn sm_version(&self) -> u32 {
        match self {
            ArchClass::Turing => 75,
            ArchClass::Ampere => 80,
            ArchClass::Hopper => 90,
        }
    }

    /// Number of scoreboard wait barriers one warp owns. Every generation
    /// this crate models exposes the six `B0..B5` slots of the textual
    /// control-code format.
    #[must_use]
    pub fn scoreboard_barriers(&self) -> u8 {
        NUM_BARRIERS
    }

    /// Maximum encodable stall count (the `S` field is 4 bits on every
    /// generation).
    #[must_use]
    pub fn max_stall(&self) -> u8 {
        15
    }

    /// True when the generation has a hardware asynchronous-copy path
    /// (`LDGSTS` / `cp.async`), introduced with Ampere.
    #[must_use]
    pub fn has_async_copy(&self) -> bool {
        !matches!(self, ArchClass::Turing)
    }

    /// Lower-case generation name (`"turing"`, `"ampere"`, `"hopper"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ArchClass::Turing => "turing",
            ArchClass::Ampere => "ampere",
            ArchClass::Hopper => "hopper",
        }
    }
}

/// The scheduling control word attached to every Ampere SASS instruction.
///
/// In CuAssembler-style listings it is rendered as
/// `[B------:R-:W2:Y:S02]`:
///
/// * the **wait barrier mask** (`B` field): a bitmask over the six scoreboard
///   barriers; the instruction stalls at issue until every barrier in the
///   mask has been cleared,
/// * the **read barrier** (`R` field): the barrier this instruction sets and
///   clears once its source operands have been read (used by
///   variable-latency instructions that read registers late),
/// * the **write barrier** (`W` field): the barrier this instruction sets and
///   clears once its destination register is ready,
/// * the **yield flag** (`Y`): a hint to the warp scheduler that it may
///   switch to another warp after issuing this instruction,
/// * the **stall count** (`S` field): the number of cycles to stall before
///   issuing the next instruction from the same warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ControlCode {
    wait_mask: u8,
    read_barrier: Option<u8>,
    write_barrier: Option<u8>,
    yield_flag: bool,
    stall: u8,
}

impl ControlCode {
    /// Creates a control code with no barriers, no yield, and the given stall
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `stall > 15`: the stall field is 4 bits wide.
    #[must_use]
    pub fn with_stall(stall: u8) -> Self {
        assert!(stall <= 15, "stall count must fit in 4 bits, got {stall}");
        ControlCode {
            wait_mask: 0,
            read_barrier: None,
            write_barrier: None,
            yield_flag: false,
            stall,
        }
    }

    /// Builder-style setter for the wait barrier mask (bits 0..=5).
    #[must_use]
    pub fn wait_on(mut self, barrier: u8) -> Self {
        assert!(barrier < NUM_BARRIERS, "barrier index out of range");
        self.wait_mask |= 1 << barrier;
        self
    }

    /// Builder-style setter for the read barrier index.
    #[must_use]
    pub fn set_read_barrier(mut self, barrier: u8) -> Self {
        assert!(barrier < NUM_BARRIERS, "barrier index out of range");
        self.read_barrier = Some(barrier);
        self
    }

    /// Builder-style setter for the write barrier index.
    #[must_use]
    pub fn set_write_barrier(mut self, barrier: u8) -> Self {
        assert!(barrier < NUM_BARRIERS, "barrier index out of range");
        self.write_barrier = Some(barrier);
        self
    }

    /// Builder-style setter for the yield flag.
    #[must_use]
    pub fn set_yield(mut self, yield_flag: bool) -> Self {
        self.yield_flag = yield_flag;
        self
    }

    /// The wait barrier bitmask (bit `i` set means "wait for barrier `i`").
    #[must_use]
    pub fn wait_mask(&self) -> u8 {
        self.wait_mask
    }

    /// Returns true if this instruction waits on the given barrier index.
    #[must_use]
    pub fn waits_on(&self, barrier: u8) -> bool {
        barrier < NUM_BARRIERS && self.wait_mask & (1 << barrier) != 0
    }

    /// The read barrier set by this instruction, if any.
    #[must_use]
    pub fn read_barrier(&self) -> Option<u8> {
        self.read_barrier
    }

    /// The write barrier set by this instruction, if any.
    #[must_use]
    pub fn write_barrier(&self) -> Option<u8> {
        self.write_barrier
    }

    /// The yield flag.
    #[must_use]
    pub fn yield_flag(&self) -> bool {
        self.yield_flag
    }

    /// The stall count in cycles.
    #[must_use]
    pub fn stall(&self) -> u8 {
        self.stall
    }

    /// Replaces the stall count.
    ///
    /// # Panics
    ///
    /// Panics if `stall > 15`.
    pub fn set_stall(&mut self, stall: u8) {
        assert!(stall <= 15, "stall count must fit in 4 bits, got {stall}");
        self.stall = stall;
    }

    /// Adds (`wait = true`) or removes (`wait = false`) one barrier from the
    /// wait mask.
    ///
    /// # Panics
    ///
    /// Panics if `barrier >= NUM_BARRIERS`.
    pub fn set_wait(&mut self, barrier: u8, wait: bool) {
        assert!(barrier < NUM_BARRIERS, "barrier index out of range");
        if wait {
            self.wait_mask |= 1 << barrier;
        } else {
            self.wait_mask &= !(1 << barrier);
        }
    }

    /// Returns true if the instruction neither waits on nor sets any barrier.
    #[must_use]
    pub fn is_barrier_free(&self) -> bool {
        self.wait_mask == 0 && self.read_barrier.is_none() && self.write_barrier.is_none()
    }

    /// Packs the control code into the 21-bit layout used by the binary
    /// encoder: `[stall:4][yield:1][write:3][read:3][wait:6]` (from LSB).
    #[must_use]
    pub fn to_bits(&self) -> u32 {
        let read = self.read_barrier.map_or(7u32, u32::from);
        let write = self.write_barrier.map_or(7u32, u32::from);
        u32::from(self.wait_mask)
            | (read << 6)
            | (write << 9)
            | (u32::from(self.yield_flag) << 12)
            | (u32::from(self.stall) << 13)
    }

    /// Inverse of [`ControlCode::to_bits`].
    ///
    /// # Errors
    ///
    /// Returns an error if any field is out of range.
    pub fn from_bits(bits: u32) -> Result<Self, SassError> {
        let wait_mask = (bits & 0x3f) as u8;
        let read = ((bits >> 6) & 0x7) as u8;
        let write = ((bits >> 9) & 0x7) as u8;
        let yield_flag = (bits >> 12) & 1 == 1;
        let stall = ((bits >> 13) & 0xf) as u8;
        let decode_barrier = |value: u8| -> Result<Option<u8>, SassError> {
            match value {
                7 => Ok(None),
                v if v < NUM_BARRIERS => Ok(Some(v)),
                v => Err(SassError::ControlCode(format!(
                    "barrier index {v} out of range"
                ))),
            }
        };
        Ok(ControlCode {
            wait_mask,
            read_barrier: decode_barrier(read)?,
            write_barrier: decode_barrier(write)?,
            yield_flag,
            stall,
        })
    }
}

impl Default for ControlCode {
    fn default() -> Self {
        ControlCode::with_stall(1)
    }
}

impl fmt::Display for ControlCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[B")?;
        for i in 0..NUM_BARRIERS {
            if self.waits_on(i) {
                write!(f, "{i}")?;
            } else {
                write!(f, "-")?;
            }
        }
        write!(f, ":R")?;
        match self.read_barrier {
            Some(b) => write!(f, "{b}")?,
            None => write!(f, "-")?,
        }
        write!(f, ":W")?;
        match self.write_barrier {
            Some(b) => write!(f, "{b}")?,
            None => write!(f, "-")?,
        }
        write!(f, ":{}", if self.yield_flag { "Y" } else { "-" })?;
        write!(f, ":S{:02}]", self.stall)
    }
}

impl FromStr for ControlCode {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| SassError::ControlCode(format!("missing brackets in `{s}`")))?;
        let fields: Vec<&str> = body.split(':').collect();
        if fields.len() != 5 {
            return Err(SassError::ControlCode(format!(
                "expected 5 colon-separated fields, got {} in `{s}`",
                fields.len()
            )));
        }
        // Wait mask: `B` followed by six characters, each either `-` or the
        // barrier digit.
        let wait = fields[0].strip_prefix('B').ok_or_else(|| {
            SassError::ControlCode(format!("wait field must start with B: `{s}`"))
        })?;
        if wait.len() != NUM_BARRIERS as usize {
            return Err(SassError::ControlCode(format!(
                "wait field must have {NUM_BARRIERS} slots: `{s}`"
            )));
        }
        let mut wait_mask = 0u8;
        for (i, ch) in wait.chars().enumerate() {
            match ch {
                '-' => {}
                c if c.is_ascii_digit() => {
                    let idx = c as u8 - b'0';
                    if idx as usize != i || idx >= NUM_BARRIERS {
                        return Err(SassError::ControlCode(format!(
                            "wait slot {i} holds barrier digit {c} in `{s}`"
                        )));
                    }
                    wait_mask |= 1 << idx;
                }
                c => {
                    return Err(SassError::ControlCode(format!(
                        "unexpected character `{c}` in wait field of `{s}`"
                    )))
                }
            }
        }
        let parse_barrier = |field: &str, prefix: char| -> Result<Option<u8>, SassError> {
            let rest = field.strip_prefix(prefix).ok_or_else(|| {
                SassError::ControlCode(format!("field `{field}` must start with {prefix}"))
            })?;
            match rest {
                "-" => Ok(None),
                digit => {
                    let idx: u8 = digit.parse().map_err(|_| {
                        SassError::ControlCode(format!("invalid barrier index `{digit}`"))
                    })?;
                    if idx >= NUM_BARRIERS {
                        return Err(SassError::ControlCode(format!(
                            "barrier index {idx} out of range"
                        )));
                    }
                    Ok(Some(idx))
                }
            }
        };
        let read_barrier = parse_barrier(fields[1], 'R')?;
        let write_barrier = parse_barrier(fields[2], 'W')?;
        let yield_flag = match fields[3] {
            "Y" => true,
            "-" => false,
            other => {
                return Err(SassError::ControlCode(format!(
                    "yield field must be Y or -, got `{other}`"
                )))
            }
        };
        let stall_text = fields[4].strip_prefix('S').ok_or_else(|| {
            SassError::ControlCode(format!("stall field must start with S: `{s}`"))
        })?;
        let stall: u8 = stall_text
            .parse()
            .map_err(|_| SassError::ControlCode(format!("invalid stall count `{stall_text}`")))?;
        if stall > 15 {
            return Err(SassError::ControlCode(format!(
                "stall count {stall} exceeds 15"
            )));
        }
        Ok(ControlCode {
            wait_mask,
            read_barrier,
            write_barrier,
            yield_flag,
            stall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_example() {
        // The example given in §2.3 of the paper.
        let cc: ControlCode = "[B------:R-:W2:Y:S02]".parse().unwrap();
        assert_eq!(cc.wait_mask(), 0);
        assert_eq!(cc.read_barrier(), None);
        assert_eq!(cc.write_barrier(), Some(2));
        assert!(cc.yield_flag());
        assert_eq!(cc.stall(), 2);
    }

    #[test]
    fn parse_wait_mask() {
        let cc: ControlCode = "[B0-2--5:R1:W-:-:S04]".parse().unwrap();
        assert!(cc.waits_on(0));
        assert!(!cc.waits_on(1));
        assert!(cc.waits_on(2));
        assert!(cc.waits_on(5));
        assert_eq!(cc.read_barrier(), Some(1));
    }

    #[test]
    fn display_round_trips() {
        let cases = [
            "[B------:R-:W2:Y:S02]",
            "[B0-2--5:R1:W-:-:S04]",
            "[B------:R-:W-:-:S15]",
            "[B012345:R0:W5:Y:S00]",
        ];
        for text in cases {
            let cc: ControlCode = text.parse().unwrap();
            assert_eq!(cc.to_string(), text);
        }
    }

    #[test]
    fn bits_round_trip() {
        let cases = [
            ControlCode::with_stall(4),
            ControlCode::with_stall(2)
                .set_write_barrier(2)
                .set_yield(true),
            ControlCode::with_stall(0)
                .wait_on(0)
                .wait_on(5)
                .set_read_barrier(1)
                .set_write_barrier(3),
        ];
        for cc in cases {
            assert_eq!(ControlCode::from_bits(cc.to_bits()).unwrap(), cc);
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        for text in [
            "B------:R-:W2:Y:S02",   // missing brackets
            "[B-----:R-:W2:Y:S02]",  // wait too short
            "[B------:R-:W2:Y]",     // missing stall
            "[B------:R-:W9:Y:S02]", // barrier out of range
            "[B------:R-:W2:Y:S99]", // stall out of range
            "[B------:X-:W2:Y:S02]", // wrong prefix
            "[B--1---:R-:W-:-:S01]", // digit in wrong slot
        ] {
            assert!(
                text.parse::<ControlCode>().is_err(),
                "should reject `{text}`"
            );
        }
    }

    #[test]
    fn with_stall_panics_above_15() {
        let result = std::panic::catch_unwind(|| ControlCode::with_stall(16));
        assert!(result.is_err());
    }

    #[test]
    fn barrier_free_detection() {
        assert!(ControlCode::with_stall(4).is_barrier_free());
        assert!(!ControlCode::with_stall(4)
            .set_write_barrier(0)
            .is_barrier_free());
        assert!(!ControlCode::with_stall(4).wait_on(3).is_barrier_free());
    }
}
