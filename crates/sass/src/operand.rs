//! Instruction operands: registers, immediates, constant banks and memory
//! references.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::{Register, SassError};

/// A register operand together with its per-use flags.
///
/// SASS register operands carry flags that affect scheduling: the `.64`
/// suffix pairs the register with its adjacent register (equation 2 of the
/// paper), and the `.reuse` suffix asks the issue stage to keep the operand
/// in the operand-reuse cache to avoid a register-bank conflict (§5.7.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegOperand {
    /// The register itself.
    pub reg: Register,
    /// `.64` suffix: the adjacent register also participates.
    pub wide: bool,
    /// `.reuse` suffix: operand-reuse-cache hint.
    pub reuse: bool,
    /// Arithmetic negation prefix (`-R4`).
    pub negated: bool,
    /// Absolute-value modifier (`|R4|`).
    pub absolute: bool,
    /// Logical not prefix on a predicate (`!P0`).
    pub not: bool,
}

impl RegOperand {
    /// A plain register operand with no flags.
    #[must_use]
    pub fn new(reg: Register) -> Self {
        RegOperand {
            reg,
            wide: false,
            reuse: false,
            negated: false,
            absolute: false,
            not: false,
        }
    }

    /// Builder-style setter for the `.64` flag.
    #[must_use]
    pub fn wide(mut self) -> Self {
        self.wide = true;
        self
    }

    /// Builder-style setter for the `.reuse` flag.
    #[must_use]
    pub fn reuse(mut self) -> Self {
        self.reuse = true;
        self
    }

    /// Builder-style setter for the negation prefix.
    #[must_use]
    pub fn negated(mut self) -> Self {
        self.negated = true;
        self
    }

    /// Builder-style setter for the logical-not prefix.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // builder setter, not `std::ops::Not`
    pub fn not(mut self) -> Self {
        self.not = true;
        self
    }

    /// Every register touched by this operand, expanding the `.64` pair.
    #[must_use]
    pub fn registers(&self) -> Vec<Register> {
        let mut regs = vec![self.reg];
        if self.wide {
            if let Some(adj) = self.reg.adjacent() {
                regs.push(adj);
            }
        }
        regs
    }
}

impl fmt::Display for RegOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.not {
            write!(f, "!")?;
        }
        if self.negated {
            write!(f, "-")?;
        }
        if self.absolute {
            write!(f, "|")?;
        }
        write!(f, "{}", self.reg)?;
        if self.absolute {
            write!(f, "|")?;
        }
        if self.wide {
            write!(f, ".64")?;
        }
        if self.reuse {
            write!(f, ".reuse")?;
        }
        Ok(())
    }
}

impl FromStr for RegOperand {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut text = s.trim();
        let mut op = RegOperand {
            reg: Register::Rz,
            wide: false,
            reuse: false,
            negated: false,
            absolute: false,
            not: false,
        };
        if let Some(rest) = text.strip_prefix('!') {
            op.not = true;
            text = rest;
        }
        if let Some(rest) = text.strip_prefix('-') {
            op.negated = true;
            text = rest;
        }
        if text.starts_with('|') && text.ends_with('|') && text.len() >= 2 {
            op.absolute = true;
            text = &text[1..text.len() - 1];
        }
        let mut core = text;
        loop {
            if let Some(rest) = core.strip_suffix(".reuse") {
                op.reuse = true;
                core = rest;
            } else if let Some(rest) = core.strip_suffix(".64") {
                op.wide = true;
                core = rest;
            } else {
                break;
            }
        }
        op.reg = core.parse()?;
        Ok(op)
    }
}

/// A memory reference such as `[R74]`, `[R219+0x4000]` or
/// `desc[UR16][R10.64]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemRef {
    /// Descriptor (uniform) register for descriptor-based addressing.
    pub descriptor: Option<Register>,
    /// Base address register, if any.
    pub base: Option<RegOperand>,
    /// Immediate byte offset added to the base.
    pub offset: i64,
}

impl MemRef {
    /// A memory reference through a plain base register.
    #[must_use]
    pub fn with_base(base: RegOperand) -> Self {
        MemRef {
            descriptor: None,
            base: Some(base),
            offset: 0,
        }
    }

    /// Builder-style setter for the immediate offset.
    #[must_use]
    pub fn offset(mut self, offset: i64) -> Self {
        self.offset = offset;
        self
    }

    /// Builder-style setter for the descriptor register.
    #[must_use]
    pub fn descriptor(mut self, descriptor: Register) -> Self {
        self.descriptor = Some(descriptor);
        self
    }

    /// Every register read to form this address.
    #[must_use]
    pub fn registers(&self) -> Vec<Register> {
        let mut regs = Vec::new();
        if let Some(d) = self.descriptor {
            regs.push(d);
        }
        if let Some(base) = &self.base {
            regs.extend(base.registers());
        }
        regs
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = self.descriptor {
            write!(f, "desc[{d}]")?;
        }
        write!(f, "[")?;
        let mut wrote_base = false;
        if let Some(base) = &self.base {
            write!(f, "{base}")?;
            wrote_base = true;
        }
        if self.offset != 0 || !wrote_base {
            if wrote_base {
                if self.offset >= 0 {
                    write!(f, "+{:#x}", self.offset)?;
                } else {
                    write!(f, "-{:#x}", -self.offset)?;
                }
            } else {
                write!(f, "{:#x}", self.offset)?;
            }
        }
        write!(f, "]")
    }
}

/// A single operand of a SASS instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand (general purpose, uniform or predicate).
    Reg(RegOperand),
    /// An integer immediate (`0x160`, `18432`, `-4`).
    Imm(i64),
    /// A floating-point immediate.
    FImm(f64),
    /// A constant bank reference `c[bank][offset]`.
    Const {
        /// Constant bank index.
        bank: u32,
        /// Byte offset within the bank.
        offset: u32,
    },
    /// A memory reference (`[R2.64]`, `desc[UR18][R18.64]`, `[R219+0x4000]`).
    Mem(MemRef),
    /// A special register such as `SR_CLOCKLO` or `SR_TID.X`.
    Special(String),
    /// A code label, used by branches.
    Label(String),
}

impl Operand {
    /// Convenience constructor: a plain register operand.
    #[must_use]
    pub fn reg(reg: Register) -> Self {
        Operand::Reg(RegOperand::new(reg))
    }

    /// Every register referenced by this operand (expanding `.64` pairs and
    /// descriptor registers).
    #[must_use]
    pub fn registers(&self) -> Vec<Register> {
        match self {
            Operand::Reg(r) => r.registers(),
            Operand::Mem(m) => m.registers(),
            _ => Vec::new(),
        }
    }

    /// Returns the register operand if this is one.
    #[must_use]
    pub fn as_reg(&self) -> Option<&RegOperand> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the memory reference if this is one.
    #[must_use]
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Returns true if any register in this operand carries the `.reuse` flag.
    #[must_use]
    pub fn has_reuse(&self) -> bool {
        match self {
            Operand::Reg(r) => r.reuse,
            Operand::Mem(m) => m.base.is_some_and(|b| b.reuse),
            _ => false,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                if *v < 0 {
                    write!(f, "-{:#x}", -v)
                } else {
                    write!(f, "{v:#x}")
                }
            }
            Operand::FImm(v) => write!(f, "{v}"),
            Operand::Const { bank, offset } => write!(f, "c[{bank:#x}][{offset:#x}]"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Special(name) => write!(f, "{name}"),
            Operand::Label(name) => write!(f, "`({name})"),
        }
    }
}

impl FromStr for Operand {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let text = s.trim();
        if text.is_empty() {
            return Err(SassError::Operand("empty operand".to_string()));
        }
        // Label reference: `(.L_x_1) or a bare label starting with a dot.
        if let Some(rest) = text.strip_prefix("`(") {
            let name = rest
                .strip_suffix(')')
                .ok_or_else(|| SassError::Operand(format!("unterminated label `{text}`")))?;
            return Ok(Operand::Label(name.to_string()));
        }
        if text.starts_with(".L") {
            return Ok(Operand::Label(text.to_string()));
        }
        // Special registers.
        if text.starts_with("SR_") {
            return Ok(Operand::Special(text.to_string()));
        }
        // Constant bank: c[0x0][0x160]
        if let Some(rest) = text.strip_prefix("c[") {
            let (bank_text, rest) = rest
                .split_once("][")
                .ok_or_else(|| SassError::Operand(format!("malformed constant `{text}`")))?;
            let offset_text = rest
                .strip_suffix(']')
                .ok_or_else(|| SassError::Operand(format!("malformed constant `{text}`")))?;
            let bank = parse_uint(bank_text)
                .ok_or_else(|| SassError::Operand(format!("bad constant bank `{bank_text}`")))?;
            let offset = parse_uint(offset_text).ok_or_else(|| {
                SassError::Operand(format!("bad constant offset `{offset_text}`"))
            })?;
            return Ok(Operand::Const {
                bank: bank as u32,
                offset: offset as u32,
            });
        }
        // Memory reference, optionally with a descriptor: desc[UR16][R10.64]
        if text.starts_with("desc[") || text.starts_with('[') {
            return parse_memref(text).map(Operand::Mem);
        }
        // Immediates.
        if let Some(v) = parse_int(text) {
            return Ok(Operand::Imm(v));
        }
        if text.contains('.') && !text.starts_with('R') && !text.starts_with('U') {
            if let Ok(v) = text.parse::<f64>() {
                return Ok(Operand::FImm(v));
            }
        }
        // Fall back to a register operand.
        text.parse::<RegOperand>().map(Operand::Reg)
    }
}

fn parse_memref(text: &str) -> Result<MemRef, SassError> {
    let err = || SassError::Operand(format!("malformed memory reference `{text}`"));
    let mut descriptor = None;
    let mut rest = text;
    if let Some(after) = rest.strip_prefix("desc[") {
        let (desc_text, after_desc) = after.split_once(']').ok_or_else(err)?;
        descriptor = Some(desc_text.parse::<Register>()?);
        rest = after_desc;
    }
    let inner = rest
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(err)?;
    // The inner text is either `base`, `base+off`, `base-off` or a bare offset.
    let (base_text, offset) = split_base_offset(inner);
    let base = if base_text.is_empty() {
        None
    } else {
        Some(base_text.parse::<RegOperand>()?)
    };
    Ok(MemRef {
        descriptor,
        base,
        offset,
    })
}

/// Splits `R219+0x4000` into a base register text and an offset. A leading
/// bare number (no register) yields an empty base.
fn split_base_offset(inner: &str) -> (&str, i64) {
    if let Some(idx) = inner.rfind('+') {
        if idx > 0 {
            if let Some(off) = parse_int(&inner[idx + 1..]) {
                return (&inner[..idx], off);
            }
        }
    }
    if let Some(idx) = inner.rfind('-') {
        if idx > 0 {
            if let Some(off) = parse_int(&inner[idx + 1..]) {
                return (&inner[..idx], -off);
            }
        }
    }
    if let Some(v) = parse_int(inner) {
        return ("", v);
    }
    (inner, 0)
}

fn parse_uint(text: &str) -> Option<u64> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse::<u64>().ok()
    }
}

fn parse_int(text: &str) -> Option<i64> {
    let t = text.trim();
    if let Some(neg) = t.strip_prefix('-') {
        return parse_uint(neg).map(|v| -(v as i64));
    }
    parse_uint(t).map(|v| v as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_register() {
        let op: Operand = "R84".parse().unwrap();
        assert_eq!(op.registers(), vec![Register::Gpr(84)]);
    }

    #[test]
    fn parse_wide_register_expands_adjacent() {
        let op: Operand = "R18.64".parse().unwrap();
        assert_eq!(op.registers(), vec![Register::Gpr(18), Register::Gpr(19)]);
        let op: Operand = "R5.64".parse().unwrap();
        assert_eq!(op.registers(), vec![Register::Gpr(5), Register::Gpr(4)]);
    }

    #[test]
    fn parse_reuse_flag() {
        let op: Operand = "R84.reuse".parse().unwrap();
        assert!(op.has_reuse());
        assert_eq!(op.to_string(), "R84.reuse");
    }

    #[test]
    fn parse_constant_bank() {
        let op: Operand = "c[0x0][0x160]".parse().unwrap();
        assert_eq!(
            op,
            Operand::Const {
                bank: 0,
                offset: 0x160
            }
        );
        assert_eq!(op.to_string(), "c[0x0][0x160]");
    }

    #[test]
    fn parse_descriptor_memref() {
        let op: Operand = "desc[UR18][R18.64]".parse().unwrap();
        let mem = op.as_mem().unwrap();
        assert_eq!(mem.descriptor, Some(Register::Ur(18)));
        assert_eq!(
            op.registers(),
            vec![Register::Ur(18), Register::Gpr(18), Register::Gpr(19)]
        );
        assert_eq!(op.to_string(), "desc[UR18][R18.64]");
    }

    #[test]
    fn parse_memref_with_offset() {
        let op: Operand = "[R219+0x4000]".parse().unwrap();
        let mem = op.as_mem().unwrap();
        assert_eq!(mem.offset, 0x4000);
        assert_eq!(mem.base.unwrap().reg, Register::Gpr(219));
        assert_eq!(op.to_string(), "[R219+0x4000]");
    }

    #[test]
    fn parse_bare_offset_memref() {
        let op: Operand = "[0x20]".parse().unwrap();
        let mem = op.as_mem().unwrap();
        assert!(mem.base.is_none());
        assert_eq!(mem.offset, 0x20);
    }

    #[test]
    fn parse_immediates() {
        assert_eq!("0x1".parse::<Operand>().unwrap(), Operand::Imm(1));
        assert_eq!("18432".parse::<Operand>().unwrap(), Operand::Imm(18432));
        assert_eq!("-4".parse::<Operand>().unwrap(), Operand::Imm(-4));
    }

    #[test]
    fn parse_predicates_and_negation() {
        let op: Operand = "!P4".parse().unwrap();
        let reg = op.as_reg().unwrap();
        assert!(reg.not);
        assert_eq!(reg.reg, Register::Pred(4));
        let op: Operand = "-R2".parse().unwrap();
        assert!(op.as_reg().unwrap().negated);
    }

    #[test]
    fn parse_special_and_label() {
        assert_eq!(
            "SR_CLOCKLO".parse::<Operand>().unwrap(),
            Operand::Special("SR_CLOCKLO".to_string())
        );
        assert_eq!(
            "`(.L_x_3)".parse::<Operand>().unwrap(),
            Operand::Label(".L_x_3".to_string())
        );
        assert_eq!(
            ".L_x_3".parse::<Operand>().unwrap(),
            Operand::Label(".L_x_3".to_string())
        );
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert!("".parse::<Operand>().is_err());
        assert!("@@@@".parse::<Operand>().is_err());
    }

    #[test]
    fn display_negative_immediate() {
        assert_eq!(Operand::Imm(-16).to_string(), "-0x10");
    }
}
