//! Structural model of NVIDIA Ampere GPU SASS assembly.
//!
//! SASS is the native, undocumented assembly language of NVIDIA GPUs. This
//! crate provides a faithful *structural* model of Ampere-era SASS as it
//! appears in `nvdisasm`/CuAssembler listings, sufficient to drive the
//! CuAsmRL assembly game:
//!
//! * [`ControlCode`] — the per-instruction scheduling control word
//!   (`[B------:R-:W2:Y:S02]`): wait-barrier mask, read/write scoreboard
//!   barriers, yield flag and stall count.
//! * [`Register`] — general-purpose, uniform and predicate registers,
//!   including the adjacent-register pairing rule used by `.64` operands.
//! * [`Opcode`] — the opcode together with its modifiers (`.WIDE`, `.E`,
//!   `.BYPASS`, ...), and classification into fixed-latency, variable-latency,
//!   memory, and barrier/synchronisation instructions.
//! * [`Operand`] — registers, immediates, constant-bank references, and
//!   memory references with descriptor (`desc[UR18][R18.64]`) addressing.
//! * [`Instruction`] — a full instruction: guard predicate, opcode, operands
//!   and control code, with use/def analysis.
//! * [`Program`] — a kernel section: labels and instructions, with basic
//!   block boundaries.
//! * [`Cubin`] — an ELF-like container holding the encoded kernel section
//!   plus the metadata sections (symbol table, headers) that must be
//!   preserved when the scheduler rewrites only the text section.
//!
//! # Example
//!
//! ```
//! use sass::{Instruction, Program};
//!
//! let listing = "\
//! [B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;
//! [B--2---:R-:W-:-:S04] IADD3 R4, R0, 0x1, RZ ;
//! [B------:R-:W-:-:S01] EXIT ;";
//! let program: Program = listing.parse()?;
//! assert_eq!(program.instructions().count(), 3);
//! let first: &Instruction = program.instructions().next().unwrap();
//! assert!(first.opcode().is_memory());
//! assert_eq!(first.control().write_barrier(), Some(2));
//! # Ok::<(), sass::SassError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
mod cubin;
mod encode;
mod error;
mod instruction;
mod opcode;
mod operand;
mod parser;
mod program;
mod register;

pub use control::{ArchClass, ControlCode, NUM_BARRIERS};
pub use cubin::{Cubin, Section, SectionKind, Symbol};
pub use encode::{decode_program, encode_program, is_encoded_program};
pub use error::SassError;
pub use instruction::{Guard, Instruction};
pub use opcode::{LatencyClass, MemorySpace, Mnemonic, Opcode};
pub use operand::{MemRef, Operand, RegOperand};
pub use parser::parse_program;
pub use program::{BasicBlock, Item, Program};
pub use register::{adjacent_register, Register};
