//! A full SASS instruction: guard predicate, opcode, operands and control
//! code, plus use/def analysis.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::{ControlCode, Mnemonic, Opcode, Operand, Register, SassError};

/// A guard predicate (`@P0`, `@!PT`) controlling conditional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guard {
    /// True for `@!P` (execute when the predicate is false).
    pub negated: bool,
    /// The predicate register.
    pub pred: Register,
}

impl Guard {
    /// Creates a guard on the given predicate register.
    #[must_use]
    pub fn new(pred: Register) -> Self {
        Guard {
            negated: false,
            pred,
        }
    }

    /// Creates a negated guard (`@!P`).
    #[must_use]
    pub fn negated(pred: Register) -> Self {
        Guard {
            negated: true,
            pred,
        }
    }

    /// Returns true if the guard statically never allows execution
    /// (`@!PT`): the instruction is architecturally a no-op.
    #[must_use]
    pub fn is_always_false(&self) -> bool {
        self.negated && self.pred == Register::Pt
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}{}", if self.negated { "!" } else { "" }, self.pred)
    }
}

/// A single SASS instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    control: ControlCode,
    guard: Option<Guard>,
    opcode: Opcode,
    operands: Vec<Operand>,
}

impl Instruction {
    /// Creates an instruction with the given parts.
    #[must_use]
    pub fn new(control: ControlCode, opcode: Opcode, operands: Vec<Operand>) -> Self {
        Instruction {
            control,
            guard: None,
            opcode,
            operands,
        }
    }

    /// Builder-style setter for the guard predicate.
    #[must_use]
    pub fn with_guard(mut self, guard: Guard) -> Self {
        self.guard = Some(guard);
        self
    }

    /// The scheduling control code.
    #[must_use]
    pub fn control(&self) -> &ControlCode {
        &self.control
    }

    /// Mutable access to the control code.
    pub fn control_mut(&mut self) -> &mut ControlCode {
        &mut self.control
    }

    /// The guard predicate, if any.
    #[must_use]
    pub fn guard(&self) -> Option<&Guard> {
        self.guard.as_ref()
    }

    /// The opcode.
    #[must_use]
    pub fn opcode(&self) -> &Opcode {
        &self.opcode
    }

    /// The operands, in listing order.
    #[must_use]
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Number of leading operands that are destinations.
    ///
    /// Stores, global-to-shared copies, branches and synchronisation
    /// instructions have no register destination. Predicate-setting
    /// instructions (`ISETP`, `FSETP`, ...) write their first two predicate
    /// operands. ALU instructions write their first operand, and
    /// carry-producing forms (`IADD3 R6, P0, ...`) additionally write the
    /// predicate operands that immediately follow it.
    #[must_use]
    pub fn dest_operand_count(&self) -> usize {
        let op = &self.opcode;
        if op.is_store()
            || matches!(op.base(), Mnemonic::Ldgsts)
            || op.is_scheduling_fence()
            || matches!(
                op.base(),
                Mnemonic::Nop | Mnemonic::Yield | Mnemonic::Nanosleep
            )
        {
            return 0;
        }
        if self.operands.is_empty() {
            return 0;
        }
        let is_pred = |o: &Operand| o.as_reg().map(|r| r.reg.is_predicate()).unwrap_or(false);
        match op.base() {
            Mnemonic::Isetp | Mnemonic::Fsetp | Mnemonic::Hsetp2 | Mnemonic::Plop3 => {
                // The first two predicate operands are both destinations.
                let mut count = 0;
                for o in self.operands.iter().take(2) {
                    if is_pred(o) {
                        count += 1;
                    } else {
                        break;
                    }
                }
                count.max(1)
            }
            _ => {
                // First operand is the destination; trailing predicates
                // directly after it are carry-out destinations.
                let mut count = 1;
                for o in self.operands.iter().skip(1) {
                    if is_pred(o) && count < 3 {
                        count += 1;
                    } else {
                        break;
                    }
                }
                count
            }
        }
    }

    /// Registers written by this instruction.
    ///
    /// `RZ`, `URZ` and `PT` writes are discarded by the hardware and are not
    /// reported.
    #[must_use]
    pub fn defs(&self) -> Vec<Register> {
        let n = self.dest_operand_count();
        let mut regs = Vec::new();
        for operand in self.operands.iter().take(n) {
            // Destination memory references (stores) never define registers;
            // dest_operand_count already excludes them, so only register
            // operands appear here.
            if let Operand::Reg(r) = operand {
                for reg in r.registers() {
                    if !reg.is_zero_or_true() {
                        regs.push(reg);
                    }
                }
            }
        }
        regs
    }

    /// Registers read by this instruction: the guard predicate, every source
    /// operand, and every register used in address formation (including
    /// descriptor registers and `.64` pairs).
    #[must_use]
    pub fn uses(&self) -> Vec<Register> {
        let n = self.dest_operand_count();
        let mut regs = Vec::new();
        if let Some(guard) = &self.guard {
            if !guard.pred.is_zero_or_true() {
                regs.push(guard.pred);
            }
        }
        for operand in self.operands.iter().skip(n) {
            for reg in operand.registers() {
                if !reg.is_zero_or_true() {
                    regs.push(reg);
                }
            }
        }
        // Destination memory operands (stores, LDGSTS shared destination)
        // still *read* their address registers.
        for operand in self.operands.iter().take(n) {
            if let Operand::Mem(m) = operand {
                for reg in m.registers() {
                    if !reg.is_zero_or_true() {
                        regs.push(reg);
                    }
                }
            }
        }
        regs
    }

    /// Returns true if this instruction carries the `.reuse` operand-cache
    /// hint on any source operand.
    #[must_use]
    pub fn has_reuse_hint(&self) -> bool {
        self.operands.iter().any(Operand::has_reuse)
    }

    /// Sets or clears the `.reuse` operand-cache hint on one operand.
    ///
    /// Returns false (leaving the instruction unchanged) when `operand` is
    /// out of range or names an operand kind that cannot carry a reuse flag
    /// (immediates, constants, specials, labels, or a memory reference with
    /// no base register).
    pub fn set_operand_reuse(&mut self, operand: usize, reuse: bool) -> bool {
        match self.operands.get_mut(operand) {
            Some(Operand::Reg(r)) => {
                r.reuse = reuse;
                true
            }
            Some(Operand::Mem(m)) => match &mut m.base {
                Some(base) => {
                    base.reuse = reuse;
                    true
                }
                None => false,
            },
            _ => false,
        }
    }

    /// Returns true if the instruction is architecturally disabled by an
    /// always-false guard (`@!PT`).
    #[must_use]
    pub fn is_predicated_off(&self) -> bool {
        self.guard.is_some_and(|g| g.is_always_false())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.control)?;
        if let Some(guard) = &self.guard {
            write!(f, "{guard} ")?;
        }
        write!(f, "{}", self.opcode)?;
        for (i, operand) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " {operand}")?;
            } else {
                write!(f, ", {operand}")?;
            }
        }
        write!(f, " ;")
    }
}

impl FromStr for Instruction {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut text = s.trim();
        // Strip a trailing comment.
        if let Some(idx) = text.find("//") {
            text = text[..idx].trim_end();
        }
        // Control code.
        let control = if text.starts_with('[') {
            let end = text.find(']').ok_or_else(|| {
                SassError::ControlCode(format!("unterminated control code in `{s}`"))
            })?;
            let cc: ControlCode = text[..=end].parse()?;
            text = text[end + 1..].trim_start();
            cc
        } else {
            ControlCode::default()
        };
        // Trailing semicolon.
        let text = text.trim_end();
        let text = text.strip_suffix(';').unwrap_or(text).trim_end();
        if text.is_empty() {
            return Err(SassError::Operand(format!("no opcode in `{s}`")));
        }
        // Guard predicate.
        let (guard, text) = if let Some(rest) = text.strip_prefix('@') {
            let (guard_text, rest) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| SassError::Operand(format!("guard without opcode in `{s}`")))?;
            let (negated, pred_text) = match guard_text.strip_prefix('!') {
                Some(p) => (true, p),
                None => (false, guard_text),
            };
            let pred: Register = pred_text.parse()?;
            (Some(Guard { negated, pred }), rest.trim_start())
        } else {
            (None, text)
        };
        // Opcode and operands.
        let (opcode_text, operand_text) = match text.split_once(char::is_whitespace) {
            Some((op, rest)) => (op, rest.trim()),
            None => (text, ""),
        };
        let opcode: Opcode = opcode_text.parse()?;
        let mut operands = Vec::new();
        if !operand_text.is_empty() {
            for token in split_operands(operand_text) {
                let token = token.trim();
                if token.is_empty() {
                    continue;
                }
                operands.push(token.parse::<Operand>()?);
            }
        }
        Ok(Instruction {
            control,
            guard,
            opcode,
            operands,
        })
    }
}

/// Splits an operand list on commas that are not inside brackets, so that
/// `desc[UR18][R18.64], P4` and `c[0x0][0x160]` are tokenised correctly.
fn split_operands(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in text.char_indices() {
        match ch {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::RegOperand;

    #[test]
    fn parse_paper_ldg_example() {
        let inst: Instruction = "[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;".parse().unwrap();
        assert!(inst.opcode().is_memory());
        assert_eq!(inst.control().write_barrier(), Some(2));
        assert_eq!(inst.defs(), vec![Register::Gpr(0)]);
        assert_eq!(inst.uses(), vec![Register::Gpr(2), Register::Gpr(3)]);
        assert_eq!(
            inst.to_string(),
            "[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;"
        );
    }

    #[test]
    fn parse_ldgsts_with_descriptor_and_predicate_source() {
        let text =
            "[B------:R0:W-:-:S02] LDGSTS.E.BYPASS.LTC128B.128 [R74], desc[UR18][R18.64], P4 ;";
        let inst: Instruction = text.parse().unwrap();
        assert!(inst.opcode().is_memory());
        // LDGSTS has no register destination; every register is a use.
        assert!(inst.defs().is_empty());
        let uses = inst.uses();
        assert!(uses.contains(&Register::Gpr(74)));
        assert!(uses.contains(&Register::Ur(18)));
        assert!(uses.contains(&Register::Gpr(18)));
        assert!(uses.contains(&Register::Gpr(19)));
        assert!(uses.contains(&Register::Pred(4)));
    }

    #[test]
    fn parse_imad_wide_with_constant() {
        let text = "[B------:R-:W-:-:S04] IMAD.WIDE R14, R84, R8, c[0x0][0x160] ;";
        let inst: Instruction = text.parse().unwrap();
        // IMAD.WIDE writes a 64-bit pair.
        assert_eq!(inst.defs(), vec![Register::Gpr(14)]);
        assert_eq!(inst.uses(), vec![Register::Gpr(84), Register::Gpr(8)]);
    }

    #[test]
    fn iadd3_with_carry_out_predicate() {
        let text = "[B------:R-:W-:-:S04] IADD3 R6, P0, -R2, R6, RZ ;";
        let inst: Instruction = text.parse().unwrap();
        let defs = inst.defs();
        assert!(defs.contains(&Register::Gpr(6)));
        assert!(defs.contains(&Register::Pred(0)));
        let uses = inst.uses();
        assert!(uses.contains(&Register::Gpr(2)));
        assert!(uses.contains(&Register::Gpr(6)));
    }

    #[test]
    fn isetp_writes_predicates() {
        let text = "[B------:R-:W-:-:S01] ISETP.GE.AND P0, PT, R4, 0x10, PT ;";
        let inst: Instruction = text.parse().unwrap();
        assert_eq!(inst.defs(), vec![Register::Pred(0)]);
        assert_eq!(inst.uses(), vec![Register::Gpr(4)]);
    }

    #[test]
    fn store_has_no_defs_and_reads_data_register() {
        let text = "[B------:R-:W-:-:S04] STG.E desc[UR4][R4.64], R15 ;";
        let inst: Instruction = text.parse().unwrap();
        assert!(inst.defs().is_empty());
        let uses = inst.uses();
        assert!(uses.contains(&Register::Gpr(15)));
        assert!(uses.contains(&Register::Gpr(4)));
        assert!(uses.contains(&Register::Gpr(5)));
        assert!(uses.contains(&Register::Ur(4)));
    }

    #[test]
    fn guard_predicate_parsing_and_display() {
        let text = "[B------:R-:W-:-:S01] @!PT LDS.U.128 R76, [R156] ;";
        let inst: Instruction = text.parse().unwrap();
        assert!(inst.is_predicated_off());
        assert_eq!(inst.to_string(), text);
        let text2 = "[B------:R-:W-:-:S01] @P2 BRA `(.L_x_1) ;";
        let inst2: Instruction = text2.parse().unwrap();
        assert!(!inst2.is_predicated_off());
        assert!(inst2.uses().contains(&Register::Pred(2)));
    }

    #[test]
    fn default_control_code_when_missing() {
        let inst: Instruction = "MOV R1, 0x7 ;".parse().unwrap();
        assert_eq!(inst.control().stall(), 1);
        assert_eq!(inst.defs(), vec![Register::Gpr(1)]);
    }

    #[test]
    fn trailing_comment_is_ignored() {
        let inst: Instruction = "CS2R R2, SR_CLOCKLO ; // t1".parse().unwrap();
        assert_eq!(inst.defs(), vec![Register::Gpr(2)]);
        assert_eq!(inst.operands().len(), 2);
    }

    #[test]
    fn reuse_hint_detection() {
        let inst: Instruction = "[B------:R-:W-:-:S02] HMMA.16816.F32 R24, R84.reuse, R90, R24 ;"
            .parse()
            .unwrap();
        assert!(inst.has_reuse_hint());
    }

    #[test]
    fn exit_and_nop_have_no_defs_or_uses() {
        for text in ["EXIT ;", "NOP ;", "BAR.SYNC 0x0 ;"] {
            let inst: Instruction = text.parse().unwrap();
            assert!(inst.defs().is_empty(), "{text}");
        }
    }

    #[test]
    fn rz_writes_are_discarded() {
        let inst: Instruction = "IADD3 RZ, R2, R3, RZ ;".parse().unwrap();
        assert!(inst.defs().is_empty());
        assert_eq!(inst.uses(), vec![Register::Gpr(2), Register::Gpr(3)]);
    }

    #[test]
    fn display_round_trip_preserves_structure() {
        let cases = [
            "[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;",
            "[B0-----:R-:W-:-:S04] IADD3 R4, R0, 0x1, RZ ;",
            "[B------:R0:W1:-:S01] LDGSTS.E.BYPASS.128 [R74+0x800], desc[UR18][R18.64] ;",
            "[B------:R-:W-:-:S01] @!P3 STG.E desc[UR4][R4.64], R15 ;",
        ];
        for text in cases {
            let inst: Instruction = text.parse().unwrap();
            let printed = inst.to_string();
            let reparsed: Instruction = printed.parse().unwrap();
            assert_eq!(inst, reparsed, "{text}");
        }
    }

    #[test]
    fn builder_constructors() {
        let inst = Instruction::new(
            ControlCode::with_stall(4),
            Opcode::new(Mnemonic::Mov),
            vec![Operand::reg(Register::Gpr(1)), Operand::Imm(7)],
        )
        .with_guard(Guard::negated(Register::Pt));
        assert!(inst.is_predicated_off());
        assert_eq!(inst.defs(), vec![Register::Gpr(1)]);
        let _ = RegOperand::new(Register::Gpr(0)).wide().reuse();
    }
}
