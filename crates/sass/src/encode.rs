//! Binary encoding of a kernel section.
//!
//! Real Ampere cubins encode each SASS instruction as a 128-bit word whose
//! layout is undocumented. The CuAsmRL optimizer never needs to interpret
//! those bits — it always works on the disassembled text — so this crate uses
//! a self-describing encoding: a fixed header, the packed control codes (one
//! 32-bit word per instruction, exercising [`ControlCode::to_bits`]), and the
//! canonical text of the listing. The encoding is deterministic and
//! round-trips exactly, which is what the cubin interception workflow of
//! §4.1 relies on.

use bytes::{Buf, BufMut};

use crate::{ControlCode, Item, Program, SassError};

/// Magic bytes identifying an encoded kernel section.
const MAGIC: &[u8; 4] = b"SASS";
/// Encoding format version.
const VERSION: u32 = 1;

/// Encodes a program into a byte vector.
///
/// The result contains a header, the packed control code of every
/// instruction, and the canonical listing text.
#[must_use]
pub fn encode_program(program: &Program) -> Vec<u8> {
    let text = program.to_string();
    let control_words: Vec<u32> = program
        .instructions()
        .map(|inst| inst.control().to_bits())
        .collect();
    let mut buf = Vec::with_capacity(16 + control_words.len() * 4 + text.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(u32::try_from(control_words.len()).expect("instruction count fits in u32"));
    buf.put_u32_le(u32::try_from(text.len()).expect("listing length fits in u32"));
    for word in control_words {
        buf.put_u32_le(word);
    }
    buf.put_slice(text.as_bytes());
    buf
}

/// Decodes a byte vector produced by [`encode_program`].
///
/// # Errors
///
/// Returns [`SassError::Encoding`] if the header is malformed, the buffer is
/// truncated, or the control-code words disagree with the listing text.
pub fn decode_program(bytes: &[u8]) -> Result<Program, SassError> {
    let mut buf = bytes;
    if buf.remaining() < 16 {
        return Err(SassError::Encoding("truncated header".to_string()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SassError::Encoding(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SassError::Encoding(format!(
            "unsupported encoding version {version}"
        )));
    }
    let instruction_count = buf.get_u32_le() as usize;
    let text_len = buf.get_u32_le() as usize;
    if buf.remaining() < instruction_count * 4 + text_len {
        return Err(SassError::Encoding("truncated body".to_string()));
    }
    let mut control_words = Vec::with_capacity(instruction_count);
    for _ in 0..instruction_count {
        control_words.push(buf.get_u32_le());
    }
    let mut text_bytes = vec![0u8; text_len];
    buf.copy_to_slice(&mut text_bytes);
    let text = String::from_utf8(text_bytes)
        .map_err(|e| SassError::Encoding(format!("listing is not valid UTF-8: {e}")))?;
    let program: Program = text.parse()?;
    if program.instruction_count() != instruction_count {
        return Err(SassError::Encoding(format!(
            "instruction count mismatch: header says {instruction_count}, listing has {}",
            program.instruction_count()
        )));
    }
    for (inst, word) in program.instructions().zip(control_words) {
        let expected = ControlCode::from_bits(word)?;
        if *inst.control() != expected {
            return Err(SassError::Encoding(
                "control code table disagrees with listing".to_string(),
            ));
        }
    }
    Ok(program)
}

/// Returns true if the byte slice looks like an encoded kernel section.
#[must_use]
pub fn is_encoded_program(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == MAGIC
}

#[allow(dead_code)]
fn assert_items_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Item>();
    assert_send_sync::<Program>();
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
[B------:R-:W0:-:S02] LDG.E R2, [R10.64] ;
[B------:R-:W-:-:S04] IADD3 R4, R6, 0x1, RZ ;
.L_x_1:
[B0-----:R-:W-:-:S04] IMAD R8, R4, R2, RZ ;
[B------:R-:W-:-:S02] STG.E [R12.64], R8 ;
[B------:R-:W-:-:S05] EXIT ;
";

    #[test]
    fn encode_decode_round_trip() {
        let program: Program = SAMPLE.parse().unwrap();
        let bytes = encode_program(&program);
        assert!(is_encoded_program(&bytes));
        let decoded = decode_program(&bytes).unwrap();
        assert_eq!(program, decoded);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let program: Program = SAMPLE.parse().unwrap();
        let mut bytes = encode_program(&program);
        bytes[0] = b'X';
        assert!(decode_program(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let program: Program = SAMPLE.parse().unwrap();
        let bytes = encode_program(&program);
        assert!(decode_program(&bytes[..bytes.len() / 2]).is_err());
        assert!(decode_program(&bytes[..8]).is_err());
    }

    #[test]
    fn empty_program_round_trips() {
        let program = Program::new();
        let decoded = decode_program(&encode_program(&program)).unwrap();
        assert_eq!(decoded.instruction_count(), 0);
    }
}
