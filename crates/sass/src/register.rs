//! GPU registers: general-purpose, uniform and predicate registers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::SassError;

/// A register referenced by a SASS instruction.
///
/// Ampere SASS exposes three register files that are relevant to scheduling:
/// 32-bit general-purpose registers (`R0`–`R254`, plus the zero register
/// `RZ`), uniform registers (`UR0`–`UR62`, plus `URZ`) shared across a warp,
/// and 1-bit predicate registers (`P0`–`P6`, plus the true predicate `PT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Register {
    /// General purpose register `R{n}`.
    Gpr(u16),
    /// The general purpose zero register `RZ`: reads as zero, writes discarded.
    Rz,
    /// Uniform register `UR{n}`.
    Ur(u16),
    /// The uniform zero register `URZ`.
    Urz,
    /// Predicate register `P{n}`.
    Pred(u8),
    /// The constant-true predicate `PT`.
    Pt,
    /// Uniform predicate register `UP{n}`.
    UPred(u8),
}

impl Register {
    /// Returns true for registers whose writes are discarded and whose reads
    /// never carry a data dependence (`RZ`, `URZ`, `PT`).
    #[must_use]
    pub fn is_zero_or_true(self) -> bool {
        matches!(self, Register::Rz | Register::Urz | Register::Pt)
    }

    /// Returns true for general-purpose registers (including `RZ`).
    #[must_use]
    pub fn is_gpr(self) -> bool {
        matches!(self, Register::Gpr(_) | Register::Rz)
    }

    /// Returns true for predicate registers (including `PT`).
    #[must_use]
    pub fn is_predicate(self) -> bool {
        matches!(self, Register::Pred(_) | Register::Pt | Register::UPred(_))
    }

    /// The register paired with this one by a `.64` (wide) operand, per the
    /// adjacent-register rule, or `None` when pairing does not apply.
    #[must_use]
    pub fn adjacent(self) -> Option<Register> {
        match self {
            Register::Gpr(n) => Some(Register::Gpr(adjacent_register(n))),
            Register::Ur(n) => Some(Register::Ur(adjacent_register(n))),
            _ => None,
        }
    }
}

/// Computes the register adjacent to register number `n` for `.64` operands.
///
/// This is equation (2) of the CuAsmRL paper: registers are paired
/// even/odd, so `R18.64` involves `R18` and `R19`, while `R5.64` involves
/// `R5` and `R4`.
///
/// ```
/// use sass::adjacent_register;
/// assert_eq!(adjacent_register(18), 19);
/// assert_eq!(adjacent_register(19), 18);
/// assert_eq!(adjacent_register(5), 4);
/// ```
#[must_use]
pub fn adjacent_register(n: u16) -> u16 {
    let base = n / 2;
    let rem = n % 2;
    let flip = 1 - rem;
    base * 2 + flip
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Register::Gpr(n) => write!(f, "R{n}"),
            Register::Rz => write!(f, "RZ"),
            Register::Ur(n) => write!(f, "UR{n}"),
            Register::Urz => write!(f, "URZ"),
            Register::Pred(n) => write!(f, "P{n}"),
            Register::Pt => write!(f, "PT"),
            Register::UPred(n) => write!(f, "UP{n}"),
        }
    }
}

impl FromStr for Register {
    type Err = SassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || SassError::Operand(format!("unrecognized register `{s}`"));
        match s {
            "RZ" => return Ok(Register::Rz),
            "URZ" => return Ok(Register::Urz),
            "PT" => return Ok(Register::Pt),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("UP") {
            return rest.parse::<u8>().map(Register::UPred).map_err(|_| err());
        }
        if let Some(rest) = s.strip_prefix("UR") {
            return rest.parse::<u16>().map(Register::Ur).map_err(|_| err());
        }
        if let Some(rest) = s.strip_prefix('R') {
            return rest.parse::<u16>().map(Register::Gpr).map_err(|_| err());
        }
        if let Some(rest) = s.strip_prefix('P') {
            return rest.parse::<u8>().map(Register::Pred).map_err(|_| err());
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_register_pairs_even_and_odd() {
        // Even registers pair with the next odd register and vice versa.
        assert_eq!(adjacent_register(0), 1);
        assert_eq!(adjacent_register(1), 0);
        assert_eq!(adjacent_register(18), 19);
        assert_eq!(adjacent_register(19), 18);
        assert_eq!(adjacent_register(5), 4);
        assert_eq!(adjacent_register(84), 85);
    }

    #[test]
    fn adjacent_is_an_involution() {
        for n in 0..256u16 {
            assert_eq!(adjacent_register(adjacent_register(n)), n);
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for text in ["R0", "R254", "RZ", "UR18", "URZ", "P3", "PT", "UP1"] {
            let reg: Register = text.parse().unwrap();
            assert_eq!(reg.to_string(), text);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("Rx".parse::<Register>().is_err());
        assert!("".parse::<Register>().is_err());
        assert!("X7".parse::<Register>().is_err());
    }

    #[test]
    fn classification() {
        assert!(Register::Rz.is_zero_or_true());
        assert!(Register::Pt.is_zero_or_true());
        assert!(!Register::Gpr(3).is_zero_or_true());
        assert!(Register::Gpr(3).is_gpr());
        assert!(Register::Pred(2).is_predicate());
        assert!(!Register::Ur(2).is_gpr());
    }

    #[test]
    fn adjacent_only_applies_to_gpr_and_uniform() {
        assert_eq!(Register::Gpr(18).adjacent(), Some(Register::Gpr(19)));
        assert_eq!(Register::Ur(4).adjacent(), Some(Register::Ur(5)));
        assert_eq!(Register::Pred(1).adjacent(), None);
        assert_eq!(Register::Rz.adjacent(), None);
    }
}
