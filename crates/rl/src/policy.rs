//! The actor-critic policy network.
//!
//! As described in §3.5 of the paper, the agent encodes the embedded SASS
//! schedule with a convolutional network and produces per-action
//! probabilities with an MLP head; a value head shares the encoder. Invalid
//! actions are masked out of the categorical distribution.

use nn::{Adam, ConvEncoder, Linear, MaskedCategorical, Matrix};
use rand::{Rng, SeedableRng};
use rand_chacha::{ChaCha8Rng, ChaChaState};
use serde::{Deserialize, Serialize};

/// The complete, bit-exact state of one Adam optimizer, as captured by
/// [`ActorCritic::state`].
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    /// Current learning rate.
    pub learning_rate: f32,
    /// Number of update steps applied so far.
    pub step: u64,
    /// First-moment estimates.
    pub first_moment: Vec<f32>,
    /// Second-moment estimates.
    pub second_moment: Vec<f32>,
}

/// The complete, bit-exact state of an action-sampling RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RngState {
    /// ChaCha key words.
    pub key: [u32; 8],
    /// Block counter of the next keystream block.
    pub counter: u64,
    /// Nonce words.
    pub nonce: [u32; 2],
    /// Buffered keystream block.
    pub buffer: [u32; 16],
    /// Next unread word in the buffer.
    pub index: u32,
}

/// The complete state of an [`ActorCritic`] network: every weight of the
/// shared encoder and both heads, the three Adam optimizer states and the
/// action-sampling RNG. Restoring this state with
/// [`ActorCritic::from_state`] continues training bit-identically, which is
/// what `rl`'s checkpoint format serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyState {
    /// Observation features per row.
    pub features: usize,
    /// Encoder output channels.
    pub channels: usize,
    /// Encoder window (instructions).
    pub kernel: usize,
    /// Number of discrete actions.
    pub n_actions: usize,
    /// Encoder convolution weights.
    pub encoder_weight: Vec<f32>,
    /// Encoder bias.
    pub encoder_bias: Vec<f32>,
    /// Actor-head weights.
    pub actor_weight: Vec<f32>,
    /// Actor-head bias.
    pub actor_bias: Vec<f32>,
    /// Critic-head weights.
    pub critic_weight: Vec<f32>,
    /// Critic-head bias.
    pub critic_bias: Vec<f32>,
    /// Encoder optimizer state.
    pub encoder_opt: OptimizerState,
    /// Actor optimizer state.
    pub actor_opt: OptimizerState,
    /// Critic optimizer state.
    pub critic_opt: OptimizerState,
    /// Action-sampling RNG state.
    pub rng: RngState,
}

/// A sampled action with the quantities PPO needs to store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionSample {
    /// The selected action, or `None` when every action was masked.
    pub action: Option<usize>,
    /// Log-probability of the selected action under the current policy.
    pub log_prob: f32,
    /// Value estimate of the observation.
    pub value: f32,
}

/// Hyperparameters of one PPO update step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateConfig {
    /// Clipping coefficient ε.
    pub clip_coef: f32,
    /// Entropy bonus coefficient.
    pub ent_coef: f32,
    /// Value-loss coefficient.
    pub vf_coef: f32,
}

/// Statistics of one minibatch update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Mean clipped surrogate loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Approximate KL divergence between the old and updated policy.
    pub approx_kl: f32,
    /// Fraction of samples whose ratio was clipped.
    pub clip_fraction: f32,
}

/// One minibatch sample handed to [`ActorCritic::update_minibatch`].
#[derive(Debug, Clone)]
pub struct Sample<'a> {
    /// Observation.
    pub observation: &'a Matrix,
    /// Action mask at the time of the action.
    pub mask: &'a [bool],
    /// The action taken.
    pub action: usize,
    /// Log-probability under the behaviour policy.
    pub old_log_prob: f32,
    /// Normalized advantage.
    pub advantage: f32,
    /// Bootstrapped return.
    pub ret: f32,
}

/// The actor-critic network: shared convolutional encoder, actor head and
/// critic head, each with its own Adam state.
#[derive(Debug, Clone)]
pub struct ActorCritic {
    encoder: ConvEncoder,
    actor: Linear,
    critic: Linear,
    encoder_opt: Adam,
    actor_opt: Adam,
    critic_opt: Adam,
    rng: ChaCha8Rng,
}

impl ActorCritic {
    /// Builds a policy for observations with `features` columns and
    /// `n_actions` discrete actions.
    #[must_use]
    pub fn new(
        seed: u64,
        features: usize,
        channels: usize,
        kernel: usize,
        n_actions: usize,
        learning_rate: f32,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let encoder = ConvEncoder::new(&mut rng, channels, kernel, features);
        let actor = Linear::new(&mut rng, channels, n_actions);
        let critic = Linear::new(&mut rng, channels, 1);
        let encoder_params = encoder.parameter_count();
        let actor_params = actor.parameter_count();
        let critic_params = critic.parameter_count();
        ActorCritic {
            encoder,
            actor,
            critic,
            encoder_opt: Adam::new(encoder_params, learning_rate),
            actor_opt: Adam::new(actor_params, learning_rate),
            critic_opt: Adam::new(critic_params, learning_rate),
            rng,
        }
    }

    /// Number of discrete actions this policy outputs.
    #[must_use]
    pub fn action_count(&self) -> usize {
        self.actor.out_features()
    }

    /// Captures the complete network state (weights, optimizer moments, RNG)
    /// for checkpointing. [`ActorCritic::from_state`] restores it such that
    /// subsequent training is bit-identical to never having paused.
    #[must_use]
    pub fn state(&self) -> PolicyState {
        let opt_state = |opt: &Adam| OptimizerState {
            learning_rate: opt.learning_rate(),
            step: opt.step_count(),
            first_moment: opt.first_moment().to_vec(),
            second_moment: opt.second_moment().to_vec(),
        };
        let rng = self.rng.state();
        PolicyState {
            features: self.encoder.input_features(),
            channels: self.encoder.channels(),
            kernel: self.encoder.kernel_size(),
            n_actions: self.actor.out_features(),
            encoder_weight: self.encoder.weight_values().to_vec(),
            encoder_bias: self.encoder.bias_values().to_vec(),
            actor_weight: self.actor.weight_values().to_vec(),
            actor_bias: self.actor.bias_values().to_vec(),
            critic_weight: self.critic.weight_values().to_vec(),
            critic_bias: self.critic.bias_values().to_vec(),
            encoder_opt: opt_state(&self.encoder_opt),
            actor_opt: opt_state(&self.actor_opt),
            critic_opt: opt_state(&self.critic_opt),
            rng: RngState {
                key: rng.key,
                counter: rng.counter,
                nonce: rng.nonce,
                buffer: rng.buffer,
                index: u32::try_from(rng.index).unwrap_or(u32::MAX),
            },
        }
    }

    /// Rebuilds a policy from a captured [`PolicyState`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first internal inconsistency (mismatched
    /// weight-vector or moment-vector lengths) when the state is not a
    /// faithful [`ActorCritic::state`] capture.
    pub fn from_state(state: &PolicyState) -> Result<Self, String> {
        let encoder = ConvEncoder::from_parts(
            state.channels,
            state.kernel,
            state.features,
            state.encoder_weight.clone(),
            state.encoder_bias.clone(),
        )
        .ok_or("encoder weight shape mismatch")?;
        let actor = Linear::from_parts(
            state.channels,
            state.n_actions,
            state.actor_weight.clone(),
            state.actor_bias.clone(),
        )
        .ok_or("actor weight shape mismatch")?;
        let critic = Linear::from_parts(
            state.channels,
            1,
            state.critic_weight.clone(),
            state.critic_bias.clone(),
        )
        .ok_or("critic weight shape mismatch")?;
        let restore_opt = |opt: &OptimizerState, params: usize, name: &str| {
            if opt.first_moment.len() != params {
                return Err(format!("{name} optimizer moment length mismatch"));
            }
            Adam::from_state(
                opt.learning_rate,
                opt.step,
                opt.first_moment.clone(),
                opt.second_moment.clone(),
            )
            .ok_or(format!("{name} optimizer moment vectors disagree"))
        };
        let encoder_opt = restore_opt(&state.encoder_opt, encoder.parameter_count(), "encoder")?;
        let actor_opt = restore_opt(&state.actor_opt, actor.parameter_count(), "actor")?;
        let critic_opt = restore_opt(&state.critic_opt, critic.parameter_count(), "critic")?;
        let rng = ChaCha8Rng::from_state(ChaChaState {
            key: state.rng.key,
            counter: state.rng.counter,
            nonce: state.rng.nonce,
            buffer: state.rng.buffer,
            index: state.rng.index as usize,
        });
        Ok(ActorCritic {
            encoder,
            actor,
            critic,
            encoder_opt,
            actor_opt,
            critic_opt,
            rng,
        })
    }

    /// Replaces the learning rate of all three optimizers (annealing).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.encoder_opt.set_learning_rate(lr);
        self.actor_opt.set_learning_rate(lr);
        self.critic_opt.set_learning_rate(lr);
    }

    fn forward(&self, observation: &Matrix) -> (Vec<f32>, Vec<f32>, f32, Matrix) {
        let (pooled, activations) = self.encoder.forward(observation);
        let logits = self.actor.forward(&pooled);
        let value = self.critic.forward(&pooled)[0];
        (pooled, logits, value, activations)
    }

    /// The action distribution for an observation.
    #[must_use]
    pub fn distribution(&self, observation: &Matrix, mask: &[bool]) -> MaskedCategorical {
        let (_, logits, _, _) = self.forward(observation);
        MaskedCategorical::from_logits(&logits, mask)
    }

    /// Value estimate of an observation.
    #[must_use]
    pub fn value(&self, observation: &Matrix) -> f32 {
        self.forward(observation).2
    }

    /// Samples an action for rollout collection.
    pub fn act(&mut self, observation: &Matrix, mask: &[bool]) -> ActionSample {
        let (_, logits, value, _) = self.forward(observation);
        let dist = MaskedCategorical::from_logits(&logits, mask);
        let action = dist.sample(&mut self.rng);
        ActionSample {
            action,
            log_prob: action.map_or(0.0, |a| dist.log_prob(a)),
            value,
        }
    }

    /// Samples one action per env from a stacked observation batch.
    ///
    /// The whole batch flows through the network together: the encoder runs
    /// over each env's row range of the stacked observation matrix (no
    /// per-env copies), and the actor and critic heads each run as **one**
    /// blocked GEMM over the stacked pooled encodings instead of `N` vector
    /// loops. Every arithmetic accumulation is ordered exactly as the
    /// per-env path, so the logits, values and sampled actions are
    /// bit-identical to calling [`ActorCritic::act`] env by env.
    ///
    /// Envs are evaluated in batch order with a single RNG stream, so the
    /// sampled actions are a pure function of (policy state, batch) — the
    /// thread count used to *collect* the batch can never change them.
    pub fn act_batch(&mut self, batch: &crate::ObservationBatch) -> Vec<ActionSample> {
        let (pooled, _activations) = self
            .encoder
            .forward_batch(&batch.observations, &batch.offsets);
        let logits = self.actor.forward_batch(&pooled);
        let values = self.critic.forward_batch(&pooled);
        (0..batch.num_envs())
            .map(|i| {
                let mask = batch.mask(i);
                let dist = MaskedCategorical::from_logits(logits.row(i), &mask);
                let action = dist.sample(&mut self.rng);
                ActionSample {
                    action,
                    log_prob: action.map_or(0.0, |a| dist.log_prob(a)),
                    value: values.get(i, 0),
                }
            })
            .collect()
    }

    /// Value estimates for a stacked observation batch (one critic GEMM);
    /// entry `i` is bit-identical to [`ActorCritic::value`] on env `i`'s
    /// observation.
    #[must_use]
    pub fn value_batch(&self, batch: &crate::ObservationBatch) -> Vec<f32> {
        let (pooled, _activations) = self
            .encoder
            .forward_batch(&batch.observations, &batch.offsets);
        let values = self.critic.forward_batch(&pooled);
        (0..batch.num_envs()).map(|i| values.get(i, 0)).collect()
    }

    /// Greedy (deterministic) action, used in inference mode (§5.7).
    #[must_use]
    pub fn act_greedy(&self, observation: &Matrix, mask: &[bool]) -> Option<usize> {
        self.distribution(observation, mask).argmax()
    }

    /// Performs one clipped-PPO gradient step on a minibatch and returns the
    /// update statistics.
    pub fn update_minibatch(
        &mut self,
        samples: &[Sample<'_>],
        config: &UpdateConfig,
    ) -> UpdateStats {
        if samples.is_empty() {
            return UpdateStats::default();
        }
        self.encoder.zero_grad();
        self.actor.zero_grad();
        self.critic.zero_grad();
        let scale = 1.0 / samples.len() as f32;
        let mut stats = UpdateStats::default();
        for sample in samples {
            let (pooled, logits, value, activations) = self.forward(sample.observation);
            let dist = MaskedCategorical::from_logits(&logits, sample.mask);
            let new_log_prob = dist.log_prob(sample.action);
            let entropy = dist.entropy();
            let log_ratio = (new_log_prob - sample.old_log_prob).clamp(-20.0, 20.0);
            let ratio = log_ratio.exp();
            let adv = sample.advantage;
            let unclipped = ratio * adv;
            let clipped = ratio.clamp(1.0 - config.clip_coef, 1.0 + config.clip_coef) * adv;
            let surrogate = unclipped.min(clipped);
            let clipped_active = unclipped > clipped + 1e-8;

            stats.policy_loss += -surrogate * scale;
            stats.value_loss += 0.5 * (value - sample.ret).powi(2) * scale;
            stats.entropy += entropy * scale;
            stats.approx_kl += ((ratio - 1.0) - log_ratio) * scale;
            if clipped_active {
                stats.clip_fraction += scale;
            }

            // Gradient of the loss with respect to the logits.
            let mut grad_logits = vec![0.0; logits.len()];
            if !clipped_active && new_log_prob.is_finite() {
                let logp_grad = dist.log_prob_grad(sample.action);
                for (g, lp) in grad_logits.iter_mut().zip(&logp_grad) {
                    *g += -adv * ratio * lp;
                }
            }
            let ent_grad = dist.entropy_grad();
            for (g, eg) in grad_logits.iter_mut().zip(&ent_grad) {
                *g += -config.ent_coef * eg;
            }
            for g in &mut grad_logits {
                *g *= scale;
            }
            // Gradient of the value loss with respect to the value output.
            let grad_value = vec![config.vf_coef * (value - sample.ret) * scale];

            let grad_pooled_actor = self.actor.backward(&pooled, &grad_logits);
            let grad_pooled_critic = self.critic.backward(&pooled, &grad_value);
            let grad_pooled: Vec<f32> = grad_pooled_actor
                .iter()
                .zip(&grad_pooled_critic)
                .map(|(a, c)| a + c)
                .collect();
            self.encoder
                .backward(sample.observation, &activations, &grad_pooled);
        }
        let encoder_grads = self.encoder.gradients();
        self.encoder_opt
            .step(&mut self.encoder.parameters_mut(), &encoder_grads);
        let actor_grads = self.actor.gradients();
        self.actor_opt
            .step(&mut self.actor.parameters_mut(), &actor_grads);
        let critic_grads = self.critic.gradients();
        self.critic_opt
            .step(&mut self.critic.parameters_mut(), &critic_grads);
        stats
    }

    /// Reseeds the policy's action-sampling RNG (used for deterministic
    /// inference runs).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
    }

    /// Draws a uniform random valid action; used for exploration baselines.
    pub fn random_action(&mut self, mask: &[bool]) -> Option<usize> {
        let valid: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(i))
            .collect();
        if valid.is_empty() {
            None
        } else {
            Some(valid[self.rng.gen_range(0..valid.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation() -> Matrix {
        Matrix::from_vec(6, 4, (0..24).map(|i| (i as f32) * 0.05).collect())
    }

    #[test]
    fn act_respects_the_mask() {
        let mut policy = ActorCritic::new(0, 4, 8, 3, 5, 1e-3);
        let mask = vec![false, true, false, true, false];
        for _ in 0..50 {
            let sample = policy.act(&observation(), &mask);
            let action = sample.action.unwrap();
            assert!(mask[action]);
        }
    }

    #[test]
    fn fully_masked_state_yields_no_action() {
        let mut policy = ActorCritic::new(0, 4, 8, 3, 5, 1e-3);
        let sample = policy.act(&observation(), &[false; 5]);
        assert_eq!(sample.action, None);
    }

    #[test]
    fn update_moves_the_policy_toward_positive_advantage_actions() {
        let mut policy = ActorCritic::new(1, 4, 8, 3, 3, 5e-2);
        let obs = observation();
        let mask = vec![true, true, true];
        let config = UpdateConfig {
            clip_coef: 0.2,
            ent_coef: 0.0,
            vf_coef: 0.5,
        };
        let before = policy.distribution(&obs, &mask).probs()[1];
        for _ in 0..30 {
            let dist = policy.distribution(&obs, &mask);
            let old_log_prob = dist.log_prob(1);
            let samples = vec![Sample {
                observation: &obs,
                mask: &mask,
                action: 1,
                old_log_prob,
                advantage: 1.0,
                ret: 1.0,
            }];
            policy.update_minibatch(&samples, &config);
        }
        let after = policy.distribution(&obs, &mask).probs()[1];
        assert!(
            after > before,
            "probability of the rewarded action should increase: {before} -> {after}"
        );
    }

    #[test]
    fn update_reports_finite_statistics() {
        let mut policy = ActorCritic::new(2, 4, 8, 3, 4, 1e-3);
        let obs = observation();
        let mask = vec![true; 4];
        let old = policy.act(&obs, &mask);
        let samples = vec![Sample {
            observation: &obs,
            mask: &mask,
            action: old.action.unwrap(),
            old_log_prob: old.log_prob,
            advantage: -0.5,
            ret: 0.2,
        }];
        let stats = policy.update_minibatch(
            &samples,
            &UpdateConfig {
                clip_coef: 0.2,
                ent_coef: 0.01,
                vf_coef: 0.5,
            },
        );
        assert!(stats.policy_loss.is_finite());
        assert!(stats.value_loss.is_finite());
        assert!(stats.entropy > 0.0);
        assert!(stats.approx_kl.is_finite());
        assert!(stats.clip_fraction >= 0.0);
    }

    #[test]
    fn value_head_regresses_toward_returns() {
        let mut policy = ActorCritic::new(3, 4, 8, 3, 3, 5e-2);
        let obs = observation();
        let mask = vec![true; 3];
        let target = 4.0;
        for _ in 0..200 {
            let dist = policy.distribution(&obs, &mask);
            let samples = vec![Sample {
                observation: &obs,
                mask: &mask,
                action: 0,
                old_log_prob: dist.log_prob(0),
                advantage: 0.0,
                ret: target,
            }];
            policy.update_minibatch(
                &samples,
                &UpdateConfig {
                    clip_coef: 0.2,
                    ent_coef: 0.0,
                    vf_coef: 1.0,
                },
            );
        }
        assert!((policy.value(&obs) - target).abs() < 1.0);
    }

    #[test]
    fn act_batch_is_bit_identical_to_per_env_act() {
        let features = 4;
        let n_actions = 5;
        let mut per_env = ActorCritic::new(7, features, 8, 3, n_actions, 1e-3);
        let mut batched = per_env.clone();
        // Three envs with different observation lengths stacked row-wise,
        // including one shorter than the conv window and a partial mask.
        let lengths = [6usize, 2, 9];
        let mut offsets = vec![0usize];
        for len in lengths {
            offsets.push(offsets.last().unwrap() + len);
        }
        let total = *offsets.last().unwrap();
        let observations = Matrix::from_vec(
            total,
            features,
            (0..total * features).map(|i| (i as f32).sin()).collect(),
        );
        let masks = Matrix::from_vec(
            3,
            n_actions,
            vec![
                1.0, 1.0, 1.0, 1.0, 1.0, //
                0.0, 1.0, 0.0, 1.0, 0.0, //
                1.0, 0.0, 1.0, 0.0, 1.0, //
            ],
        );
        let batch = crate::ObservationBatch {
            observations,
            offsets,
            masks,
        };
        let batch_samples = batched.act_batch(&batch);
        let values = batched.value_batch(&batch);
        for i in 0..3 {
            let sample = per_env.act(&batch.observation(i), &batch.mask(i));
            assert_eq!(sample.action, batch_samples[i].action, "env {i}");
            assert_eq!(
                sample.log_prob.to_bits(),
                batch_samples[i].log_prob.to_bits(),
                "env {i}"
            );
            assert_eq!(
                sample.value.to_bits(),
                batch_samples[i].value.to_bits(),
                "env {i}"
            );
            assert_eq!(
                values[i].to_bits(),
                per_env.value(&batch.observation(i)).to_bits(),
                "env {i}"
            );
        }
    }

    #[test]
    fn state_round_trip_continues_sampling_and_updates_bit_identically() {
        let mut policy = ActorCritic::new(5, 4, 8, 3, 4, 1e-2);
        let obs = observation();
        let mask = vec![true; 4];
        // Burn in: a few samples and one update so RNG and Adam moments are
        // mid-stream.
        for _ in 0..3 {
            let _ = policy.act(&obs, &mask);
        }
        let sample = policy.act(&obs, &mask);
        policy.update_minibatch(
            &[Sample {
                observation: &obs,
                mask: &mask,
                action: sample.action.unwrap(),
                old_log_prob: sample.log_prob,
                advantage: 1.0,
                ret: 0.5,
            }],
            &UpdateConfig {
                clip_coef: 0.2,
                ent_coef: 0.01,
                vf_coef: 0.5,
            },
        );
        let state = policy.state();
        let mut restored = ActorCritic::from_state(&state).expect("faithful state");
        assert_eq!(restored.state(), state);
        for _ in 0..10 {
            let a = policy.act(&obs, &mask);
            let b = restored.act(&obs, &mask);
            assert_eq!(a.action, b.action);
            assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        assert_eq!(policy.state(), restored.state());
        // Shape lies are rejected, not panicked on.
        let mut bad = state;
        bad.actor_weight.pop();
        assert!(ActorCritic::from_state(&bad).is_err());
    }

    #[test]
    fn greedy_action_is_deterministic_and_random_action_respects_mask() {
        let mut policy = ActorCritic::new(4, 4, 8, 3, 4, 1e-3);
        let obs = observation();
        let mask = vec![true, false, true, false];
        let a = policy.act_greedy(&obs, &mask).unwrap();
        let b = policy.act_greedy(&obs, &mask).unwrap();
        assert_eq!(a, b);
        assert!(mask[a]);
        for _ in 0..20 {
            let r = policy.random_action(&mask).unwrap();
            assert!(mask[r]);
        }
        assert_eq!(policy.random_action(&[false; 4]), None);
    }
}
