//! Rollout storage and generalized advantage estimation.

use nn::Matrix;

/// One stored transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation at the time of the action.
    pub observation: Matrix,
    /// Validity mask at the time of the action.
    pub mask: Vec<bool>,
    /// The sampled action.
    pub action: usize,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f32,
    /// Value estimate of the observation.
    pub value: f32,
    /// Reward received.
    pub reward: f32,
    /// Episode-termination flag after this step.
    pub done: bool,
}

/// A rollout buffer with GAE-λ advantage computation.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
}

/// Advantages and returns computed from a rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct Advantages {
    /// GAE-λ advantages (normalized by the PPO update, not here).
    pub advantages: Vec<f32>,
    /// Bootstrapped returns (`advantage + value`).
    pub returns: Vec<f32>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        RolloutBuffer {
            transitions: Vec::new(),
        }
    }

    /// Appends a transition.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True if no transitions are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Stored transitions in insertion order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Discards all transitions.
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Computes GAE-λ advantages and returns. `last_value` is the value
    /// estimate of the state following the final stored transition (zero if
    /// that transition ended an episode).
    #[must_use]
    pub fn compute_advantages(&self, gamma: f32, lambda: f32, last_value: f32) -> Advantages {
        let n = self.transitions.len();
        let mut advantages = vec![0.0; n];
        let mut gae = 0.0;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            let (next_value, next_nonterminal) = if i + 1 < n {
                let next = &self.transitions[i + 1];
                (next.value, if t.done { 0.0 } else { 1.0 })
            } else {
                (last_value, if t.done { 0.0 } else { 1.0 })
            };
            let delta = t.reward + gamma * next_value * next_nonterminal - t.value;
            gae = delta + gamma * lambda * next_nonterminal * gae;
            advantages[i] = gae;
        }
        let returns = advantages
            .iter()
            .zip(&self.transitions)
            .map(|(a, t)| a + t.value)
            .collect();
        Advantages {
            advantages,
            returns,
        }
    }

    /// Sum of rewards of each completed episode in the buffer.
    #[must_use]
    pub fn episodic_returns(&self) -> Vec<f32> {
        let mut totals = Vec::new();
        let mut acc = 0.0;
        for t in &self.transitions {
            acc += t.reward;
            if t.done {
                totals.push(acc);
                acc = 0.0;
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(reward: f32, value: f32, done: bool) -> Transition {
        Transition {
            observation: Matrix::zeros(1, 1),
            mask: vec![true],
            action: 0,
            log_prob: 0.0,
            value,
            reward,
            done,
        }
    }

    #[test]
    fn single_step_episode_advantage_is_reward_minus_value() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(2.0, 0.5, true));
        let adv = buffer.compute_advantages(0.99, 0.95, 123.0);
        assert!((adv.advantages[0] - 1.5).abs() < 1e-6);
        assert!((adv.returns[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gae_with_lambda_one_matches_discounted_returns() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(1.0, 0.0, false));
        buffer.push(transition(1.0, 0.0, false));
        buffer.push(transition(1.0, 0.0, true));
        let gamma = 0.9;
        let adv = buffer.compute_advantages(gamma, 1.0, 0.0);
        let expected0 = 1.0 + gamma * (1.0 + gamma);
        assert!((adv.advantages[0] - expected0).abs() < 1e-5);
        assert!((adv.advantages[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_uses_last_value_when_episode_is_unfinished() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(0.0, 0.0, false));
        let adv = buffer.compute_advantages(1.0, 1.0, 10.0);
        assert!((adv.advantages[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn episodic_returns_split_on_done() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(1.0, 0.0, false));
        buffer.push(transition(2.0, 0.0, true));
        buffer.push(transition(-1.0, 0.0, true));
        assert_eq!(buffer.episodic_returns(), vec![3.0, -1.0]);
        assert_eq!(buffer.len(), 3);
        assert!(!buffer.is_empty());
    }
}
