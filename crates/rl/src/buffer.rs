//! Rollout storage and generalized advantage estimation.

use nn::Matrix;

/// One stored transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation at the time of the action.
    pub observation: Matrix,
    /// Validity mask at the time of the action.
    pub mask: Vec<bool>,
    /// The sampled action.
    pub action: usize,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f32,
    /// Value estimate of the observation.
    pub value: f32,
    /// Reward received.
    pub reward: f32,
    /// Episode-termination flag after this step.
    pub done: bool,
}

/// A rollout buffer with GAE-λ advantage computation.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
}

/// Advantages and returns computed from a rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct Advantages {
    /// GAE-λ advantages (normalized by the PPO update, not here).
    pub advantages: Vec<f32>,
    /// Bootstrapped returns (`advantage + value`).
    pub returns: Vec<f32>,
}

/// One contiguous per-env run of transitions inside a [`RolloutBuffer`].
///
/// Vectorized rollout collection appends each env's transitions as one
/// contiguous block; advantage estimation must then bootstrap each block
/// with that env's own final value estimate instead of letting GAE leak
/// across env boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Index of the first transition of the block.
    pub start: usize,
    /// Number of transitions in the block.
    pub len: usize,
    /// Value estimate of the state following the block's final transition
    /// (ignored when that transition ended an episode).
    pub bootstrap_value: f32,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        RolloutBuffer {
            transitions: Vec::new(),
        }
    }

    /// Appends a transition.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True if no transitions are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Stored transitions in insertion order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Discards all transitions.
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Computes GAE-λ advantages and returns. `last_value` is the value
    /// estimate of the state following the final stored transition (zero if
    /// that transition ended an episode).
    #[must_use]
    pub fn compute_advantages(&self, gamma: f32, lambda: f32, last_value: f32) -> Advantages {
        self.compute_advantages_segmented(
            gamma,
            lambda,
            &[Segment {
                start: 0,
                len: self.transitions.len(),
                bootstrap_value: last_value,
            }],
        )
    }

    /// Computes GAE-λ advantages and returns over per-env segments.
    ///
    /// Each [`Segment`] is treated as an independent trajectory: the
    /// recursion restarts at every segment boundary and bootstraps from the
    /// segment's own `bootstrap_value`, so interleaving multiple envs in one
    /// buffer yields the same advantages each env would compute alone.
    ///
    /// # Panics
    ///
    /// Panics if a segment reaches outside the buffer.
    #[must_use]
    pub fn compute_advantages_segmented(
        &self,
        gamma: f32,
        lambda: f32,
        segments: &[Segment],
    ) -> Advantages {
        let n = self.transitions.len();
        let mut advantages = vec![0.0; n];
        for segment in segments {
            let end = segment.start + segment.len;
            assert!(end <= n, "segment {segment:?} reaches outside the buffer");
            let mut gae = 0.0;
            for i in (segment.start..end).rev() {
                let t = &self.transitions[i];
                let next_nonterminal = if t.done { 0.0 } else { 1.0 };
                let next_value = if i + 1 < end {
                    self.transitions[i + 1].value
                } else {
                    segment.bootstrap_value
                };
                let delta = t.reward + gamma * next_value * next_nonterminal - t.value;
                gae = delta + gamma * lambda * next_nonterminal * gae;
                advantages[i] = gae;
            }
        }
        let returns = advantages
            .iter()
            .zip(&self.transitions)
            .map(|(a, t)| a + t.value)
            .collect();
        Advantages {
            advantages,
            returns,
        }
    }

    /// Sum of rewards of each completed episode in the buffer.
    #[must_use]
    pub fn episodic_returns(&self) -> Vec<f32> {
        let mut totals = Vec::new();
        let mut acc = 0.0;
        for t in &self.transitions {
            acc += t.reward;
            if t.done {
                totals.push(acc);
                acc = 0.0;
            }
        }
        totals
    }

    /// Sum of rewards of each completed episode, computed per segment so
    /// that one env's unfinished episode tail never bleeds into the next
    /// env's first episode.
    ///
    /// # Panics
    ///
    /// Panics if a segment reaches outside the buffer.
    #[must_use]
    pub fn episodic_returns_segmented(&self, segments: &[Segment]) -> Vec<f32> {
        let mut totals = Vec::new();
        for segment in segments {
            let mut acc = 0.0;
            for t in &self.transitions[segment.start..segment.start + segment.len] {
                acc += t.reward;
                if t.done {
                    totals.push(acc);
                    acc = 0.0;
                }
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(reward: f32, value: f32, done: bool) -> Transition {
        Transition {
            observation: Matrix::zeros(1, 1),
            mask: vec![true],
            action: 0,
            log_prob: 0.0,
            value,
            reward,
            done,
        }
    }

    #[test]
    fn single_step_episode_advantage_is_reward_minus_value() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(2.0, 0.5, true));
        let adv = buffer.compute_advantages(0.99, 0.95, 123.0);
        assert!((adv.advantages[0] - 1.5).abs() < 1e-6);
        assert!((adv.returns[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gae_with_lambda_one_matches_discounted_returns() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(1.0, 0.0, false));
        buffer.push(transition(1.0, 0.0, false));
        buffer.push(transition(1.0, 0.0, true));
        let gamma = 0.9;
        let adv = buffer.compute_advantages(gamma, 1.0, 0.0);
        let expected0 = 1.0 + gamma * (1.0 + gamma);
        assert!((adv.advantages[0] - expected0).abs() < 1e-5);
        assert!((adv.advantages[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_uses_last_value_when_episode_is_unfinished() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(0.0, 0.0, false));
        let adv = buffer.compute_advantages(1.0, 1.0, 10.0);
        assert!((adv.advantages[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn segmented_advantages_match_independent_buffers() {
        // Two env streams appended back to back must yield the same
        // advantages as two separate buffers.
        let stream_a = [transition(1.0, 0.2, false), transition(0.5, 0.1, true)];
        let stream_b = [
            transition(-1.0, 0.3, false),
            transition(2.0, 0.0, false),
            transition(0.0, 0.4, false),
        ];
        let (gamma, lambda) = (0.99, 0.95);
        let mut merged = RolloutBuffer::new();
        for t in stream_a.iter().chain(&stream_b) {
            merged.push(t.clone());
        }
        let segmented = merged.compute_advantages_segmented(
            gamma,
            lambda,
            &[
                Segment {
                    start: 0,
                    len: 2,
                    bootstrap_value: 0.0,
                },
                Segment {
                    start: 2,
                    len: 3,
                    bootstrap_value: 0.7,
                },
            ],
        );
        let mut buffer_a = RolloutBuffer::new();
        stream_a.iter().for_each(|t| buffer_a.push(t.clone()));
        let mut buffer_b = RolloutBuffer::new();
        stream_b.iter().for_each(|t| buffer_b.push(t.clone()));
        let adv_a = buffer_a.compute_advantages(gamma, lambda, 0.0);
        let adv_b = buffer_b.compute_advantages(gamma, lambda, 0.7);
        let expected: Vec<f32> = adv_a
            .advantages
            .iter()
            .chain(&adv_b.advantages)
            .copied()
            .collect();
        assert_eq!(segmented.advantages, expected);
        let expected_returns: Vec<f32> = adv_a
            .returns
            .iter()
            .chain(&adv_b.returns)
            .copied()
            .collect();
        assert_eq!(segmented.returns, expected_returns);
    }

    #[test]
    fn single_segment_matches_the_unsegmented_path() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(1.0, 0.5, false));
        buffer.push(transition(-0.5, 0.2, true));
        buffer.push(transition(0.25, 0.1, false));
        let whole = buffer.compute_advantages(0.9, 0.8, 1.5);
        let segmented = buffer.compute_advantages_segmented(
            0.9,
            0.8,
            &[Segment {
                start: 0,
                len: 3,
                bootstrap_value: 1.5,
            }],
        );
        assert_eq!(whole, segmented);
    }

    #[test]
    fn segmented_episodic_returns_do_not_bleed_across_envs() {
        // env A ends with an unfinished episode; env B starts fresh. The
        // flat accumulator would fold A's tail into B's first episode.
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(1.0, 0.0, true)); // A: episode of 1.0
        buffer.push(transition(5.0, 0.0, false)); // A: unfinished tail
        buffer.push(transition(2.0, 0.0, true)); // B: episode of 2.0
        let segments = [
            Segment {
                start: 0,
                len: 2,
                bootstrap_value: 0.0,
            },
            Segment {
                start: 2,
                len: 1,
                bootstrap_value: 0.0,
            },
        ];
        assert_eq!(buffer.episodic_returns_segmented(&segments), vec![1.0, 2.0]);
        // The flat version reports the blended 7.0 — exactly the bug the
        // segmented variant exists to avoid.
        assert_eq!(buffer.episodic_returns(), vec![1.0, 7.0]);
    }

    #[test]
    fn episodic_returns_split_on_done() {
        let mut buffer = RolloutBuffer::new();
        buffer.push(transition(1.0, 0.0, false));
        buffer.push(transition(2.0, 0.0, true));
        buffer.push(transition(-1.0, 0.0, true));
        assert_eq!(buffer.episodic_returns(), vec![3.0, -1.0]);
        assert_eq!(buffer.len(), 3);
        assert!(!buffer.is_empty());
    }
}
