//! Versioned binary checkpoints for PPO training runs.
//!
//! A [`Checkpoint`] captures everything a [`crate::PpoTrainer`] needs to
//! continue a training run *bit-identically* after a process restart: the
//! [`crate::PpoConfig`], the update counter and accumulated
//! [`crate::TrainingStats`], the complete [`PolicyState`] (all
//! `Linear`/`ConvEncoder` weights, the three Adam optimizer moments and the
//! action-sampling RNG state), and one snapshot per environment (the env's
//! own opaque state bytes plus the observation the next action would be
//! conditioned on). The resume-equals-uninterrupted contract is enforced by
//! `crates/rl/tests/checkpoint.rs`, mirroring the `jobs=N ≡ jobs=1`
//! determinism contract of the suite optimizer.
//!
//! # On-disk format (version 1)
//!
//! Little-endian throughout; `f32` values are stored as their IEEE-754 bit
//! patterns so round-trips are exact. Vectors are a `u64` length followed by
//! the elements; lengths are validated against the remaining input before
//! any allocation.
//!
//! ```text
//! magic    8 bytes  b"CASRLCKP"
//! version  u32      1
//! body     PpoConfig, completed_updates, TrainingStats, PolicyState,
//!          env snapshots
//! trailer  u64      FNV-1a-64 checksum of every preceding byte
//! ```
//!
//! Corrupted, truncated or wrong-version inputs are rejected with a typed
//! [`CheckpointError`] — never a panic.

use std::fmt;
use std::path::Path;

use nn::Matrix;

use crate::policy::{OptimizerState, PolicyState, RngState};
use crate::ppo::{PpoConfig, TrainingStats};

/// The 8-byte magic prefix of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CASRLCKP";

/// The current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be written, read or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The input does not start with [`CHECKPOINT_MAGIC`] — it is not a
    /// checkpoint at all.
    BadMagic,
    /// The input is a checkpoint, but of a format version this build does
    /// not understand.
    UnsupportedVersion(u32),
    /// The input ended before the declared content did.
    Truncated,
    /// The trailing checksum does not match the content — the file was
    /// damaged after being written.
    ChecksumMismatch,
    /// The input decodes structurally but is internally inconsistent
    /// (mismatched weight shapes, impossible lengths, …).
    Corrupt(String),
    /// The environment does not support state snapshots
    /// ([`crate::Env::state_bytes`] returned `None`), so a resumable
    /// checkpoint cannot be taken or applied.
    EnvSnapshotUnsupported,
    /// The environment rejected the checkpointed state
    /// ([`crate::Env::restore_state`] returned `false`) — it was likely
    /// constructed for a different problem instance.
    EnvRejectedState,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::EnvSnapshotUnsupported => {
                write!(f, "environment does not support state snapshots")
            }
            CheckpointError::EnvRejectedState => {
                write!(f, "environment rejected the checkpointed state")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One environment's snapshot inside a [`Checkpoint`]: the env's opaque
/// state bytes (from [`crate::Env::state_bytes`]), the observation the next
/// action would be conditioned on (absent before the first update) and the
/// action-validity mask of that observation.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvCheckpoint {
    /// Opaque environment state, produced and consumed by the env itself.
    pub state: Vec<u8>,
    /// The pending observation, when training was mid-stream.
    pub observation: Option<Matrix>,
    /// Action-validity mask of the pending observation.
    pub mask: Vec<bool>,
}

/// A complete, versioned snapshot of a PPO training run at an update
/// boundary. See the module docs for the serialized layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Training hyperparameters.
    pub config: PpoConfig,
    /// Number of policy updates completed so far.
    pub completed_updates: usize,
    /// Statistics accumulated over the completed updates.
    pub stats: TrainingStats,
    /// Complete policy + optimizer + RNG state.
    pub policy: PolicyState,
    /// One snapshot per environment (one entry for sequential training,
    /// `num_envs` entries for vectorized training).
    pub envs: Vec<EnvCheckpoint>,
}

impl Checkpoint {
    /// Serializes the checkpoint into the version-1 binary format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION);
        encode_config(&mut w, &self.config);
        w.u64(self.completed_updates as u64);
        encode_stats(&mut w, &self.stats);
        encode_policy(&mut w, &self.policy);
        w.u64(self.envs.len() as u64);
        for env in &self.envs {
            w.byte_vec(&env.state);
            match &env.observation {
                Some(obs) => {
                    w.u8(1);
                    w.u64(obs.rows() as u64);
                    w.u64(obs.cols() as u64);
                    w.f32_vec(obs.data());
                }
                None => w.u8(0),
            }
            w.bool_vec(&env.mask);
        }
        let checksum = fnv1a64(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Decodes a checkpoint from bytes.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] on bad magic, unsupported
    /// versions, truncation, checksum mismatch, or any structural
    /// inconsistency. Never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() + 4 + 8 {
            if bytes.len() >= CHECKPOINT_MAGIC.len()
                && bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC
            {
                return Err(CheckpointError::BadMagic);
            }
            return Err(CheckpointError::Truncated);
        }
        if bytes[..CHECKPOINT_MAGIC.len()] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 8);
        let mut checksum_bytes = [0u8; 8];
        checksum_bytes.copy_from_slice(trailer);
        if fnv1a64(content) != u64::from_le_bytes(checksum_bytes) {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut r = Reader::new(&content[CHECKPOINT_MAGIC.len()..]);
        let version = r.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let config = decode_config(&mut r)?;
        let completed_updates = r.usize()?;
        let stats = decode_stats(&mut r)?;
        let policy = decode_policy(&mut r)?;
        let env_count = r.usize()?;
        if env_count > r.remaining() {
            return Err(CheckpointError::Corrupt(format!(
                "impossible env count {env_count}"
            )));
        }
        let mut envs = Vec::with_capacity(env_count);
        for _ in 0..env_count {
            let state = r.byte_vec()?;
            let observation = match r.u8()? {
                0 => None,
                1 => {
                    let rows = r.usize()?;
                    let cols = r.usize()?;
                    let data = r.f32_vec()?;
                    let expected = rows
                        .checked_mul(cols)
                        .ok_or_else(|| CheckpointError::Corrupt("observation shape".into()))?;
                    if data.len() != expected {
                        return Err(CheckpointError::Corrupt(format!(
                            "observation is {rows}x{cols} but carries {} values",
                            data.len()
                        )));
                    }
                    Some(Matrix::from_vec(rows, cols, data))
                }
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "bad observation flag {other}"
                    )))
                }
            };
            let mask = r.bool_vec()?;
            envs.push(EnvCheckpoint {
                state,
                observation,
                mask,
            });
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after content",
                r.remaining()
            )));
        }
        Ok(Checkpoint {
            config,
            completed_updates,
            stats,
            policy,
            envs,
        })
    }

    /// Writes the checkpoint to a file (atomically: written to a sibling
    /// temporary file first, then renamed over the target).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be written.
    pub fn write(&self, path: &Path) -> Result<(), CheckpointError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the file cannot be read, or any
    /// decoding error from [`Checkpoint::from_bytes`].
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

fn encode_config(w: &mut Writer, config: &PpoConfig) {
    w.f32(config.learning_rate);
    w.u8(u8::from(config.anneal_lr));
    w.f32(config.gamma);
    w.f32(config.gae_lambda);
    w.f32(config.clip_coef);
    w.f32(config.ent_coef);
    w.f32(config.vf_coef);
    w.u64(config.rollout_steps as u64);
    w.u64(config.minibatches as u64);
    w.u64(config.update_epochs as u64);
    w.u64(config.total_steps as u64);
    w.u64(config.channels as u64);
    w.u64(config.kernel as u64);
    w.u64(config.seed);
}

fn decode_config(r: &mut Reader<'_>) -> Result<PpoConfig, CheckpointError> {
    Ok(PpoConfig {
        learning_rate: r.f32()?,
        anneal_lr: r.u8()? != 0,
        gamma: r.f32()?,
        gae_lambda: r.f32()?,
        clip_coef: r.f32()?,
        ent_coef: r.f32()?,
        vf_coef: r.f32()?,
        rollout_steps: r.usize()?,
        minibatches: r.usize()?,
        update_epochs: r.usize()?,
        total_steps: r.usize()?,
        channels: r.usize()?,
        kernel: r.usize()?,
        seed: r.u64()?,
    })
}

fn encode_stats(w: &mut Writer, stats: &TrainingStats) {
    w.u64(stats.steps as u64);
    w.f32_vec(&stats.episodic_returns);
    w.f32_vec(&stats.approx_kl);
    w.f32_vec(&stats.entropy);
    w.f32_vec(&stats.policy_loss);
    w.f32_vec(&stats.value_loss);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<TrainingStats, CheckpointError> {
    Ok(TrainingStats {
        steps: r.usize()?,
        episodic_returns: r.f32_vec()?,
        approx_kl: r.f32_vec()?,
        entropy: r.f32_vec()?,
        policy_loss: r.f32_vec()?,
        value_loss: r.f32_vec()?,
    })
}

fn encode_policy(w: &mut Writer, policy: &PolicyState) {
    w.u64(policy.features as u64);
    w.u64(policy.channels as u64);
    w.u64(policy.kernel as u64);
    w.u64(policy.n_actions as u64);
    w.f32_vec(&policy.encoder_weight);
    w.f32_vec(&policy.encoder_bias);
    w.f32_vec(&policy.actor_weight);
    w.f32_vec(&policy.actor_bias);
    w.f32_vec(&policy.critic_weight);
    w.f32_vec(&policy.critic_bias);
    for opt in [&policy.encoder_opt, &policy.actor_opt, &policy.critic_opt] {
        w.f32(opt.learning_rate);
        w.u64(opt.step);
        w.f32_vec(&opt.first_moment);
        w.f32_vec(&opt.second_moment);
    }
    for word in policy.rng.key {
        w.u32(word);
    }
    w.u64(policy.rng.counter);
    for word in policy.rng.nonce {
        w.u32(word);
    }
    for word in policy.rng.buffer {
        w.u32(word);
    }
    w.u32(policy.rng.index);
}

fn decode_policy(r: &mut Reader<'_>) -> Result<PolicyState, CheckpointError> {
    let features = r.usize()?;
    let channels = r.usize()?;
    let kernel = r.usize()?;
    let n_actions = r.usize()?;
    let encoder_weight = r.f32_vec()?;
    let encoder_bias = r.f32_vec()?;
    let actor_weight = r.f32_vec()?;
    let actor_bias = r.f32_vec()?;
    let critic_weight = r.f32_vec()?;
    let critic_bias = r.f32_vec()?;
    let mut opts = Vec::with_capacity(3);
    for _ in 0..3 {
        opts.push(OptimizerState {
            learning_rate: r.f32()?,
            step: r.u64()?,
            first_moment: r.f32_vec()?,
            second_moment: r.f32_vec()?,
        });
    }
    let critic_opt = opts.pop().expect("pushed above");
    let actor_opt = opts.pop().expect("pushed above");
    let encoder_opt = opts.pop().expect("pushed above");
    let mut key = [0u32; 8];
    for word in &mut key {
        *word = r.u32()?;
    }
    let counter = r.u64()?;
    let mut nonce = [0u32; 2];
    for word in &mut nonce {
        *word = r.u32()?;
    }
    let mut buffer = [0u32; 16];
    for word in &mut buffer {
        *word = r.u32()?;
    }
    let index = r.u32()?;
    Ok(PolicyState {
        features,
        channels,
        kernel,
        n_actions,
        encoder_weight,
        encoder_bias,
        actor_weight,
        actor_bias,
        critic_weight,
        critic_bias,
        encoder_opt,
        actor_opt,
        critic_opt,
        rng: RngState {
            key,
            counter,
            nonce,
            buffer,
            index,
        },
    })
}

/// FNV-1a 64-bit hash, the checkpoint trailer checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn f32_vec(&mut self, values: &[f32]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.f32(v);
        }
    }

    fn byte_vec(&mut self, bytes: &[u8]) {
        self.u64(bytes.len() as u64);
        self.bytes(bytes);
    }

    fn bool_vec(&mut self, values: &[bool]) {
        self.u64(values.len() as u64);
        for &v in values {
            self.u8(u8::from(v));
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(bytes))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Corrupt(format!("length {v} overflows")))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a length-prefixed `f32` vector, validating the declared length
    /// against the remaining input before allocating.
    fn f32_vec(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let len = self.usize()?;
        if len > self.remaining() / 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(self.f32()?);
        }
        Ok(values)
    }

    fn byte_vec(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let len = self.usize()?;
        Ok(self.take(len)?.to_vec())
    }

    fn bool_vec(&mut self) -> Result<Vec<bool>, CheckpointError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(CheckpointError::Corrupt(format!("bad bool byte {other}"))),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        let policy = crate::ActorCritic::new(3, 4, 8, 3, 5, 1e-3).state();
        Checkpoint {
            config: PpoConfig::tiny(),
            completed_updates: 2,
            stats: TrainingStats {
                steps: 128,
                episodic_returns: vec![1.0, -2.5, 0.125],
                approx_kl: vec![0.01, 0.02],
                entropy: vec![1.2, 1.1],
                policy_loss: vec![-0.5, -0.25],
                value_loss: vec![0.75, 0.5],
            },
            policy,
            envs: vec![EnvCheckpoint {
                state: vec![9, 8, 7],
                observation: Some(Matrix::from_vec(2, 3, vec![0.5; 6])),
                mask: vec![true, false, true, true, false],
            }],
        }
    }

    #[test]
    fn binary_round_trip_is_exact() {
        let checkpoint = sample_checkpoint();
        let bytes = checkpoint.to_bytes();
        let decoded = Checkpoint::from_bytes(&bytes).expect("round trip");
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Checkpoint::from_bytes(b"not a checkpoint at all, sorry").unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample_checkpoint().to_bytes();
        // Bump the version field and re-seal the checksum so only the
        // version is wrong.
        bytes[8] = 99;
        let content_len = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..content_len]);
        bytes[content_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion(99)),
            "{err}"
        );
    }

    #[test]
    fn every_truncation_point_errors_without_panicking() {
        let bytes = sample_checkpoint().to_bytes();
        for len in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated
                        | CheckpointError::ChecksumMismatch
                        | CheckpointError::Corrupt(_)
                ),
                "prefix of {len} bytes gave {err}"
            );
        }
    }

    #[test]
    fn flipped_bits_fail_the_checksum() {
        let bytes = sample_checkpoint().to_bytes();
        for position in [9, bytes.len() / 2, bytes.len() - 9] {
            let mut damaged = bytes.clone();
            damaged[position] ^= 0x40;
            let err = Checkpoint::from_bytes(&damaged).unwrap_err();
            assert!(
                matches!(err, CheckpointError::ChecksumMismatch),
                "flip at {position} gave {err}"
            );
        }
    }

    #[test]
    fn garbage_bytes_error_cleanly() {
        let mut garbage = CHECKPOINT_MAGIC.to_vec();
        garbage.extend((0u16..4096).map(|i| (i % 251) as u8));
        assert!(Checkpoint::from_bytes(&garbage).is_err());
        assert!(Checkpoint::from_bytes(&[]).is_err());
        assert!(Checkpoint::from_bytes(&[0xFF; 64]).is_err());
    }

    #[test]
    fn file_round_trip_and_missing_file_error() {
        let dir = std::env::temp_dir().join(format!(
            "cuasmrl-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("run.ckpt");
        let checkpoint = sample_checkpoint();
        checkpoint.write(&path).expect("write");
        assert_eq!(Checkpoint::read(&path).expect("read"), checkpoint);
        let missing = Checkpoint::read(&dir.join("absent.ckpt")).unwrap_err();
        assert!(matches!(missing, CheckpointError::Io(_)), "{missing}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
