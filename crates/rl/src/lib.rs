//! Proximal policy optimization with invalid-action masking.
//!
//! This crate implements the RL machinery of the CuAsmRL paper (§3.7): a
//! Gym-like [`Env`] trait that the assembly game implements, a rollout
//! buffer with GAE-λ advantage estimation, a masked actor-critic policy
//! built on the [`nn`] crate, and the clipped-PPO trainer with the default
//! hyperparameters the paper takes from the "37 implementation details"
//! study.
//!
//! # Example
//!
//! Train on any environment implementing [`Env`]:
//!
//! ```no_run
//! use rl::{Env, PpoConfig, PpoTrainer};
//!
//! fn train<E: Env>(env: &mut E) {
//!     let config = PpoConfig::default();
//!     let mut trainer = PpoTrainer::new(config, env.observation_features(), env.action_count());
//!     let stats = trainer.train(env);
//!     println!("final return: {}", stats.final_return(10));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod env;
mod policy;
mod ppo;

pub use buffer::{Advantages, RolloutBuffer, Transition};
pub use env::{Env, Step};
pub use policy::{ActionSample, ActorCritic, Sample, UpdateConfig, UpdateStats};
pub use ppo::{PpoConfig, PpoTrainer, TrainingStats};
