//! Proximal policy optimization with invalid-action masking.
//!
//! This crate implements the RL machinery of the CuAsmRL paper (§3.7): a
//! Gym-like [`Env`] trait that the assembly game implements, a rollout
//! buffer with (per-segment) GAE-λ advantage estimation, a masked
//! actor-critic policy built on the [`nn`] crate, a [`VecEnv`] that steps N
//! environments in parallel on worker threads, and the clipped-PPO trainer
//! with the default hyperparameters the paper takes from the "37
//! implementation details" study.
//!
//! Rollout collection is the hot path — every assembly-game step re-measures
//! a schedule on the simulator — so [`PpoTrainer::train_vec`] fans env
//! transitions out over a [`VecEnv`] worker pool while sampling actions in
//! env order on the caller's thread. For a fixed seed the results are
//! bit-identical for any worker count.
//!
//! Training runs are checkpointable: [`PpoTrainer::save_checkpoint`] (and
//! its vectorized sibling) serializes the complete policy weights, Adam
//! moments, RNG stream and environment snapshots into a versioned binary
//! [`Checkpoint`], and [`PpoTrainer::resume_from`] continues the run
//! bit-identically to one that was never interrupted — enforced by
//! `tests/checkpoint.rs`.
//!
//! The policy is shape-agnostic: [`Env::observation_features`] defines the
//! row width, and the assembly game uses that freedom to append normalized
//! GPU-architecture features to every observation row, so one agent can
//! condition on which `gpusim::ArchSpec` backend it is optimizing for.
//!
//! # Example
//!
//! Train on any environment implementing [`Env`]:
//!
//! ```no_run
//! use rl::{Env, PpoConfig, PpoTrainer};
//!
//! fn train<E: Env>(env: &mut E) {
//!     let config = PpoConfig::default();
//!     let mut trainer = PpoTrainer::new(config, env.observation_features(), env.action_count());
//!     let stats = trainer.train(env);
//!     println!("final return: {}", stats.final_return(10));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod cancel;
mod checkpoint;
mod env;
mod policy;
mod ppo;
mod vecenv;

pub use buffer::{Advantages, RolloutBuffer, Segment, Transition};
pub use cancel::CancelToken;
pub use checkpoint::{
    Checkpoint, CheckpointError, EnvCheckpoint, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use env::{test_envs, Env, Step};
pub use policy::{
    ActionSample, ActorCritic, OptimizerState, PolicyState, RngState, Sample, UpdateConfig,
    UpdateStats,
};
pub use ppo::{PpoConfig, PpoTrainer, Rollout, TrainingStats};
pub use vecenv::{EnvState, ObservationBatch, VecAction, VecEnv, VecStep};
