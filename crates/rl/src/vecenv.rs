//! Vectorized environments: N [`Env`] instances stepped in parallel on a
//! pool of worker threads.
//!
//! PPO's dominant cost in this reproduction is environment interaction —
//! every step of the assembly game re-measures a SASS schedule on the
//! simulator. [`VecEnv`] amortizes that cost by fanning env transitions out
//! over `workers` OS threads (plain `std::thread` + channels, no external
//! dependencies) while keeping the *semantics* of a synchronous vector of
//! environments:
//!
//! * envs are stepped in lockstep — one action per env per [`VecEnv::step`];
//! * an env that finishes an episode is reset immediately by its worker and
//!   reports the fresh observation alongside the terminal transition
//!   (standard auto-reset semantics);
//! * results are aggregated **in env order**, so for deterministic
//!   environments the observable behaviour is bit-identical regardless of
//!   the worker count — `workers = 4` replays exactly what `workers = 1`
//!   would produce. The determinism contract is exercised by the
//!   `vecenv_determinism` tests.
//!
//! Observations and masks can be stacked into batched [`Matrix`] inputs via
//! [`VecEnv::batch`], which is what [`crate::PpoTrainer::collect_rollouts`]
//! feeds the policy.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use nn::Matrix;

use crate::env::Env;

/// The per-env command of one vectorized step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecAction {
    /// Apply the given action.
    Step(usize),
    /// Abort the episode and reset (used when every action is masked,
    /// following §3.5 of the paper).
    Reset,
}

/// The current state of one env slot: the observation the next action will
/// be conditioned on and its validity mask.
#[derive(Debug, Clone)]
pub struct EnvState {
    /// Current observation.
    pub observation: Matrix,
    /// Action-validity mask for `observation`.
    pub mask: Vec<bool>,
}

/// The per-env result of one vectorized step.
#[derive(Debug, Clone)]
pub struct VecStep {
    /// Reward of the applied action (0 for [`VecAction::Reset`]).
    pub reward: f32,
    /// Whether the step terminated the episode.
    pub done: bool,
    /// Whether a real action was applied (false for [`VecAction::Reset`]).
    pub stepped: bool,
}

/// Observations and masks of all envs stacked into dense matrices, the
/// batched network input of one vectorized decision.
#[derive(Debug, Clone)]
pub struct ObservationBatch {
    /// All observations stacked row-wise: `offsets[i]..offsets[i + 1]` are
    /// the rows of env `i`.
    pub observations: Matrix,
    /// Row offsets per env (`num_envs + 1` entries).
    pub offsets: Vec<usize>,
    /// Masks stacked as one row per env (`num_envs x action_count`,
    /// `1.0` = legal).
    pub masks: Matrix,
}

impl ObservationBatch {
    /// Number of envs in the batch.
    #[must_use]
    pub fn num_envs(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// A copy of env `i`'s observation rows.
    #[must_use]
    pub fn observation(&self, i: usize) -> Matrix {
        let (start, end) = (self.offsets[i], self.offsets[i + 1]);
        let cols = self.observations.cols();
        let mut data = Vec::with_capacity((end - start) * cols);
        for row in start..end {
            data.extend_from_slice(self.observations.row(row));
        }
        Matrix::from_vec(end - start, cols, data)
    }

    /// Env `i`'s mask as booleans.
    #[must_use]
    pub fn mask(&self, i: usize) -> Vec<bool> {
        self.masks.row(i).iter().map(|&v| v > 0.5).collect()
    }
}

enum Request {
    Reset(usize),
    Step(usize, usize),
    /// Capture the env's checkpoint state; replied to on the state channel.
    Snapshot(usize),
    /// Adopt previously captured state; replied to on the state channel.
    Restore(usize, Vec<u8>),
}

/// Reply to a [`Request::Snapshot`] or [`Request::Restore`].
struct StateReply {
    slot: usize,
    /// Snapshot bytes (`Snapshot` requests on envs that support snapshots).
    state: Option<Vec<u8>>,
    /// Whether the operation succeeded.
    ok: bool,
}

struct Response {
    slot: usize,
    observation: Matrix,
    mask: Vec<bool>,
    reward: f32,
    done: bool,
    stepped: bool,
}

/// A vector of environments stepped in parallel by worker threads.
pub struct VecEnv<E: Env + Send + 'static> {
    requests: Vec<Sender<Request>>,
    responses: Receiver<Response>,
    state_replies: Receiver<StateReply>,
    handles: Vec<JoinHandle<()>>,
    /// Which worker owns each env slot.
    assignment: Vec<usize>,
    states: Vec<EnvState>,
    action_count: usize,
    features: usize,
    _marker: std::marker::PhantomData<E>,
}

impl<E: Env + Send + 'static> VecEnv<E> {
    /// Spawns `workers` threads and distributes `envs` round-robin across
    /// them. All envs must agree on `action_count` and
    /// `observation_features`.
    ///
    /// # Panics
    ///
    /// Panics if `envs` is empty or the envs are not homogeneous.
    #[must_use]
    pub fn new(envs: Vec<E>, workers: usize) -> Self {
        assert!(!envs.is_empty(), "VecEnv requires at least one env");
        let action_count = envs[0].action_count();
        let features = envs[0].observation_features();
        for env in &envs {
            assert_eq!(
                env.action_count(),
                action_count,
                "heterogeneous action counts"
            );
            assert_eq!(
                env.observation_features(),
                features,
                "heterogeneous observations"
            );
        }
        let n = envs.len();
        let workers = workers.clamp(1, n);
        let assignment: Vec<usize> = (0..n).map(|slot| slot % workers).collect();

        let (response_tx, responses) = channel::<Response>();
        let (state_tx, state_replies) = channel::<StateReply>();
        let mut requests = Vec::with_capacity(workers);
        let mut shards: Vec<Vec<(usize, E)>> = (0..workers).map(|_| Vec::new()).collect();
        for (slot, env) in envs.into_iter().enumerate() {
            shards[slot % workers].push((slot, env));
        }
        let mut handles = Vec::with_capacity(workers);
        for shard in shards {
            let (tx, rx) = channel::<Request>();
            requests.push(tx);
            let out = response_tx.clone();
            let state_out = state_tx.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(shard, &rx, &out, &state_out);
            }));
        }
        drop(response_tx);
        drop(state_tx);

        let states = vec![
            EnvState {
                observation: Matrix::zeros(0, features),
                mask: vec![false; action_count],
            };
            n
        ];
        let mut venv = VecEnv {
            requests,
            responses,
            state_replies,
            handles,
            assignment,
            states,
            action_count,
            features,
            _marker: std::marker::PhantomData,
        };
        venv.reset_all();
        venv
    }

    /// Number of environments.
    #[must_use]
    pub fn num_envs(&self) -> usize {
        self.states.len()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.requests.len()
    }

    /// Per-env action count (identical across envs).
    #[must_use]
    pub fn action_count(&self) -> usize {
        self.action_count
    }

    /// Per-env observation feature count (identical across envs).
    #[must_use]
    pub fn observation_features(&self) -> usize {
        self.features
    }

    /// Current per-env states, in env order.
    #[must_use]
    pub fn states(&self) -> &[EnvState] {
        &self.states
    }

    /// Resets every env and returns the fresh states.
    pub fn reset_all(&mut self) -> &[EnvState] {
        for slot in 0..self.num_envs() {
            self.send(Request::Reset(slot));
        }
        self.collect(self.num_envs());
        &self.states
    }

    /// Applies one [`VecAction`] per env in lockstep and returns the per-env
    /// results in env order. Terminal episodes are auto-reset: after a
    /// `done` step, [`VecEnv::states`] already holds the next episode's
    /// initial observation.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len() != num_envs()` or a worker thread died.
    pub fn step(&mut self, actions: &[VecAction]) -> Vec<VecStep> {
        assert_eq!(
            actions.len(),
            self.num_envs(),
            "one action per env required"
        );
        for (slot, action) in actions.iter().enumerate() {
            match action {
                VecAction::Step(a) => self.send(Request::Step(slot, *a)),
                VecAction::Reset => self.send(Request::Reset(slot)),
            }
        }
        self.collect(self.num_envs())
    }

    /// Stacks the current observations and masks into batched matrices.
    #[must_use]
    pub fn batch(&self) -> ObservationBatch {
        let mut offsets = Vec::with_capacity(self.num_envs() + 1);
        offsets.push(0);
        let mut rows = 0;
        for state in &self.states {
            rows += state.observation.rows();
            offsets.push(rows);
        }
        let mut data = Vec::with_capacity(rows * self.features);
        for state in &self.states {
            data.extend_from_slice(state.observation.data());
        }
        let mut mask_data = Vec::with_capacity(self.num_envs() * self.action_count);
        for state in &self.states {
            mask_data.extend(state.mask.iter().map(|&m| if m { 1.0 } else { 0.0 }));
        }
        ObservationBatch {
            observations: Matrix::from_vec(rows, self.features, data),
            offsets,
            masks: Matrix::from_vec(self.num_envs(), self.action_count, mask_data),
        }
    }

    /// Captures every env's checkpoint state (via [`Env::state_bytes`]) in
    /// env order, or `None` when any env does not support snapshots. The
    /// observations and masks that belong to these states are available from
    /// [`VecEnv::states`].
    #[must_use]
    pub fn snapshot_env_states(&mut self) -> Option<Vec<Vec<u8>>> {
        for slot in 0..self.num_envs() {
            self.send(Request::Snapshot(slot));
        }
        let mut states: Vec<Option<Vec<u8>>> = vec![None; self.num_envs()];
        for _ in 0..self.num_envs() {
            let reply = self
                .state_replies
                .recv()
                .expect("VecEnv worker thread died mid-snapshot");
            states[reply.slot] = reply.state;
        }
        states.into_iter().collect()
    }

    /// Restores previously captured env states (one per env, in env order)
    /// together with the matching per-env observations and masks, leaving
    /// the vector of envs bit-identical to the one the snapshot was taken
    /// from. Returns `false` if any env rejects its state bytes; in that
    /// case every env that had already adopted its new state is rolled back
    /// to the state it held before the call, so a failed restore leaves the
    /// whole vector observably unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `num_envs()` or a worker
    /// thread died.
    pub fn restore_env_states(&mut self, env_states: &[Vec<u8>], states: &[EnvState]) -> bool {
        assert_eq!(env_states.len(), self.num_envs(), "one state per env");
        assert_eq!(states.len(), self.num_envs(), "one observation per env");
        // Capture the pre-restore states so a partial failure can be rolled
        // back (envs that cannot snapshot also reject restores, so a `None`
        // here means nothing below will change state anyway).
        let rollback = self.snapshot_env_states();
        let apply = |venv: &mut Self, env_states: &[Vec<u8>]| -> Vec<bool> {
            for (slot, bytes) in env_states.iter().enumerate() {
                venv.send(Request::Restore(slot, bytes.clone()));
            }
            let mut applied = vec![false; venv.num_envs()];
            for _ in 0..venv.num_envs() {
                let reply = venv
                    .state_replies
                    .recv()
                    .expect("VecEnv worker thread died mid-restore");
                applied[reply.slot] = reply.ok;
            }
            applied
        };
        let applied = apply(self, env_states);
        if applied.iter().all(|&ok| ok) {
            self.states = states.to_vec();
            return true;
        }
        if let Some(rollback) = rollback {
            let restored = apply(self, &rollback);
            debug_assert!(
                applied
                    .iter()
                    .zip(&restored)
                    .all(|(&went, &back)| !went || back),
                "every env that adopted the new state must accept its rollback"
            );
        }
        false
    }

    fn send(&self, request: Request) {
        let slot = match request {
            Request::Reset(slot)
            | Request::Step(slot, _)
            | Request::Snapshot(slot)
            | Request::Restore(slot, _) => slot,
        };
        self.requests[self.assignment[slot]]
            .send(request)
            .expect("VecEnv worker thread died");
    }

    /// Receives `count` responses and folds them into `states`, returning
    /// the per-env step results ordered by env slot.
    fn collect(&mut self, count: usize) -> Vec<VecStep> {
        let mut steps: Vec<Option<VecStep>> = vec![None; self.num_envs()];
        for _ in 0..count {
            let response = self
                .responses
                .recv()
                .expect("VecEnv worker thread died mid-step");
            let slot = response.slot;
            debug_assert_eq!(response.mask.len(), self.action_count);
            self.states[slot] = EnvState {
                observation: response.observation,
                mask: response.mask,
            };
            steps[slot] = Some(VecStep {
                reward: response.reward,
                done: response.done,
                stepped: response.stepped,
            });
        }
        steps
            .into_iter()
            .map(|s| s.expect("every env must answer each lockstep round"))
            .collect()
    }
}

impl<E: Env + Send + 'static> Drop for VecEnv<E> {
    fn drop(&mut self) {
        self.requests.clear(); // Closing the channels stops the workers.
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<E: Env>(
    mut envs: Vec<(usize, E)>,
    requests: &Receiver<Request>,
    responses: &Sender<Response>,
    state_replies: &Sender<StateReply>,
) {
    while let Ok(request) = requests.recv() {
        let response = match request {
            Request::Snapshot(slot) => {
                let env = owned_env(&mut envs, slot);
                let state = env.state_bytes();
                let ok = state.is_some();
                if state_replies.send(StateReply { slot, state, ok }).is_err() {
                    return;
                }
                continue;
            }
            Request::Restore(slot, bytes) => {
                let env = owned_env(&mut envs, slot);
                let ok = env.restore_state(&bytes);
                if state_replies
                    .send(StateReply {
                        slot,
                        state: None,
                        ok,
                    })
                    .is_err()
                {
                    return;
                }
                continue;
            }
            Request::Reset(slot) => {
                let env = owned_env(&mut envs, slot);
                let observation = env.reset();
                let mask = env.action_mask();
                Response {
                    slot,
                    observation,
                    mask,
                    reward: 0.0,
                    done: false,
                    stepped: false,
                }
            }
            Request::Step(slot, action) => {
                let env = owned_env(&mut envs, slot);
                let step = env.step(action);
                let (observation, mask) = if step.done {
                    // Auto-reset: deliver the next episode's initial state
                    // together with the terminal transition.
                    let observation = env.reset();
                    let mask = env.action_mask();
                    (observation, mask)
                } else {
                    let mask = env.action_mask();
                    (step.observation, mask)
                };
                Response {
                    slot,
                    observation,
                    mask,
                    reward: step.reward,
                    done: step.done,
                    stepped: true,
                }
            }
        };
        if responses.send(response).is_err() {
            return; // The VecEnv was dropped.
        }
    }
}

fn owned_env<E: Env>(envs: &mut [(usize, E)], slot: usize) -> &mut E {
    envs.iter_mut()
        .find_map(|(s, env)| (*s == slot).then_some(env))
        .expect("request routed to the worker owning the env")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::BanditEnv;

    fn bandits(n: usize, horizon: usize) -> Vec<BanditEnv> {
        (0..n).map(|_| BanditEnv::new(horizon)).collect()
    }

    #[test]
    fn lockstep_round_trips_all_envs() {
        let mut venv = VecEnv::new(bandits(4, 3), 2);
        assert_eq!(venv.num_envs(), 4);
        assert_eq!(venv.workers(), 2);
        assert_eq!(venv.action_count(), 3);
        assert_eq!(venv.observation_features(), 3);
        let steps = venv.step(&[VecAction::Step(1); 4]);
        assert!(steps
            .iter()
            .all(|s| s.stepped && s.reward == 1.0 && !s.done));
        // Mixed commands: resets yield no reward.
        let steps = venv.step(&[
            VecAction::Step(0),
            VecAction::Reset,
            VecAction::Step(1),
            VecAction::Reset,
        ]);
        assert_eq!(steps[0].reward, -1.0);
        assert!(!steps[1].stepped);
        assert_eq!(steps[2].reward, 1.0);
    }

    #[test]
    fn auto_reset_restarts_episodes() {
        let mut venv = VecEnv::new(bandits(2, 2), 1);
        venv.step(&[VecAction::Step(1); 2]);
        let steps = venv.step(&[VecAction::Step(1); 2]);
        assert!(steps.iter().all(|s| s.done));
        // After auto-reset the env accepts a fresh episode of full length.
        let steps = venv.step(&[VecAction::Step(1); 2]);
        assert!(steps.iter().all(|s| !s.done));
    }

    #[test]
    fn batch_stacks_observations_and_masks() {
        let venv = VecEnv::new(bandits(3, 2), 3);
        let batch = venv.batch();
        assert_eq!(batch.num_envs(), 3);
        assert_eq!(batch.observations.rows(), 3 * 4);
        assert_eq!(batch.observations.cols(), 3);
        assert_eq!(batch.offsets, vec![0, 4, 8, 12]);
        assert_eq!(batch.masks.rows(), 3);
        for i in 0..3 {
            assert_eq!(batch.observation(i), venv.states()[i].observation);
            assert_eq!(batch.mask(i), vec![true, true, false]);
        }
    }

    #[test]
    fn env_states_snapshot_and_restore_across_vecenvs() {
        let mut venv = VecEnv::new(bandits(3, 4), 2);
        venv.step(&[VecAction::Step(1); 3]);
        venv.step(&[VecAction::Step(0); 3]);
        let env_states = venv.snapshot_env_states().expect("bandits snapshot");
        let states = venv.states().to_vec();
        // A freshly constructed vector adopts the snapshot and continues
        // identically.
        let mut restored = VecEnv::new(bandits(3, 4), 3);
        assert!(restored.restore_env_states(&env_states, &states));
        let a = venv.step(&[VecAction::Step(1); 3]);
        let b = restored.step(&[VecAction::Step(1); 3]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.reward, y.reward);
            assert_eq!(x.done, y.done);
        }
        // A vector built for a different problem instance refuses the state.
        let mut mismatched = VecEnv::new(bandits(3, 9), 1);
        assert!(!mismatched.restore_env_states(&env_states, &states));
    }

    #[test]
    fn partially_rejected_restore_rolls_every_env_back() {
        let mut source = VecEnv::new(bandits(2, 4), 1);
        source.step(&[VecAction::Step(1); 2]);
        source.step(&[VecAction::Step(1); 2]);
        let env_states = source.snapshot_env_states().expect("snapshot");
        let states = source.states().to_vec();
        // env 0 matches the snapshot's horizon and would adopt it; env 1
        // does not and rejects. The whole restore must fail AND leave env 0
        // exactly where it was (2 steps from done, not 2 steps *taken*).
        let mut mixed = VecEnv::new(vec![BanditEnv::new(4), BanditEnv::new(9)], 2);
        mixed.step(&[VecAction::Step(1); 2]);
        assert!(!mixed.restore_env_states(&env_states, &states));
        // Had env 0 kept the snapshot state (t = 2 of 4), it would finish
        // after 2 more steps; from its true state (t = 1 of 4) it needs 3.
        let results = mixed.step(&[VecAction::Step(1); 2]);
        assert!(!results[0].done);
        let results = mixed.step(&[VecAction::Step(1); 2]);
        assert!(
            !results[0].done,
            "env 0 was not rolled back after the failed restore"
        );
        let results = mixed.step(&[VecAction::Step(1); 2]);
        assert!(results[0].done);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let run = |workers: usize| -> Vec<(f32, bool)> {
            let mut venv = VecEnv::new(bandits(5, 3), workers);
            let mut log = Vec::new();
            for round in 0..7 {
                let action = if round % 2 == 0 { 1 } else { 0 };
                for step in venv.step(&[VecAction::Step(action); 5]) {
                    log.push((step.reward, step.done));
                }
            }
            log
        };
        let single = run(1);
        assert_eq!(run(3), single);
        assert_eq!(run(5), single);
    }
}
