//! Proximal policy optimization (§3.7).
//!
//! The default hyperparameters follow the large-scale PPO implementation
//! study the paper cites (Huang et al., "The 37 Implementation Details of
//! Proximal Policy Optimization"): learning rate 2.5e-4 with annealing,
//! γ = 0.99, GAE-λ = 0.95, clip 0.2, 4 update epochs over 4 minibatches,
//! entropy coefficient 0.01 and value coefficient 0.5. The same setting is
//! used for all kernels (§3.7), and §5.5 sweeps the learning rate and batch
//! size around it.

use serde::{Deserialize, Serialize};

use crate::buffer::{RolloutBuffer, Transition};
use crate::env::Env;
use crate::policy::{ActorCritic, Sample, UpdateConfig};

/// PPO hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Linearly anneal the learning rate to zero over training.
    pub anneal_lr: bool,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
    /// PPO clipping coefficient ε.
    pub clip_coef: f32,
    /// Entropy bonus coefficient.
    pub ent_coef: f32,
    /// Value loss coefficient.
    pub vf_coef: f32,
    /// Environment steps collected per policy update (the training batch
    /// size swept in Figure 8).
    pub rollout_steps: usize,
    /// Number of minibatches per epoch.
    pub minibatches: usize,
    /// Number of epochs over each rollout.
    pub update_epochs: usize,
    /// Total environment steps to train for.
    pub total_steps: usize,
    /// Convolutional encoder output channels.
    pub channels: usize,
    /// Convolutional encoder window (instructions).
    pub kernel: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            learning_rate: 2.5e-4,
            anneal_lr: true,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_coef: 0.2,
            ent_coef: 0.01,
            vf_coef: 0.5,
            rollout_steps: 64,
            minibatches: 4,
            update_epochs: 4,
            total_steps: 15_000,
            channels: 32,
            kernel: 5,
            seed: 0,
        }
    }
}

impl PpoConfig {
    /// A configuration small enough for unit tests and examples.
    #[must_use]
    pub fn tiny() -> Self {
        PpoConfig {
            learning_rate: 1e-2,
            anneal_lr: false,
            rollout_steps: 32,
            total_steps: 512,
            channels: 8,
            kernel: 3,
            ..PpoConfig::default()
        }
    }
}

/// Per-update training statistics, the time series plotted in Figures 8
/// and 12 of the paper.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingStats {
    /// Environment steps completed.
    pub steps: usize,
    /// Episodic returns in completion order.
    pub episodic_returns: Vec<f32>,
    /// Approximate KL divergence per update.
    pub approx_kl: Vec<f32>,
    /// Mean policy entropy per update.
    pub entropy: Vec<f32>,
    /// Mean policy loss per update.
    pub policy_loss: Vec<f32>,
    /// Mean value loss per update.
    pub value_loss: Vec<f32>,
}

impl TrainingStats {
    /// Mean of the last `n` episodic returns (the "converged" return).
    #[must_use]
    pub fn final_return(&self, n: usize) -> f32 {
        if self.episodic_returns.is_empty() {
            return 0.0;
        }
        let tail = &self.episodic_returns[self.episodic_returns.len().saturating_sub(n)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// The PPO trainer: owns the policy and runs collect/update cycles against
/// an environment.
#[derive(Debug, Clone)]
pub struct PpoTrainer {
    config: PpoConfig,
    policy: ActorCritic,
}

impl PpoTrainer {
    /// Creates a trainer for an environment with `features` observation
    /// columns and `n_actions` actions.
    #[must_use]
    pub fn new(config: PpoConfig, features: usize, n_actions: usize) -> Self {
        let policy = ActorCritic::new(
            config.seed,
            features,
            config.channels,
            config.kernel,
            n_actions,
            config.learning_rate,
        );
        PpoTrainer { config, policy }
    }

    /// The training configuration.
    #[must_use]
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// The current policy.
    #[must_use]
    pub fn policy(&self) -> &ActorCritic {
        &self.policy
    }

    /// Mutable access to the policy (e.g. to reseed it for inference).
    pub fn policy_mut(&mut self) -> &mut ActorCritic {
        &mut self.policy
    }

    /// Consumes the trainer and returns the trained policy.
    #[must_use]
    pub fn into_policy(self) -> ActorCritic {
        self.policy
    }

    /// Trains against `env` until `total_steps` environment steps have been
    /// collected, returning the training statistics.
    pub fn train<E: Env>(&mut self, env: &mut E) -> TrainingStats {
        let mut stats = TrainingStats::default();
        let mut observation = env.reset();
        let total_updates = (self.config.total_steps / self.config.rollout_steps).max(1);
        for update in 0..total_updates {
            if self.config.anneal_lr {
                let frac = 1.0 - update as f32 / total_updates as f32;
                self.policy
                    .set_learning_rate(self.config.learning_rate * frac.max(0.05));
            }
            let mut buffer = RolloutBuffer::new();
            while buffer.len() < self.config.rollout_steps {
                let mask = env.action_mask();
                let sample = self.policy.act(&observation, &mask);
                let Some(action) = sample.action else {
                    // No valid action: the episode terminates immediately
                    // (§3.5: "if no actions are available, the episode is
                    // terminated immediately").
                    observation = env.reset();
                    continue;
                };
                let step = env.step(action);
                buffer.push(Transition {
                    observation: observation.clone(),
                    mask,
                    action,
                    log_prob: sample.log_prob,
                    value: sample.value,
                    reward: step.reward,
                    done: step.done,
                });
                observation = if step.done {
                    env.reset()
                } else {
                    step.observation
                };
                stats.steps += 1;
            }
            stats
                .episodic_returns
                .extend(buffer.episodic_returns().iter().copied());

            let last_value = self.policy.value(&observation);
            let adv = buffer.compute_advantages(self.config.gamma, self.config.gae_lambda, last_value);
            // Normalize advantages over the rollout.
            let mean = adv.advantages.iter().sum::<f32>() / adv.advantages.len() as f32;
            let var = adv
                .advantages
                .iter()
                .map(|a| (a - mean) * (a - mean))
                .sum::<f32>()
                / adv.advantages.len() as f32;
            let std = var.sqrt().max(1e-6);
            let normalized: Vec<f32> = adv.advantages.iter().map(|a| (a - mean) / std).collect();

            let update_config = UpdateConfig {
                clip_coef: self.config.clip_coef,
                ent_coef: self.config.ent_coef,
                vf_coef: self.config.vf_coef,
            };
            let batch = buffer.transitions();
            let minibatch_size = (batch.len() / self.config.minibatches.max(1)).max(1);
            let mut kl_acc = 0.0;
            let mut entropy_acc = 0.0;
            let mut policy_loss_acc = 0.0;
            let mut value_loss_acc = 0.0;
            let mut update_count = 0.0;
            for _epoch in 0..self.config.update_epochs {
                for chunk_start in (0..batch.len()).step_by(minibatch_size) {
                    let chunk_end = (chunk_start + minibatch_size).min(batch.len());
                    let samples: Vec<Sample<'_>> = (chunk_start..chunk_end)
                        .map(|i| Sample {
                            observation: &batch[i].observation,
                            mask: &batch[i].mask,
                            action: batch[i].action,
                            old_log_prob: batch[i].log_prob,
                            advantage: normalized[i],
                            ret: adv.returns[i],
                        })
                        .collect();
                    let update_stats = self.policy.update_minibatch(&samples, &update_config);
                    kl_acc += update_stats.approx_kl;
                    entropy_acc += update_stats.entropy;
                    policy_loss_acc += update_stats.policy_loss;
                    value_loss_acc += update_stats.value_loss;
                    update_count += 1.0;
                }
            }
            if update_count > 0.0 {
                stats.approx_kl.push(kl_acc / update_count);
                stats.entropy.push(entropy_acc / update_count);
                stats.policy_loss.push(policy_loss_acc / update_count);
                stats.value_loss.push(value_loss_acc / update_count);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::BanditEnv;

    #[test]
    fn ppo_learns_the_rewarding_action_on_a_bandit() {
        let mut env = BanditEnv::new(8);
        let config = PpoConfig {
            total_steps: 2048,
            rollout_steps: 64,
            learning_rate: 2e-2,
            ent_coef: 0.001,
            ..PpoConfig::tiny()
        };
        let mut trainer = PpoTrainer::new(config, env.observation_features(), env.action_count());
        let stats = trainer.train(&mut env);
        assert!(stats.steps >= 2048);
        assert!(!stats.episodic_returns.is_empty());
        // Early episodes are near 0 on average (random ±1); after training
        // the agent should consistently pick the +1 action (return ≈ 8).
        let last = stats.final_return(5);
        assert!(
            last > 4.0,
            "expected the trained policy to prefer the rewarding action, got {last}"
        );
        // The greedy policy picks the rewarding action.
        let obs = env.reset();
        let greedy = trainer.policy().act_greedy(&obs, &env.action_mask());
        assert_eq!(greedy, Some(1));
    }

    #[test]
    fn training_statistics_are_recorded_per_update() {
        let mut env = BanditEnv::new(4);
        let config = PpoConfig {
            total_steps: 256,
            rollout_steps: 64,
            ..PpoConfig::tiny()
        };
        let mut trainer = PpoTrainer::new(config, env.observation_features(), env.action_count());
        let stats = trainer.train(&mut env);
        assert_eq!(stats.approx_kl.len(), 256 / 64);
        assert_eq!(stats.entropy.len(), stats.approx_kl.len());
        assert!(stats.entropy.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn default_hyperparameters_match_the_study() {
        let config = PpoConfig::default();
        assert_eq!(config.learning_rate, 2.5e-4);
        assert_eq!(config.clip_coef, 0.2);
        assert_eq!(config.gamma, 0.99);
        assert_eq!(config.gae_lambda, 0.95);
        assert_eq!(config.update_epochs, 4);
        assert_eq!(config.minibatches, 4);
    }

    #[test]
    fn final_return_handles_empty_history() {
        assert_eq!(TrainingStats::default().final_return(5), 0.0);
    }
}
