//! Proximal policy optimization (§3.7).
//!
//! The default hyperparameters follow the large-scale PPO implementation
//! study the paper cites (Huang et al., "The 37 Implementation Details of
//! Proximal Policy Optimization"): learning rate 2.5e-4 with annealing,
//! γ = 0.99, GAE-λ = 0.95, clip 0.2, 4 update epochs over 4 minibatches,
//! entropy coefficient 0.01 and value coefficient 0.5. The same setting is
//! used for all kernels (§3.7), and §5.5 sweeps the learning rate and batch
//! size around it.

use std::path::Path;

use nn::Matrix;
use serde::{Deserialize, Serialize};

use crate::buffer::{Advantages, RolloutBuffer, Segment, Transition};
use crate::cancel::CancelToken;
use crate::checkpoint::{Checkpoint, CheckpointError, EnvCheckpoint};
use crate::env::Env;
use crate::policy::{ActorCritic, Sample, UpdateConfig};
use crate::vecenv::{EnvState, VecAction, VecEnv};

/// PPO hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Linearly anneal the learning rate to zero over training.
    pub anneal_lr: bool,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE λ.
    pub gae_lambda: f32,
    /// PPO clipping coefficient ε.
    pub clip_coef: f32,
    /// Entropy bonus coefficient.
    pub ent_coef: f32,
    /// Value loss coefficient.
    pub vf_coef: f32,
    /// Environment steps collected per policy update (the training batch
    /// size swept in Figure 8).
    pub rollout_steps: usize,
    /// Number of minibatches per epoch.
    pub minibatches: usize,
    /// Number of epochs over each rollout.
    pub update_epochs: usize,
    /// Total environment steps to train for.
    pub total_steps: usize,
    /// Convolutional encoder output channels.
    pub channels: usize,
    /// Convolutional encoder window (instructions).
    pub kernel: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            learning_rate: 2.5e-4,
            anneal_lr: true,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_coef: 0.2,
            ent_coef: 0.01,
            vf_coef: 0.5,
            rollout_steps: 64,
            minibatches: 4,
            update_epochs: 4,
            total_steps: 15_000,
            channels: 32,
            kernel: 5,
            seed: 0,
        }
    }
}

impl PpoConfig {
    /// A configuration small enough for unit tests and examples.
    #[must_use]
    pub fn tiny() -> Self {
        PpoConfig {
            learning_rate: 1e-2,
            anneal_lr: false,
            rollout_steps: 32,
            total_steps: 512,
            channels: 8,
            kernel: 3,
            ..PpoConfig::default()
        }
    }
}

/// Per-update training statistics, the time series plotted in Figures 8
/// and 12 of the paper.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingStats {
    /// Environment steps completed.
    pub steps: usize,
    /// Episodic returns in completion order.
    pub episodic_returns: Vec<f32>,
    /// Approximate KL divergence per update.
    pub approx_kl: Vec<f32>,
    /// Mean policy entropy per update.
    pub entropy: Vec<f32>,
    /// Mean policy loss per update.
    pub policy_loss: Vec<f32>,
    /// Mean value loss per update.
    pub value_loss: Vec<f32>,
}

impl TrainingStats {
    /// Mean of the last `n` episodic returns (the "converged" return).
    #[must_use]
    pub fn final_return(&self, n: usize) -> f32 {
        if self.episodic_returns.is_empty() {
            return 0.0;
        }
        let tail = &self.episodic_returns[self.episodic_returns.len().saturating_sub(n)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

/// A batched rollout collected from a [`VecEnv`]: each env's transitions
/// form one contiguous [`Segment`] of the buffer, carrying its own GAE
/// bootstrap value.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// The collected transitions, grouped per env in env order.
    pub buffer: RolloutBuffer,
    /// Per-env segments of `buffer`.
    pub segments: Vec<Segment>,
}

/// The PPO trainer: owns the policy and runs collect/update cycles against
/// an environment.
///
/// Training is resumable: the trainer tracks how many updates it has
/// completed and accumulates its [`TrainingStats`] internally, so a run can
/// be advanced in slices with [`PpoTrainer::train_updates`] /
/// [`PpoTrainer::train_vec_updates`], checkpointed at any update boundary
/// with [`PpoTrainer::save_checkpoint`] and continued in a fresh process via
/// [`PpoTrainer::resume_from`] — bit-identically to a run that was never
/// interrupted.
#[derive(Debug, Clone)]
pub struct PpoTrainer {
    config: PpoConfig,
    policy: ActorCritic,
    /// Policy updates completed so far (the resume point).
    completed_updates: usize,
    /// Statistics accumulated over the completed updates.
    stats: TrainingStats,
    /// The observation the next sequential-training action will be
    /// conditioned on, carried across update boundaries (and into
    /// checkpoints) so pausing never perturbs the trajectory.
    pending_observation: Option<Matrix>,
}

impl PpoTrainer {
    /// Creates a trainer for an environment with `features` observation
    /// columns and `n_actions` actions.
    #[must_use]
    pub fn new(config: PpoConfig, features: usize, n_actions: usize) -> Self {
        let policy = ActorCritic::new(
            config.seed,
            features,
            config.channels,
            config.kernel,
            n_actions,
            config.learning_rate,
        );
        PpoTrainer {
            config,
            policy,
            completed_updates: 0,
            stats: TrainingStats::default(),
            pending_observation: None,
        }
    }

    /// The training configuration.
    #[must_use]
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// The current policy.
    #[must_use]
    pub fn policy(&self) -> &ActorCritic {
        &self.policy
    }

    /// Mutable access to the policy (e.g. to reseed it for inference).
    pub fn policy_mut(&mut self) -> &mut ActorCritic {
        &mut self.policy
    }

    /// Consumes the trainer and returns the trained policy.
    #[must_use]
    pub fn into_policy(self) -> ActorCritic {
        self.policy
    }

    /// Number of policy updates the configuration schedules in total.
    #[must_use]
    pub fn total_updates(&self) -> usize {
        (self.config.total_steps / self.config.rollout_steps).max(1)
    }

    /// Number of policy updates completed so far.
    #[must_use]
    pub fn completed_updates(&self) -> usize {
        self.completed_updates
    }

    /// Whether the scheduled training run has completed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.completed_updates >= self.total_updates()
    }

    /// The statistics accumulated over the completed updates.
    #[must_use]
    pub fn stats(&self) -> &TrainingStats {
        &self.stats
    }

    /// Trains against `env` until `total_steps` environment steps have been
    /// collected, returning the training statistics. Resumes from wherever
    /// the trainer left off (a fresh trainer starts at update 0).
    pub fn train<E: Env>(&mut self, env: &mut E) -> TrainingStats {
        self.train_updates(env, usize::MAX);
        self.stats.clone()
    }

    /// Runs at most `max_updates` more policy updates against `env` and
    /// returns whether the scheduled run is now complete. This is the
    /// checkpointing entry point: between calls the trainer is at an update
    /// boundary, and a checkpoint taken there resumes bit-identically.
    pub fn train_updates<E: Env>(&mut self, env: &mut E, max_updates: usize) -> bool {
        self.train_updates_until(env, max_updates, &CancelToken::new())
    }

    /// [`PpoTrainer::train_updates`] with cooperative preemption: the token
    /// is polled at every update boundary, and a fired token makes the loop
    /// return early with the trainer still at a valid boundary — checkpoint
    /// it and the run resumes bit-identically to one that was never
    /// preempted. Updates are never abandoned mid-way; a cancel observed
    /// during an update takes effect once that update completes.
    pub fn train_updates_until<E: Env>(
        &mut self,
        env: &mut E,
        max_updates: usize,
        cancel: &CancelToken,
    ) -> bool {
        let total_updates = self.total_updates();
        if self.completed_updates >= total_updates || max_updates == 0 || cancel.is_cancelled() {
            return self.completed_updates >= total_updates;
        }
        let mut observation = match self.pending_observation.take() {
            Some(observation) => observation,
            None => env.reset(),
        };
        let mut ran = 0;
        while self.completed_updates < total_updates && ran < max_updates && !cancel.is_cancelled()
        {
            self.anneal(self.completed_updates, total_updates);
            let mut buffer = RolloutBuffer::new();
            while buffer.len() < self.config.rollout_steps {
                let mask = env.action_mask();
                let sample = self.policy.act(&observation, &mask);
                let Some(action) = sample.action else {
                    // No valid action: the episode terminates immediately
                    // (§3.5: "if no actions are available, the episode is
                    // terminated immediately").
                    observation = env.reset();
                    continue;
                };
                let step = env.step(action);
                buffer.push(Transition {
                    observation: observation.clone(),
                    mask,
                    action,
                    log_prob: sample.log_prob,
                    value: sample.value,
                    reward: step.reward,
                    done: step.done,
                });
                observation = if step.done {
                    env.reset()
                } else {
                    step.observation
                };
                self.stats.steps += 1;
            }
            self.stats
                .episodic_returns
                .extend(buffer.episodic_returns().iter().copied());

            let last_value = self.policy.value(&observation);
            let adv =
                buffer.compute_advantages(self.config.gamma, self.config.gae_lambda, last_value);
            self.update_policy(&buffer, &adv);
            self.completed_updates += 1;
            ran += 1;
        }
        self.pending_observation = Some(observation);
        self.completed_updates >= total_updates
    }

    /// Trains against a vector of environments until `total_steps`
    /// environment steps have been collected.
    ///
    /// The training loop is the batched counterpart of [`PpoTrainer::train`]:
    /// each update collects `rollout_steps` transitions spread across the
    /// envs (stepped in parallel by the [`VecEnv`] workers), computes
    /// per-segment GAE so env streams never bleed into each other, and runs
    /// the usual clipped-PPO epochs. Because action sampling happens in env
    /// order on this thread, results for a fixed seed are identical for any
    /// worker count.
    pub fn train_vec<E: Env + Send + 'static>(&mut self, venv: &mut VecEnv<E>) -> TrainingStats {
        self.train_vec_updates(venv, usize::MAX);
        self.stats.clone()
    }

    /// Runs at most `max_updates` more policy updates against the vectorized
    /// envs and returns whether the scheduled run is now complete (the
    /// batched counterpart of [`PpoTrainer::train_updates`]). Between calls
    /// the trainer is at an update boundary; checkpoint there with
    /// [`PpoTrainer::save_checkpoint_vec`].
    pub fn train_vec_updates<E: Env + Send + 'static>(
        &mut self,
        venv: &mut VecEnv<E>,
        max_updates: usize,
    ) -> bool {
        let total_updates = self.total_updates();
        let mut ran = 0;
        while self.completed_updates < total_updates && ran < max_updates {
            self.anneal(self.completed_updates, total_updates);
            let rollout = self.collect_rollouts(venv, self.config.rollout_steps);
            self.stats.steps += rollout.buffer.len();
            self.stats.episodic_returns.extend(
                rollout
                    .buffer
                    .episodic_returns_segmented(&rollout.segments)
                    .iter()
                    .copied(),
            );
            let adv = rollout.buffer.compute_advantages_segmented(
                self.config.gamma,
                self.config.gae_lambda,
                &rollout.segments,
            );
            self.update_policy(&rollout.buffer, &adv);
            self.completed_updates += 1;
            ran += 1;
        }
        self.completed_updates >= total_updates
    }

    /// Collects at least `rollout_steps` transitions from the vectorized
    /// envs (in whole lockstep rounds) and groups them per env into the
    /// returned [`Rollout`].
    ///
    /// Every round stacks the current observations and masks into one
    /// [`crate::ObservationBatch`] and samples all actions with a single
    /// [`crate::ActorCritic::act_batch`] call — one GEMM per network layer
    /// over the whole batch instead of one forward pass per env — then
    /// steps all envs in parallel. Envs whose mask is empty are reset
    /// without recording a transition (§3.5); such rounds don't fill the
    /// buffer, so collection keeps running extra rounds until the target is
    /// met, giving up (with whatever was gathered) only after 8x the
    /// nominal round count to avoid livelock on pathological environments.
    pub fn collect_rollouts<E: Env + Send + 'static>(
        &mut self,
        venv: &mut VecEnv<E>,
        rollout_steps: usize,
    ) -> Rollout {
        let n = venv.num_envs();
        let nominal_rounds = rollout_steps.div_ceil(n).max(1);
        let max_rounds = nominal_rounds.saturating_mul(8);
        let mut streams: Vec<Vec<Transition>> =
            (0..n).map(|_| Vec::with_capacity(nominal_rounds)).collect();
        let mut collected = 0;
        let mut rounds = 0;
        while collected < rollout_steps && rounds < max_rounds {
            rounds += 1;
            let batch = venv.batch();
            let samples = self.policy.act_batch(&batch);
            let actions: Vec<VecAction> = samples
                .iter()
                .map(|s| s.action.map_or(VecAction::Reset, VecAction::Step))
                .collect();
            let results = venv.step(&actions);
            for (i, (sample, result)) in samples.iter().zip(&results).enumerate() {
                let Some(action) = sample.action else {
                    continue;
                };
                streams[i].push(Transition {
                    observation: batch.observation(i),
                    mask: batch.mask(i),
                    action,
                    log_prob: sample.log_prob,
                    value: sample.value,
                    reward: result.reward,
                    done: result.done,
                });
                collected += 1;
            }
        }
        // Bootstrap from each env's current state (the observation the next
        // round would act on), batched through one critic GEMM. Ignored by
        // GAE when the segment ended an episode.
        let bootstrap = self.policy.value_batch(&venv.batch());
        let mut buffer = RolloutBuffer::new();
        let mut segments = Vec::with_capacity(n);
        for (i, stream) in streams.into_iter().enumerate() {
            let start = buffer.len();
            let len = stream.len();
            for transition in stream {
                buffer.push(transition);
            }
            segments.push(Segment {
                start,
                len,
                bootstrap_value: bootstrap[i],
            });
        }
        Rollout { buffer, segments }
    }

    fn anneal(&mut self, update: usize, total_updates: usize) {
        if self.config.anneal_lr {
            let frac = 1.0 - update as f32 / total_updates as f32;
            self.policy
                .set_learning_rate(self.config.learning_rate * frac.max(0.05));
        }
    }

    /// Normalizes advantages and runs the clipped-PPO epochs over
    /// minibatches, recording the per-update statistics into `self.stats`.
    fn update_policy(&mut self, buffer: &RolloutBuffer, adv: &Advantages) {
        if buffer.is_empty() {
            return;
        }
        // Normalize advantages over the rollout.
        let mean = adv.advantages.iter().sum::<f32>() / adv.advantages.len() as f32;
        let var = adv
            .advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / adv.advantages.len() as f32;
        let std = var.sqrt().max(1e-6);
        let normalized: Vec<f32> = adv.advantages.iter().map(|a| (a - mean) / std).collect();

        let update_config = UpdateConfig {
            clip_coef: self.config.clip_coef,
            ent_coef: self.config.ent_coef,
            vf_coef: self.config.vf_coef,
        };
        let batch = buffer.transitions();
        let minibatch_size = (batch.len() / self.config.minibatches.max(1)).max(1);
        let mut kl_acc = 0.0;
        let mut entropy_acc = 0.0;
        let mut policy_loss_acc = 0.0;
        let mut value_loss_acc = 0.0;
        let mut update_count = 0.0;
        for _epoch in 0..self.config.update_epochs {
            for chunk_start in (0..batch.len()).step_by(minibatch_size) {
                let chunk_end = (chunk_start + minibatch_size).min(batch.len());
                let samples: Vec<Sample<'_>> = (chunk_start..chunk_end)
                    .map(|i| Sample {
                        observation: &batch[i].observation,
                        mask: &batch[i].mask,
                        action: batch[i].action,
                        old_log_prob: batch[i].log_prob,
                        advantage: normalized[i],
                        ret: adv.returns[i],
                    })
                    .collect();
                let update_stats = self.policy.update_minibatch(&samples, &update_config);
                kl_acc += update_stats.approx_kl;
                entropy_acc += update_stats.entropy;
                policy_loss_acc += update_stats.policy_loss;
                value_loss_acc += update_stats.value_loss;
                update_count += 1.0;
            }
        }
        if update_count > 0.0 {
            self.stats.approx_kl.push(kl_acc / update_count);
            self.stats.entropy.push(entropy_acc / update_count);
            self.stats.policy_loss.push(policy_loss_acc / update_count);
            self.stats.value_loss.push(value_loss_acc / update_count);
        }
    }

    /// Captures a resumable [`Checkpoint`] of this trainer and the
    /// environment it is training against (sequential path). Must be called
    /// at an update boundary — i.e. between [`PpoTrainer::train_updates`]
    /// calls — for the resume-equals-uninterrupted guarantee to hold.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::EnvSnapshotUnsupported`] when the env does
    /// not implement [`Env::state_bytes`].
    pub fn checkpoint<E: Env>(&self, env: &E) -> Result<Checkpoint, CheckpointError> {
        let state = env
            .state_bytes()
            .ok_or(CheckpointError::EnvSnapshotUnsupported)?;
        Ok(Checkpoint {
            config: self.config.clone(),
            completed_updates: self.completed_updates,
            stats: self.stats.clone(),
            policy: self.policy.state(),
            envs: vec![EnvCheckpoint {
                state,
                observation: self.pending_observation.clone(),
                mask: env.action_mask(),
            }],
        })
    }

    /// Writes a [`PpoTrainer::checkpoint`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates snapshot and I/O errors as [`CheckpointError`].
    pub fn save_checkpoint<E: Env>(&self, env: &E, path: &Path) -> Result<(), CheckpointError> {
        self.checkpoint(env)?.write(path)
    }

    /// Rebuilds a trainer from a checkpoint and restores the environment's
    /// state, so that continuing with [`PpoTrainer::train`] /
    /// [`PpoTrainer::train_updates`] is bit-identical to the run the
    /// checkpoint was taken from. `env` must be constructed for the same
    /// problem instance the checkpointed run was training on.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] when the checkpoint is not a
    /// single-env snapshot or its policy state is inconsistent, and
    /// [`CheckpointError::EnvRejectedState`] when the env refuses the state
    /// bytes.
    pub fn resume_from_checkpoint<E: Env>(
        checkpoint: &Checkpoint,
        env: &mut E,
    ) -> Result<Self, CheckpointError> {
        let policy =
            ActorCritic::from_state(&checkpoint.policy).map_err(CheckpointError::Corrupt)?;
        let [env_checkpoint] = checkpoint.envs.as_slice() else {
            return Err(CheckpointError::Corrupt(format!(
                "expected a single-env checkpoint, found {} envs",
                checkpoint.envs.len()
            )));
        };
        if !env.restore_state(&env_checkpoint.state) {
            return Err(CheckpointError::EnvRejectedState);
        }
        Ok(PpoTrainer {
            config: checkpoint.config.clone(),
            policy,
            completed_updates: checkpoint.completed_updates,
            stats: checkpoint.stats.clone(),
            pending_observation: env_checkpoint.observation.clone(),
        })
    }

    /// Reads a checkpoint file and resumes from it (see
    /// [`PpoTrainer::resume_from_checkpoint`]).
    ///
    /// # Errors
    ///
    /// Propagates read, decode and restore errors as [`CheckpointError`].
    pub fn resume_from<E: Env>(path: &Path, env: &mut E) -> Result<Self, CheckpointError> {
        let checkpoint = Checkpoint::read(path)?;
        Self::resume_from_checkpoint(&checkpoint, env)
    }

    /// Warm-restart entry point: resumes from the checkpoint at `path` when
    /// one exists, otherwise starts a fresh trainer with `config`. Returns
    /// the trainer and whether it was resumed. A long-running service uses
    /// this to pick an interrupted training run back up after a process
    /// restart without special-casing the first run.
    ///
    /// A missing checkpoint file is the normal cold-start case, not an
    /// error. Anything else — a present-but-corrupt file, a wrong-version
    /// file, an env that refuses the state — is surfaced as the typed
    /// [`CheckpointError`] so the caller can decide whether to discard the
    /// checkpoint and start over.
    ///
    /// # Errors
    ///
    /// Propagates every [`CheckpointError`] except "file not found".
    pub fn resume_from_or_new<E: Env>(
        path: &Path,
        env: &mut E,
        config: PpoConfig,
        features: usize,
        n_actions: usize,
    ) -> Result<(Self, bool), CheckpointError> {
        match Self::resume_from(path, env) {
            Ok(trainer) => Ok((trainer, true)),
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                Ok((PpoTrainer::new(config, features, n_actions), false))
            }
            Err(e) => Err(e),
        }
    }

    /// Captures a resumable [`Checkpoint`] of this trainer and a vectorized
    /// environment (the [`PpoTrainer::train_vec_updates`] path): one
    /// [`EnvCheckpoint`] per env, in env order.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::EnvSnapshotUnsupported`] when any env does
    /// not implement [`Env::state_bytes`].
    pub fn checkpoint_vec<E: Env + Send + 'static>(
        &self,
        venv: &mut VecEnv<E>,
    ) -> Result<Checkpoint, CheckpointError> {
        let env_states = venv
            .snapshot_env_states()
            .ok_or(CheckpointError::EnvSnapshotUnsupported)?;
        let envs = env_states
            .into_iter()
            .zip(venv.states())
            .map(|(state, env_state)| EnvCheckpoint {
                state,
                observation: Some(env_state.observation.clone()),
                mask: env_state.mask.clone(),
            })
            .collect();
        Ok(Checkpoint {
            config: self.config.clone(),
            completed_updates: self.completed_updates,
            stats: self.stats.clone(),
            policy: self.policy.state(),
            envs,
        })
    }

    /// Writes a [`PpoTrainer::checkpoint_vec`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates snapshot and I/O errors as [`CheckpointError`].
    pub fn save_checkpoint_vec<E: Env + Send + 'static>(
        &self,
        venv: &mut VecEnv<E>,
        path: &Path,
    ) -> Result<(), CheckpointError> {
        self.checkpoint_vec(venv)?.write(path)
    }

    /// Rebuilds a trainer from a vectorized-training checkpoint and restores
    /// every env of `venv` (which must hold the same number of envs,
    /// constructed for the same problem instances).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] on env-count or observation
    /// inconsistencies and [`CheckpointError::EnvRejectedState`] when an env
    /// refuses its state bytes.
    pub fn resume_vec_from_checkpoint<E: Env + Send + 'static>(
        checkpoint: &Checkpoint,
        venv: &mut VecEnv<E>,
    ) -> Result<Self, CheckpointError> {
        let policy =
            ActorCritic::from_state(&checkpoint.policy).map_err(CheckpointError::Corrupt)?;
        if checkpoint.envs.len() != venv.num_envs() {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint holds {} envs but the vector holds {}",
                checkpoint.envs.len(),
                venv.num_envs()
            )));
        }
        let mut env_states = Vec::with_capacity(checkpoint.envs.len());
        let mut states = Vec::with_capacity(checkpoint.envs.len());
        for (i, env_checkpoint) in checkpoint.envs.iter().enumerate() {
            let observation = env_checkpoint.observation.clone().ok_or_else(|| {
                CheckpointError::Corrupt(format!("env {i} is missing its observation"))
            })?;
            env_states.push(env_checkpoint.state.clone());
            states.push(EnvState {
                observation,
                mask: env_checkpoint.mask.clone(),
            });
        }
        if !venv.restore_env_states(&env_states, &states) {
            return Err(CheckpointError::EnvRejectedState);
        }
        Ok(PpoTrainer {
            config: checkpoint.config.clone(),
            policy,
            completed_updates: checkpoint.completed_updates,
            stats: checkpoint.stats.clone(),
            pending_observation: None,
        })
    }

    /// Reads a checkpoint file and resumes vectorized training from it (see
    /// [`PpoTrainer::resume_vec_from_checkpoint`]).
    ///
    /// # Errors
    ///
    /// Propagates read, decode and restore errors as [`CheckpointError`].
    pub fn resume_vec_from<E: Env + Send + 'static>(
        path: &Path,
        venv: &mut VecEnv<E>,
    ) -> Result<Self, CheckpointError> {
        let checkpoint = Checkpoint::read(path)?;
        Self::resume_vec_from_checkpoint(&checkpoint, venv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_envs::BanditEnv;

    #[test]
    fn ppo_learns_the_rewarding_action_on_a_bandit() {
        let mut env = BanditEnv::new(8);
        let config = PpoConfig {
            total_steps: 2048,
            rollout_steps: 64,
            learning_rate: 2e-2,
            ent_coef: 0.001,
            ..PpoConfig::tiny()
        };
        let mut trainer = PpoTrainer::new(config, env.observation_features(), env.action_count());
        let stats = trainer.train(&mut env);
        assert!(stats.steps >= 2048);
        assert!(!stats.episodic_returns.is_empty());
        // Early episodes are near 0 on average (random ±1); after training
        // the agent should consistently pick the +1 action (return ≈ 8).
        let last = stats.final_return(5);
        assert!(
            last > 4.0,
            "expected the trained policy to prefer the rewarding action, got {last}"
        );
        // The greedy policy picks the rewarding action.
        let obs = env.reset();
        let greedy = trainer.policy().act_greedy(&obs, &env.action_mask());
        assert_eq!(greedy, Some(1));
    }

    #[test]
    fn training_statistics_are_recorded_per_update() {
        let mut env = BanditEnv::new(4);
        let config = PpoConfig {
            total_steps: 256,
            rollout_steps: 64,
            ..PpoConfig::tiny()
        };
        let mut trainer = PpoTrainer::new(config, env.observation_features(), env.action_count());
        let stats = trainer.train(&mut env);
        assert_eq!(stats.approx_kl.len(), 256 / 64);
        assert_eq!(stats.entropy.len(), stats.approx_kl.len());
        assert!(stats.entropy.iter().all(|e| e.is_finite()));
    }

    fn transition_fingerprint(buffer: &RolloutBuffer) -> Vec<(usize, u32, u32, u32, bool)> {
        buffer
            .transitions()
            .iter()
            .map(|t| {
                (
                    t.action,
                    t.log_prob.to_bits(),
                    t.value.to_bits(),
                    t.reward.to_bits(),
                    t.done,
                )
            })
            .collect()
    }

    #[test]
    fn collect_rollouts_is_identical_for_any_worker_count() {
        let collect = |workers: usize| {
            let envs: Vec<BanditEnv> = (0..4).map(|_| BanditEnv::new(5)).collect();
            let mut venv = VecEnv::new(envs, workers);
            let mut trainer = PpoTrainer::new(PpoConfig::tiny(), 3, 3);
            let rollout = trainer.collect_rollouts(&mut venv, 32);
            (transition_fingerprint(&rollout.buffer), rollout.segments)
        };
        let single = collect(1);
        assert_eq!(collect(2), single);
        assert_eq!(collect(4), single);
        assert!(single.0.len() >= 32);
        assert_eq!(single.1.len(), 4);
    }

    #[test]
    fn train_vec_matches_single_env_training_bit_for_bit() {
        // One env, one worker: the vectorized path must replay exactly the
        // sequential trainer's draws and updates.
        let config = PpoConfig {
            total_steps: 256,
            rollout_steps: 64,
            ..PpoConfig::tiny()
        };
        let mut env = BanditEnv::new(8);
        let mut sequential = PpoTrainer::new(config.clone(), 3, 3);
        let seq_stats = sequential.train(&mut env);

        let mut venv = VecEnv::new(vec![BanditEnv::new(8)], 1);
        let mut vectored = PpoTrainer::new(config, 3, 3);
        let vec_stats = vectored.train_vec(&mut venv);

        assert_eq!(seq_stats.steps, vec_stats.steps);
        assert_eq!(seq_stats.episodic_returns, vec_stats.episodic_returns);
        assert_eq!(seq_stats.approx_kl, vec_stats.approx_kl);
        assert_eq!(seq_stats.entropy, vec_stats.entropy);
        assert_eq!(seq_stats.policy_loss, vec_stats.policy_loss);
        assert_eq!(seq_stats.value_loss, vec_stats.value_loss);
    }

    #[test]
    fn train_vec_learns_the_rewarding_action_with_parallel_envs() {
        let envs: Vec<BanditEnv> = (0..4).map(|_| BanditEnv::new(8)).collect();
        let mut venv = VecEnv::new(envs, 4);
        let config = PpoConfig {
            total_steps: 2048,
            rollout_steps: 64,
            learning_rate: 2e-2,
            ent_coef: 0.001,
            ..PpoConfig::tiny()
        };
        let mut trainer = PpoTrainer::new(config, venv.observation_features(), venv.action_count());
        let stats = trainer.train_vec(&mut venv);
        assert!(stats.steps >= 2048);
        let last = stats.final_return(5);
        assert!(
            last > 4.0,
            "expected the trained policy to prefer the rewarding action, got {last}"
        );
        let state = &venv.states()[0];
        let greedy = trainer.policy().act_greedy(&state.observation, &state.mask);
        assert_eq!(greedy, Some(1));
    }

    #[test]
    fn default_hyperparameters_match_the_study() {
        let config = PpoConfig::default();
        assert_eq!(config.learning_rate, 2.5e-4);
        assert_eq!(config.clip_coef, 0.2);
        assert_eq!(config.gamma, 0.99);
        assert_eq!(config.gae_lambda, 0.95);
        assert_eq!(config.update_epochs, 4);
        assert_eq!(config.minibatches, 4);
    }

    #[test]
    fn final_return_handles_empty_history() {
        assert_eq!(TrainingStats::default().final_return(5), 0.0);
    }

    #[test]
    fn a_cancelled_trainer_stays_at_a_boundary_and_resumes_identically() {
        let config = PpoConfig {
            total_steps: 256,
            rollout_steps: 64,
            ..PpoConfig::tiny()
        };

        let mut env = BanditEnv::new(8);
        let mut uninterrupted = PpoTrainer::new(config.clone(), 3, 3);
        let reference = uninterrupted.train(&mut env);

        // A pre-fired token runs zero updates and leaves the trainer
        // untouched.
        let mut env = BanditEnv::new(8);
        let mut trainer = PpoTrainer::new(config, 3, 3);
        let fired = CancelToken::new();
        fired.cancel();
        assert!(!trainer.train_updates_until(&mut env, usize::MAX, &fired));
        assert_eq!(trainer.completed_updates(), 0);

        // Preempt after one update, then finish: the spliced run matches the
        // uninterrupted one bit for bit.
        assert!(!trainer.train_updates_until(&mut env, 1, &CancelToken::new()));
        assert_eq!(trainer.completed_updates(), 1);
        assert!(trainer.train_updates_until(&mut env, usize::MAX, &CancelToken::new()));
        assert_eq!(trainer.stats().episodic_returns, reference.episodic_returns);
        assert_eq!(trainer.stats().approx_kl, reference.approx_kl);
    }
}
