//! Cooperative cancellation for long-running searches.
//!
//! A [`CancelToken`] carries three independent stop signals — an explicit
//! [`CancelToken::cancel`] call, any number of *linked* parent flags (a
//! server-wide drain switch), and an optional wall-clock deadline — folded
//! into one [`CancelToken::is_cancelled`] check that training and search
//! loops poll at their natural boundaries (a PPO update, a greedy move, an
//! evolutionary generation).
//!
//! Cancellation is cooperative and *boundary-aligned* by construction: a
//! loop only observes the token between units of work, so a cancelled
//! trainer is always at an update boundary — exactly where a checkpoint is
//! valid. That is what turns preemption into graceful degradation: the
//! interrupted search can persist its progress and report its
//! best-so-far answer instead of being killed mid-update.
//!
//! Tokens are cheap to clone (clones share the same flags) and compose:
//! [`CancelToken::child`] derives a request-scoped token that observes its
//! parent's signals plus its own, so one drain switch preempts every
//! in-flight request while each request can still be cancelled or
//! deadlined individually.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A composable stop signal (see the module docs). The default token is
/// never cancelled until [`CancelToken::cancel`] is called.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// This token's own flag; [`CancelToken::cancel`] sets it.
    own: Arc<AtomicBool>,
    /// Flags inherited from parent tokens; any of them firing cancels this
    /// token too.
    linked: Vec<Arc<AtomicBool>>,
    /// Optional wall-clock deadline; the token reads as cancelled once the
    /// deadline has passed.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Attaches a wall-clock deadline. When the token already carries one,
    /// the *earlier* of the two wins — deadlines only ever tighten.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> CancelToken {
        self.deadline = Some(match self.deadline {
            Some(existing) => existing.min(deadline),
            None => deadline,
        });
        self
    }

    /// Derives a child token: it observes every signal of `self` (explicit
    /// cancels, linked flags, the deadline) plus a fresh flag of its own,
    /// so cancelling the child never cancels the parent.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        let mut linked = Vec::with_capacity(self.linked.len() + 1);
        linked.push(Arc::clone(&self.own));
        linked.extend(self.linked.iter().cloned());
        CancelToken {
            own: Arc::new(AtomicBool::new(false)),
            linked,
            deadline: self.deadline,
        }
    }

    /// Fires this token's own flag: every clone (and every child derived
    /// from it) reads as cancelled from now on.
    pub fn cancel(&self) {
        self.own.store(true, Ordering::SeqCst);
    }

    /// Whether any stop signal has fired: an explicit cancel on this token
    /// or a linked parent, or an expired deadline.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.own.load(Ordering::SeqCst) {
            return true;
        }
        if self.linked.iter().any(|flag| flag.load(Ordering::SeqCst)) {
            return true;
        }
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The wall-clock deadline, if one is attached.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn explicit_cancel_reaches_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn a_child_observes_its_parent_but_not_vice_versa() {
        let drain = CancelToken::new();
        let request = drain.child();
        assert!(!request.is_cancelled());
        request.cancel();
        assert!(request.is_cancelled());
        assert!(!drain.is_cancelled(), "child cancel must not leak upward");

        let second = drain.child();
        drain.cancel();
        assert!(second.is_cancelled(), "parent cancel reaches children");
    }

    #[test]
    fn deadlines_fire_and_only_tighten() {
        let past = Instant::now() - Duration::from_millis(1);
        let far = Instant::now() + Duration::from_secs(3600);
        assert!(CancelToken::new().with_deadline(past).is_cancelled());
        assert!(!CancelToken::new().with_deadline(far).is_cancelled());
        // Re-applying a later deadline cannot loosen the earlier one.
        let tightened = CancelToken::new().with_deadline(past).with_deadline(far);
        assert!(tightened.is_cancelled());
        // A child inherits the parent's deadline.
        assert!(CancelToken::new()
            .with_deadline(past)
            .child()
            .is_cancelled());
    }
}
