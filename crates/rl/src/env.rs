//! The Gym-like environment interface (§3.7: "the reordering process is
//! encapsulated in the environment transition, which followed the
//! standardized Gym interface").

use nn::Matrix;

/// The result of one environment step.
#[derive(Debug, Clone)]
pub struct Step {
    /// The next observation (the embedded SASS schedule).
    pub observation: Matrix,
    /// The scalar reward.
    pub reward: f32,
    /// True when the episode has terminated.
    pub done: bool,
}

/// A sequential decision-making environment with discrete, maskable actions.
pub trait Env {
    /// Resets the environment and returns the initial observation.
    fn reset(&mut self) -> Matrix;

    /// Applies an action and returns the transition.
    fn step(&mut self, action: usize) -> Step;

    /// Total number of (maskable) actions.
    fn action_count(&self) -> usize;

    /// Validity mask over actions for the *current* state; masked-out
    /// entries must never be selected.
    fn action_mask(&self) -> Vec<bool>;

    /// Number of embedding features per observation row.
    fn observation_features(&self) -> usize;

    /// Serializes the environment's complete internal state for
    /// checkpointing, or `None` when the environment does not support
    /// snapshots (the default). An env that returns `Some` here must accept
    /// the same bytes in [`Env::restore_state`] and then behave
    /// bit-identically to the env that produced them.
    fn state_bytes(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores internal state previously captured by [`Env::state_bytes`]
    /// on an env constructed for the same problem instance. Returns `false`
    /// (leaving the env usable but unchanged in the failure modes it can
    /// detect) when the bytes are not a state this env can adopt.
    ///
    /// Snapshots carry *logical* state only: implementations are free to
    /// keep derived acceleration state (caches, memoized views, recorded
    /// simulation baselines) out of the bytes and rebuild or re-adopt it
    /// here, as long as the restored env then behaves bit-identically —
    /// the assembly game, for instance, re-records its delta-simulation
    /// baseline on restore while its snapshot stays schedule-only.
    fn restore_state(&mut self, _state: &[u8]) -> bool {
        false
    }
}

/// Tiny deterministic environments used by unit, contract and determinism
/// tests — both this crate's own and downstream consumers'.
pub mod test_envs {
    use super::*;

    /// A tiny deterministic environment used by tests: the observation is a
    /// constant matrix, action 1 yields +1 reward, every other action
    /// yields -1, and episodes last `horizon` steps. Action 2 is always
    /// masked.
    #[derive(Debug, Clone)]
    pub struct BanditEnv {
        /// Episode length.
        pub horizon: usize,
        /// Steps taken in the current episode.
        pub t: usize,
    }

    impl BanditEnv {
        /// Creates a bandit with `horizon` steps per episode.
        #[must_use]
        pub fn new(horizon: usize) -> Self {
            BanditEnv { horizon, t: 0 }
        }

        fn observation(&self) -> Matrix {
            Matrix::from_vec(4, 3, vec![0.5; 12])
        }
    }

    impl Env for BanditEnv {
        fn reset(&mut self) -> Matrix {
            self.t = 0;
            self.observation()
        }

        fn step(&mut self, action: usize) -> Step {
            assert_ne!(action, 2, "masked action must never be selected");
            self.t += 1;
            Step {
                observation: self.observation(),
                reward: if action == 1 { 1.0 } else { -1.0 },
                done: self.t >= self.horizon,
            }
        }

        fn action_count(&self) -> usize {
            3
        }

        fn action_mask(&self) -> Vec<bool> {
            vec![true, true, false]
        }

        fn observation_features(&self) -> usize {
            3
        }

        fn state_bytes(&self) -> Option<Vec<u8>> {
            let mut bytes = Vec::with_capacity(16);
            bytes.extend_from_slice(&(self.horizon as u64).to_le_bytes());
            bytes.extend_from_slice(&(self.t as u64).to_le_bytes());
            Some(bytes)
        }

        fn restore_state(&mut self, state: &[u8]) -> bool {
            if state.len() != 16 {
                return false;
            }
            let mut word = [0u8; 8];
            word.copy_from_slice(&state[..8]);
            let horizon = u64::from_le_bytes(word) as usize;
            word.copy_from_slice(&state[8..]);
            let t = u64::from_le_bytes(word) as usize;
            if horizon != self.horizon {
                return false; // Constructed for a different instance.
            }
            self.t = t;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_envs::BanditEnv;
    use super::*;

    #[test]
    fn bandit_env_follows_the_contract() {
        let mut env = BanditEnv::new(3);
        let obs = env.reset();
        assert_eq!(obs.cols(), env.observation_features());
        assert_eq!(env.action_mask().len(), env.action_count());
        let step = env.step(1);
        assert_eq!(step.reward, 1.0);
        assert!(!step.done);
        env.step(0);
        let last = env.step(1);
        assert!(last.done);
    }

    #[test]
    fn bandit_state_round_trips_and_rejects_foreign_state() {
        let mut env = BanditEnv::new(5);
        let _ = env.reset();
        env.step(1);
        env.step(0);
        let state = env.state_bytes().expect("bandit snapshots");
        let mut fresh = BanditEnv::new(5);
        assert!(fresh.restore_state(&state));
        assert_eq!(fresh.t, 2);
        // Different horizon or malformed bytes are refused.
        assert!(!BanditEnv::new(7).restore_state(&state));
        assert!(!fresh.restore_state(&state[..9]));
    }
}
