//! The checkpoint contract: interrupting a training run at an update
//! boundary and resuming from its checkpoint is bit-identical to never
//! having stopped — the training-side mirror of the suite optimizer's
//! `jobs=N ≡ jobs=1` determinism contract.

use rl::test_envs::BanditEnv;
use rl::{Checkpoint, CheckpointError, PolicyState, PpoConfig, PpoTrainer, TrainingStats, VecEnv};

fn config() -> PpoConfig {
    PpoConfig {
        total_steps: 256,
        rollout_steps: 32,
        learning_rate: 1e-2,
        ..PpoConfig::tiny()
    }
}

/// Every float of the policy state as raw bits: two states compare equal
/// here only if they are bit-identical.
fn policy_bits(state: &PolicyState) -> Vec<u64> {
    let mut bits: Vec<u64> = Vec::new();
    let mut push_f32s = |values: &[f32]| {
        bits.extend(values.iter().map(|v| u64::from(v.to_bits())));
    };
    push_f32s(&state.encoder_weight);
    push_f32s(&state.encoder_bias);
    push_f32s(&state.actor_weight);
    push_f32s(&state.actor_bias);
    push_f32s(&state.critic_weight);
    push_f32s(&state.critic_bias);
    for opt in [&state.encoder_opt, &state.actor_opt, &state.critic_opt] {
        bits.push(u64::from(opt.learning_rate.to_bits()));
        bits.push(opt.step);
        bits.extend(opt.first_moment.iter().map(|v| u64::from(v.to_bits())));
        bits.extend(opt.second_moment.iter().map(|v| u64::from(v.to_bits())));
    }
    bits.extend(state.rng.key.iter().map(|&w| u64::from(w)));
    bits.push(state.rng.counter);
    bits.extend(state.rng.nonce.iter().map(|&w| u64::from(w)));
    bits.extend(state.rng.buffer.iter().map(|&w| u64::from(w)));
    bits.push(u64::from(state.rng.index));
    bits
}

fn stats_bits(stats: &TrainingStats) -> Vec<u64> {
    let mut bits = vec![stats.steps as u64];
    for series in [
        &stats.episodic_returns,
        &stats.approx_kl,
        &stats.entropy,
        &stats.policy_loss,
        &stats.value_loss,
    ] {
        bits.push(series.len() as u64);
        bits.extend(series.iter().map(|v| u64::from(v.to_bits())));
    }
    bits
}

fn temp_path(label: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cuasmrl-rl-ckpt-{label}-{}-{:?}.ckpt",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn resume_at_every_update_boundary_matches_the_uninterrupted_run() {
    // The uninterrupted control run.
    let mut control_env = BanditEnv::new(8);
    let mut control = PpoTrainer::new(config(), 3, 3);
    let control_stats = control.train(&mut control_env);
    let control_policy = policy_bits(&control.policy().state());
    let total_updates = control.total_updates();
    assert!(
        total_updates >= 4,
        "need several boundaries to interrupt at"
    );

    for interrupt_after in 1..total_updates {
        let path = temp_path(&format!("seq-{interrupt_after}"));
        // Phase 1: train to the boundary, checkpoint, and drop everything.
        {
            let mut env = BanditEnv::new(8);
            let mut trainer = PpoTrainer::new(config(), 3, 3);
            let finished = trainer.train_updates(&mut env, interrupt_after);
            assert!(!finished);
            assert_eq!(trainer.completed_updates(), interrupt_after);
            trainer.save_checkpoint(&env, &path).expect("save");
        }
        // Phase 2: a fresh process would reconstruct the env and resume.
        let mut env = BanditEnv::new(8);
        let mut resumed = PpoTrainer::resume_from(&path, &mut env).expect("resume");
        assert_eq!(resumed.completed_updates(), interrupt_after);
        let resumed_stats = resumed.train(&mut env);
        assert_eq!(
            policy_bits(&resumed.policy().state()),
            control_policy,
            "policy diverged when interrupted after update {interrupt_after}"
        );
        assert_eq!(stats_bits(&resumed_stats), stats_bits(&control_stats));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn resume_from_or_new_cold_starts_resumes_and_propagates_corruption() {
    let path = temp_path("or-new");
    let _ = std::fs::remove_file(&path);

    // No checkpoint on disk: a fresh trainer, flagged as not resumed.
    let mut env = BanditEnv::new(8);
    let (mut trainer, resumed) =
        PpoTrainer::resume_from_or_new(&path, &mut env, config(), 3, 3).expect("cold start");
    assert!(!resumed);
    assert_eq!(trainer.completed_updates(), 0);

    // Train past a boundary, checkpoint, and warm-restart from it.
    trainer.train_updates(&mut env, 2);
    trainer.save_checkpoint(&env, &path).expect("save");
    let mut env2 = BanditEnv::new(8);
    let (warm, resumed) =
        PpoTrainer::resume_from_or_new(&path, &mut env2, config(), 3, 3).expect("warm restart");
    assert!(resumed);
    assert_eq!(warm.completed_updates(), 2);

    // A present-but-damaged checkpoint is a typed error, not a silent
    // cold start: the caller decides whether to discard it.
    let mut bytes = std::fs::read(&path).expect("read checkpoint");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).expect("corrupt checkpoint");
    let mut env3 = BanditEnv::new(8);
    let err = PpoTrainer::resume_from_or_new(&path, &mut env3, config(), 3, 3)
        .expect_err("corruption must surface");
    assert!(matches!(err, CheckpointError::ChecksumMismatch));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn vectorized_resume_matches_the_uninterrupted_run() {
    let envs = || -> Vec<BanditEnv> { (0..4).map(|_| BanditEnv::new(6)).collect() };
    let mut control_venv = VecEnv::new(envs(), 2);
    let mut control = PpoTrainer::new(config(), 3, 3);
    let control_stats = control.train_vec(&mut control_venv);
    let control_policy = policy_bits(&control.policy().state());
    let total_updates = control.total_updates();

    for interrupt_after in [1, total_updates / 2, total_updates - 1] {
        let path = temp_path(&format!("vec-{interrupt_after}"));
        {
            let mut venv = VecEnv::new(envs(), 4);
            let mut trainer = PpoTrainer::new(config(), 3, 3);
            assert!(!trainer.train_vec_updates(&mut venv, interrupt_after));
            trainer.save_checkpoint_vec(&mut venv, &path).expect("save");
        }
        // Resume into a vector with a *different* worker count: the
        // checkpoint is env-order state, so worker sharding stays free.
        let mut venv = VecEnv::new(envs(), 1);
        let mut resumed = PpoTrainer::resume_vec_from(&path, &mut venv).expect("resume");
        let resumed_stats = resumed.train_vec(&mut venv);
        assert_eq!(
            policy_bits(&resumed.policy().state()),
            control_policy,
            "vec policy diverged when interrupted after update {interrupt_after}"
        );
        assert_eq!(stats_bits(&resumed_stats), stats_bits(&control_stats));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn checkpoint_file_round_trips_policy_and_optimizer_state_bit_identically() {
    let mut env = BanditEnv::new(8);
    let mut trainer = PpoTrainer::new(config(), 3, 3);
    trainer.train_updates(&mut env, 3);
    let checkpoint = trainer.checkpoint(&env).expect("snapshot");
    let decoded = Checkpoint::from_bytes(&checkpoint.to_bytes()).expect("round trip");
    assert_eq!(decoded, checkpoint);
    assert_eq!(
        policy_bits(&decoded.policy),
        policy_bits(&trainer.policy().state())
    );
    assert_eq!(decoded.completed_updates, 3);
    assert_eq!(decoded.envs.len(), 1);
    assert!(decoded.envs[0].observation.is_some());
}

#[test]
fn hostile_checkpoints_are_rejected_with_typed_errors_not_panics() {
    let mut env = BanditEnv::new(8);
    let mut trainer = PpoTrainer::new(config(), 3, 3);
    trainer.train_updates(&mut env, 1);
    let good = trainer.checkpoint(&env).expect("snapshot").to_bytes();

    // Garbage bytes of assorted lengths.
    for len in [0usize, 1, 7, 8, 64, 4096] {
        let garbage: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
        assert!(Checkpoint::from_bytes(&garbage).is_err(), "len {len}");
    }
    // Not-a-checkpoint magic.
    assert!(matches!(
        Checkpoint::from_bytes(b"definitely not a checkpoint file"),
        Err(CheckpointError::BadMagic)
    ));
    // Every possible truncation of a real checkpoint.
    for len in 0..good.len() {
        assert!(
            Checkpoint::from_bytes(&good[..len]).is_err(),
            "prefix {len}"
        );
    }
    // Bit flips anywhere in the content fail the checksum.
    for position in (9..good.len() - 8).step_by(97) {
        let mut damaged = good.clone();
        damaged[position] ^= 0x10;
        assert!(matches!(
            Checkpoint::from_bytes(&damaged),
            Err(CheckpointError::ChecksumMismatch)
        ));
    }
    // A wrong version is named in the error.
    let mut wrong_version = good.clone();
    wrong_version[8] = 42;
    let content_len = wrong_version.len() - 8;
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in &wrong_version[..content_len] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    wrong_version[content_len..].copy_from_slice(&hash.to_le_bytes());
    assert!(matches!(
        Checkpoint::from_bytes(&wrong_version),
        Err(CheckpointError::UnsupportedVersion(42))
    ));
}

#[test]
fn resume_refuses_mismatched_environments() {
    let path = temp_path("mismatch");
    let mut env = BanditEnv::new(8);
    let mut trainer = PpoTrainer::new(config(), 3, 3);
    trainer.train_updates(&mut env, 1);
    trainer.save_checkpoint(&env, &path).expect("save");
    // An env constructed for a different problem instance rejects the state.
    let mut wrong_env = BanditEnv::new(17);
    assert!(matches!(
        PpoTrainer::resume_from::<BanditEnv>(&path, &mut wrong_env),
        Err(CheckpointError::EnvRejectedState)
    ));
    // A vec resume against the wrong env count is refused too.
    let mut venv = VecEnv::new(vec![BanditEnv::new(8), BanditEnv::new(8)], 1);
    assert!(matches!(
        PpoTrainer::resume_vec_from::<BanditEnv>(&path, &mut venv),
        Err(CheckpointError::Corrupt(_))
    ));
    let _ = std::fs::remove_file(&path);
}
