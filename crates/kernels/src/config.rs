//! Kernel launch/tile configurations and the autotuning search space.

use serde::{Deserialize, Serialize};

/// A kernel configuration, the unit the Triton autotuner searches over
/// (§3.1 of the paper: tile sizes, number of warps, pipelining stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Tile size along M (rows of the output).
    pub block_m: usize,
    /// Tile size along N (columns of the output).
    pub block_n: usize,
    /// Tile size along K (the reduction dimension).
    pub block_k: usize,
    /// Warps per thread block.
    pub num_warps: usize,
    /// Software pipelining stages (1 = no pipelining, 2 = double buffering).
    pub num_stages: usize,
}

impl KernelConfig {
    /// A reasonable default configuration for compute-bound kernels.
    #[must_use]
    pub fn default_compute() -> Self {
        KernelConfig {
            block_m: 64,
            block_n: 64,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        }
    }

    /// A reasonable default configuration for memory-bound kernels.
    #[must_use]
    pub fn default_memory() -> Self {
        KernelConfig {
            block_m: 1,
            block_n: 1024,
            block_k: 1,
            num_warps: 4,
            num_stages: 1,
        }
    }

    /// A deliberately poor configuration, standing in for the untuned
    /// "Cutlass default" the paper observes to be ~10x slower than Triton
    /// (§5.3).
    #[must_use]
    pub fn untuned() -> Self {
        KernelConfig {
            block_m: 16,
            block_n: 16,
            block_k: 8,
            num_warps: 1,
            num_stages: 1,
        }
    }

    /// A human-readable key fragment for the deploy-time lookup cache.
    #[must_use]
    pub fn cache_key(&self) -> String {
        format!(
            "m{}n{}k{}w{}s{}",
            self.block_m, self.block_n, self.block_k, self.num_warps, self.num_stages
        )
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::default_compute()
    }
}

/// The user-provided configuration space enumerated by the autotuner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Candidate configurations.
    pub candidates: Vec<KernelConfig>,
}

impl ConfigSpace {
    /// The grid the paper's Triton kernels typically expose for GEMM-family
    /// kernels: tile sizes in {32, 64, 128} and 4 or 8 warps.
    #[must_use]
    pub fn gemm_default() -> Self {
        let mut candidates = Vec::new();
        for &block_m in &[32usize, 64, 128] {
            for &block_n in &[32usize, 64, 128] {
                for &block_k in &[32usize, 64] {
                    for &num_warps in &[4usize, 8] {
                        candidates.push(KernelConfig {
                            block_m,
                            block_n,
                            block_k,
                            num_warps,
                            num_stages: 2,
                        });
                    }
                }
            }
        }
        ConfigSpace { candidates }
    }

    /// A compact space used by unit tests and the quickstart example.
    #[must_use]
    pub fn small() -> Self {
        ConfigSpace {
            candidates: vec![
                KernelConfig {
                    block_m: 32,
                    block_n: 32,
                    block_k: 32,
                    num_warps: 4,
                    num_stages: 2,
                },
                KernelConfig {
                    block_m: 64,
                    block_n: 64,
                    block_k: 32,
                    num_warps: 4,
                    num_stages: 2,
                },
                KernelConfig {
                    block_m: 64,
                    block_n: 64,
                    block_k: 32,
                    num_warps: 8,
                    num_stages: 2,
                },
            ],
        }
    }

    /// Configuration space for row-wise memory-bound kernels.
    #[must_use]
    pub fn rowwise_default() -> Self {
        ConfigSpace {
            candidates: [256usize, 512, 1024, 2048]
                .iter()
                .flat_map(|&block_n| {
                    [2usize, 4, 8].iter().map(move |&num_warps| KernelConfig {
                        block_m: 1,
                        block_n,
                        block_k: 1,
                        num_warps,
                        num_stages: 1,
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_space_is_a_full_grid() {
        let space = ConfigSpace::gemm_default();
        assert_eq!(space.candidates.len(), 3 * 3 * 2 * 2);
    }

    #[test]
    fn cache_key_distinguishes_configs() {
        let a = KernelConfig::default_compute();
        let b = KernelConfig { num_warps: 8, ..a };
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn untuned_config_is_small() {
        let cfg = KernelConfig::untuned();
        assert!(cfg.block_m < KernelConfig::default_compute().block_m);
    }

    #[test]
    fn rowwise_space_only_varies_columns_and_warps() {
        for cfg in ConfigSpace::rowwise_default().candidates {
            assert_eq!(cfg.block_m, 1);
            assert_eq!(cfg.num_stages, 1);
        }
    }
}
