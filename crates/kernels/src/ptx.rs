//! A miniature PTX-like intermediate representation and its lowering to
//! SASS, used to reproduce the §5.6 comparison (Listings 8 and 9 of the
//! paper): the PTX one writes is *not* the schedule that executes, because
//! `ptxas -O3` interleaves the asynchronous copies with address arithmetic
//! when lowering — so scheduling must happen at the SASS level.

use sass::Program;
use serde::{Deserialize, Serialize};

use crate::builder::ScheduleBuilder;

/// A (heavily simplified) PTX instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PtxInstr {
    /// `add.s32 %rD, %rS, imm` — address arithmetic.
    AddS32 {
        /// Destination virtual register.
        dst: String,
        /// Source virtual register.
        src: String,
        /// Immediate addend.
        imm: i64,
    },
    /// `selp.b32 %rD, a, b, %p` — predicate select (copy-size selection).
    Selp {
        /// Destination virtual register.
        dst: String,
        /// Value when the predicate is true.
        a: i64,
        /// Value when the predicate is false.
        b: i64,
    },
    /// `cp.async.cg.shared.global [dst], [src], bytes` — asynchronous copy.
    CpAsync {
        /// Shared-memory destination virtual register.
        dst: String,
        /// Global-memory source virtual register.
        src: String,
        /// Copy size in bytes.
        bytes: u32,
    },
    /// `cp.async.commit_group`.
    CpAsyncCommit,
}

/// A PTX basic block.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtxBlock {
    /// Instructions in program order.
    pub instructions: Vec<PtxInstr>,
}

impl PtxBlock {
    /// The address-calculation + asynchronous-copy sequence of Listing 8.
    #[must_use]
    pub fn listing8() -> Self {
        let mut instructions = Vec::new();
        for (i, imm) in [18432i64, 20480, 22528].iter().enumerate() {
            instructions.push(PtxInstr::AddS32 {
                dst: format!("%r12{}", i + 1),
                src: "%r204".to_string(),
                imm: *imm,
            });
        }
        instructions.push(PtxInstr::Selp {
            dst: "%r120".to_string(),
            a: 16,
            b: 0,
        });
        for i in 0..4 {
            instructions.push(PtxInstr::CpAsync {
                dst: format!("%r1{}", 19 + 2 * i),
                src: format!("%rd8{}", 6 + i),
                bytes: 16,
            });
        }
        instructions.push(PtxInstr::CpAsyncCommit);
        PtxBlock { instructions }
    }

    /// Renders the block as PTX text (the "what the programmer can reorder"
    /// view of §5.6).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for inst in &self.instructions {
            let line = match inst {
                PtxInstr::AddS32 { dst, src, imm } => format!("add.s32 {dst}, {src}, {imm};"),
                PtxInstr::Selp { dst, a, b } => format!("selp.b32 {dst}, {a}, {b}, %p10;"),
                PtxInstr::CpAsync { dst, src, bytes } => {
                    format!("cp.async.cg.shared.global [ {dst} + 0 ], [ {src} + 0 ], {bytes:#x};")
                }
                PtxInstr::CpAsyncCommit => "cp.async.commit_group ;".to_string(),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Lowers the block to SASS the way `ptxas -O3` does: every `cp.async`
    /// becomes an `LDGSTS`, and the independent address arithmetic (`IMAD`)
    /// is interleaved between the copies by the compiler — regardless of the
    /// order the PTX author wrote (Listing 9).
    ///
    /// # Panics
    ///
    /// Panics if the lowering produces an unparsable listing (a bug).
    #[must_use]
    pub fn lower_o3(&self) -> Program {
        let mut builder = ScheduleBuilder::new();
        let copies: Vec<&PtxInstr> = self
            .instructions
            .iter()
            .filter(|i| matches!(i, PtxInstr::CpAsync { .. }))
            .collect();
        let arithmetic: Vec<&PtxInstr> = self
            .instructions
            .iter()
            .filter(|i| matches!(i, PtxInstr::AddS32 { .. } | PtxInstr::Selp { .. }))
            .collect();
        let mut arith_iter = arithmetic.into_iter();
        for (j, copy) in copies.iter().enumerate() {
            if let PtxInstr::CpAsync { .. } = copy {
                builder.inst(
                    &[],
                    None,
                    Some(0),
                    2,
                    &format!(
                        "LDGSTS.E.BYPASS.128 [R219+{:#x}], desc[UR16][R10.64+{:#x}], P0",
                        0x4000 + j * 0x800,
                        j * 0x200
                    ),
                );
            }
            if let Some(a) = arith_iter.next() {
                match a {
                    PtxInstr::AddS32 { imm, .. } => builder.inst(
                        &[],
                        None,
                        None,
                        6,
                        &format!("IMAD.WIDE R{}, R9, {imm:#x}, R10", 18 + 2 * j),
                    ),
                    PtxInstr::Selp { a, b, .. } => {
                        builder.inst(&[], None, None, 4, &format!("SEL R33, {a:#x}, {b:#x}, P0"))
                    }
                    PtxInstr::CpAsync { .. } | PtxInstr::CpAsyncCommit => {}
                }
            }
        }
        builder.inst(&[], None, None, 1, "LDGDEPBAR");
        builder.build().expect("lowered listing must parse")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing8_matches_the_paper_structure() {
        let block = PtxBlock::listing8();
        let text = block.to_text();
        assert_eq!(text.matches("cp.async.cg.shared.global").count(), 4);
        assert_eq!(text.matches("add.s32").count(), 3);
        assert!(text.contains("cp.async.commit_group"));
    }

    #[test]
    fn lowering_translates_copies_to_ldgsts_and_interleaves_imads() {
        let block = PtxBlock::listing8();
        let sass = block.lower_o3();
        let text = sass.to_string();
        assert_eq!(text.matches("LDGSTS").count(), 4);
        assert!(text.contains("IMAD.WIDE"));
        assert!(text.contains("LDGDEPBAR"));
        // The interleaving is the point of §5.6: an IMAD appears between two
        // LDGSTS lines even though the PTX listed all copies contiguously.
        let lines: Vec<&str> = text.lines().collect();
        let first_ldgsts = lines.iter().position(|l| l.contains("LDGSTS")).unwrap();
        let last_ldgsts = lines.iter().rposition(|l| l.contains("LDGSTS")).unwrap();
        assert!(lines[first_ldgsts..last_ldgsts]
            .iter()
            .any(|l| l.contains("IMAD")));
    }

    #[test]
    fn reordering_ptx_does_not_change_the_lowered_schedule_shape() {
        // Reordering the PTX address arithmetic relative to the copies
        // produces the same interleaved SASS shape — PTX-level scheduling
        // cannot control SASS placement.
        let block = PtxBlock::listing8();
        let mut reordered = block.clone();
        reordered.instructions.reverse();
        let a = block.lower_o3().to_string();
        let b = reordered.lower_o3().to_string();
        assert_eq!(a.matches("LDGSTS").count(), b.matches("LDGSTS").count());
        let pattern = |t: &str| {
            t.lines()
                .map(|l| if l.contains("LDGSTS") { 'M' } else { 'A' })
                .collect::<String>()
        };
        assert_eq!(pattern(&a), pattern(&b));
    }
}
