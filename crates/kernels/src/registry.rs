//! The workload registry: a declarative catalog of named kernel suites.
//!
//! The paper evaluates one fixed suite (Table 2). The registry generalizes
//! that into named workload families so the suite driver, the harness
//! binaries (`--suite`) and the examples can select what to optimize:
//!
//! * **`table2`** — the six paper kernels at their Table-2 shapes (the
//!   default; selecting it reproduces the historical behaviour exactly),
//! * **`attention`** — a flash-attention-style family sweeping sequence
//!   length, head count and head dimension,
//! * **`reduction`** — a reduction/scan-style family of row-wise
//!   softmax/rmsnorm kernels sweeping row count and row width.
//!
//! Each suite is pure data: a list of [`SuiteEntry`]s (label, kernel kind,
//! full-scale problem shape). [`WorkloadSuite::specs`] applies the same
//! shape-shrinking rule as [`KernelSpec::scaled`], so every suite supports
//! the harness `--scale`/`--smoke` machinery unchanged.

use crate::suite::{KernelKind, KernelSpec, ProblemShape};

/// One kernel of a workload suite: a display label plus the fully-specified
/// kernel at its full-scale shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteEntry {
    /// Row label used by the harness tables (for `table2` these are the
    /// historical kernel names).
    pub label: &'static str,
    /// Which kernel.
    pub kind: KernelKind,
    /// The full-scale problem shape (`--scale` divides it down).
    pub shape: ProblemShape,
}

impl SuiteEntry {
    /// The kernel spec of this entry at problem scale `1/scale`.
    #[must_use]
    pub fn spec(&self, scale: usize) -> KernelSpec {
        KernelSpec {
            kind: self.kind,
            shape: self.shape,
        }
        .scaled_by(scale)
    }
}

/// A named, declaratively-defined kernel suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSuite {
    /// Registry name (`--suite` value).
    pub name: &'static str,
    /// One-line description shown by `--suite help` style listings.
    pub description: &'static str,
    /// The kernels of the suite, in report order.
    pub entries: Vec<SuiteEntry>,
}

impl WorkloadSuite {
    /// The kernel specs of the suite at problem scale `1/scale`, in suite
    /// order.
    #[must_use]
    pub fn specs(&self, scale: usize) -> Vec<KernelSpec> {
        self.entries.iter().map(|e| e.spec(scale)).collect()
    }
}

fn paper_entry(kind: KernelKind) -> SuiteEntry {
    SuiteEntry {
        label: kind.name(),
        kind,
        shape: KernelSpec::paper(kind).shape,
    }
}

fn table2() -> WorkloadSuite {
    WorkloadSuite {
        name: "table2",
        description: "the six LLM kernels of the paper's Table 2 (default)",
        entries: KernelKind::all().into_iter().map(paper_entry).collect(),
    }
}

fn attention() -> WorkloadSuite {
    let entry = |label, heads, seq, head_dim, batch| SuiteEntry {
        label,
        kind: KernelKind::FlashAttention,
        shape: ProblemShape {
            batch,
            m: heads,
            n: seq,
            k: head_dim,
        },
    };
    WorkloadSuite {
        name: "attention",
        description: "flash-attention-style kernels across sequence/head shapes",
        entries: vec![
            entry("attn-s4096-h4", 4, 4096, 32, 1),
            entry("attn-s2048-h8", 8, 2048, 64, 1),
            entry("attn-s8192-h4", 4, 8192, 32, 1),
            entry("attn-b4-s1024-h8", 8, 1024, 64, 4),
        ],
    }
}

fn reduction() -> WorkloadSuite {
    let entry = |label, kind, rows, cols| SuiteEntry {
        label,
        kind,
        shape: ProblemShape {
            batch: 1,
            m: rows,
            n: cols,
            k: 1,
        },
    };
    WorkloadSuite {
        name: "reduction",
        description: "reduction/scan-style row-wise kernels across row shapes",
        entries: vec![
            entry("sm-r512-c4096", KernelKind::Softmax, 512, 4096),
            entry("sm-r128-c16384", KernelKind::Softmax, 128, 16384),
            entry("rms-r131072-c64", KernelKind::Rmsnorm, 32 * 4096, 64),
            entry("rms-r16384-c128", KernelKind::Rmsnorm, 16384, 128),
        ],
    }
}

/// All registered workload suites, the default (`table2`) first.
#[must_use]
pub fn workload_suites() -> Vec<WorkloadSuite> {
    vec![table2(), attention(), reduction()]
}

/// Looks a suite up by name (case-insensitive).
#[must_use]
pub fn find_suite(name: &str) -> Option<WorkloadSuite> {
    let wanted = name.to_ascii_lowercase();
    workload_suites().into_iter().find(|s| s.name == wanted)
}

/// Names of the registered suites, in registry order.
#[must_use]
pub fn suite_names() -> Vec<&'static str> {
    workload_suites().iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_at_least_three_suites_with_table2_first() {
        let names = suite_names();
        assert!(names.len() >= 3);
        assert_eq!(names[0], "table2");
        assert!(names.contains(&"attention"));
        assert!(names.contains(&"reduction"));
    }

    #[test]
    fn table2_matches_the_historical_default_suite() {
        // The default suite must reproduce KernelKind::all() at the paper
        // shapes exactly: same kinds, same labels, same scaled specs.
        let suite = find_suite("table2").unwrap();
        for scale in [1, 8, 64] {
            let specs = suite.specs(scale);
            let legacy: Vec<KernelSpec> = KernelKind::all()
                .into_iter()
                .map(|kind| KernelSpec::scaled(kind, scale))
                .collect();
            assert_eq!(specs, legacy);
        }
        let labels: Vec<&str> = suite.entries.iter().map(|e| e.label).collect();
        let legacy_labels: Vec<&str> = KernelKind::all().iter().map(KernelKind::name).collect();
        assert_eq!(labels, legacy_labels);
    }

    #[test]
    fn every_suite_entry_generates_a_valid_schedule() {
        use crate::config::KernelConfig;
        use crate::generator::{generate, ScheduleStyle};
        for suite in workload_suites() {
            for spec in suite.specs(64) {
                let config = if spec.kind.is_compute_bound() {
                    KernelConfig {
                        block_m: 32,
                        block_n: 32,
                        block_k: 32,
                        num_warps: 4,
                        num_stages: 2,
                    }
                } else {
                    KernelConfig {
                        block_m: 1,
                        block_n: 512,
                        block_k: 1,
                        num_warps: 4,
                        num_stages: 1,
                    }
                };
                let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
                assert!(
                    kernel.program.instruction_count() > 20,
                    "{}/{} generated a degenerate program",
                    suite.name,
                    spec.kind.name()
                );
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_rejects_unknown_names() {
        assert!(find_suite("TABLE2").is_some());
        assert!(find_suite("Attention").is_some());
        assert!(find_suite("nonexistent").is_none());
    }

    #[test]
    fn new_families_are_non_trivial() {
        let attention = find_suite("attention").unwrap();
        assert!(attention.entries.len() >= 3);
        assert!(attention
            .entries
            .iter()
            .all(|e| e.kind == KernelKind::FlashAttention));
        // The shapes genuinely differ (it is a sweep, not a repeat).
        let shapes: Vec<_> = attention.entries.iter().map(|e| e.shape).collect();
        for (i, a) in shapes.iter().enumerate() {
            for b in &shapes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        let reduction = find_suite("reduction").unwrap();
        assert!(reduction.entries.len() >= 3);
        assert!(reduction.entries.iter().all(|e| !e.kind.is_compute_bound()));
    }
}
