//! SASS generators for the evaluated kernels.
//!
//! These generators play the role of `ptxas -O3` applied to Triton-emitted
//! PTX: they produce *valid* schedules (correct barriers, sufficient stall
//! counts, ascending `LDGSTS` groups) for the six kernels of Table 2, but —
//! like the real compiler — they leave performance on the table in ways the
//! paper documents:
//!
//! * some asynchronous copies (`LDGSTS`) are placed late in the loop body,
//!   after the tensor-core block, instead of right after the stage barrier,
//! * `.reuse` operand hints are separated from their consumers by an
//!   interposed `LDGSTS` (the Figure 9 pattern),
//! * predicated-off `@!PT LDS` instructions from pipeline peeling occupy
//!   issue slots ahead of useful copies (the Figure 13 pattern),
//! * memory-bound kernels issue their global loads just-in-time instead of
//!   hoisting them.
//!
//! [`ScheduleStyle::Expert`] emits the same instruction multiset with the
//! expert placement; it stands in for the hand-tuned reference libraries
//! (cuBLAS, FlashAttention-2) the paper compares against.

use gpusim::LaunchConfig;
use sass::Program;
use serde::{Deserialize, Serialize};

use crate::builder::ScheduleBuilder;
use crate::config::KernelConfig;
use crate::suite::{KernelKind, KernelSpec};

/// Constant-bank offset of the first input pointer.
pub const PARAM_A: u32 = 0x160;
/// Constant-bank offset of the second input pointer.
pub const PARAM_B: u32 = 0x168;
/// Constant-bank offset of the output pointer.
pub const PARAM_OUT: u32 = 0x170;
/// Constant-bank offset of the scalar parameter (LeakyReLU slope, epsilon).
pub const PARAM_SCALAR: u32 = 0x178;

/// How aggressively the generated schedule is tuned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleStyle {
    /// The `-O3`-like schedule produced by the compilation pipeline: valid,
    /// but with the suboptimal placements described in the module docs.
    Baseline,
    /// An expert hand schedule: identical instruction multiset, loads hoisted
    /// to the top of each stage, reuse pairs kept adjacent.
    Expert,
}

/// A generated kernel: its name, SASS program and launch configuration.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// Kernel name (used for the cubin symbol and the lookup cache).
    pub name: String,
    /// The SASS schedule.
    pub program: Program,
    /// The launch configuration to execute/measure it with.
    pub launch: LaunchConfig,
}

/// Generates the SASS program and launch configuration for a kernel.
///
/// # Panics
///
/// Panics if the generator emits an unparsable line (a bug in this crate,
/// covered by tests over the full kernel suite).
#[must_use]
pub fn generate(spec: &KernelSpec, config: &KernelConfig, style: ScheduleStyle) -> GeneratedKernel {
    match spec.kind {
        KernelKind::FusedFeedForward | KernelKind::MatmulLeakyRelu | KernelKind::BatchMatmul => {
            gemm_like(spec, config, style, 0)
        }
        KernelKind::FlashAttention => gemm_like(spec, config, style, 4),
        KernelKind::Softmax => rowwise(spec, config, style, false),
        KernelKind::Rmsnorm => rowwise(spec, config, style, true),
    }
}

/// The shape component of a kernel's symbol name: suites may contain the
/// same kernel kind at several problem shapes, and the deploy-time lookup
/// cache keys on the symbol name, so the shape must be part of it.
fn shape_key(spec: &KernelSpec) -> String {
    let s = &spec.shape;
    format!("b{}x{}x{}x{}", s.batch, s.m, s.n, s.k)
}

fn default_params() -> Vec<(u32, u64)> {
    vec![
        (PARAM_A, 0x10_0000),
        (PARAM_B, 0x20_0000),
        (PARAM_OUT, 0x30_0000),
        (PARAM_SCALAR, 0x3dcc_cccd),
    ]
}

/// Per-stage instruction counts derived from the tile configuration.
#[derive(Debug, Clone, Copy)]
struct GemmShape {
    n_ldgsts: usize,
    n_lds: usize,
    n_hmma: usize,
    n_late: usize,
    pairs: usize,
}

fn gemm_shape(spec: &KernelSpec, config: &KernelConfig) -> GemmShape {
    let n_ldgsts = (((config.block_m + config.block_n) * config.block_k * 2)
        / (512 * config.num_warps))
        .clamp(2, 8);
    let n_lds = (config.block_m / 16).clamp(2, 6);
    let n_hmma = ((config.block_m / 16) * (config.block_n / 16) * (config.block_k / 16).max(1)
        / config.num_warps)
        .clamp(4, 16);
    let n_late = (n_ldgsts / 2).max(1);
    let pairs = (spec.main_loop_iterations(config) / 2).max(1);
    GemmShape {
        n_ldgsts,
        n_lds,
        n_hmma,
        n_late,
        pairs,
    }
}

/// One pipeline stage ("half" of the unrolled-by-two main loop).
struct StagePlan {
    /// Shared-memory base register written by this stage's copies.
    write_base: &'static str,
    /// Write barrier set by this stage's copies.
    copy_barrier: u8,
    /// Shared-memory base register read by this stage's `LDS`.
    read_base: &'static str,
    /// Barrier the `LDS` group waits on (set by the *previous* stage).
    read_wait: u8,
    /// First destination register of the `LDS` group.
    lds_dest: usize,
    /// Write barrier set by the `LDS` group.
    lds_barrier: u8,
    /// Global pointer register advanced by this stage.
    global_ptr: &'static str,
}

fn emit_stage(
    b: &mut ScheduleBuilder,
    shape: &GemmShape,
    plan: &StagePlan,
    style: ScheduleStyle,
    extra_sfu: usize,
) {
    b.inst(&[], None, None, 1, "BAR.SYNC 0x0");

    // The asynchronous-copy group for the *other* buffer (ascending offsets).
    let ldgsts: Vec<String> = (0..shape.n_ldgsts)
        .map(|j| {
            format!(
                "{} LDGSTS.E.BYPASS.128 [{}+{:#x}], desc[UR16][{}.64+{:#x}] ;",
                crate::builder::cc(&[], None, Some(plan.copy_barrier), false, 2),
                plan.write_base,
                j * 0x100,
                plan.global_ptr,
                j * 0x200,
            )
        })
        .collect();
    let advance = format!(
        "{} IMAD.WIDE {ptr}, R8, 0x2000, {ptr} ;",
        crate::builder::cc(&[], None, None, false, 6),
        ptr = plan.global_ptr,
    );
    // A predicated-off LDS left over from pipeline peeling (Figure 13).
    let pred_lds = format!(
        "{} @!PT LDS.U.128 R{}, [{}+0x40] ;",
        crate::builder::cc(&[], None, None, false, 1),
        plan.lds_dest + 4 * shape.n_lds,
        plan.read_base,
    );
    // The shared-memory loads feeding the tensor cores.
    let lds: Vec<String> = (0..shape.n_lds)
        .map(|j| {
            format!(
                "{} LDS.128 R{}, [{}+{:#x}] ;",
                crate::builder::cc(&[plan.read_wait], None, Some(plan.lds_barrier), false, 2),
                plan.lds_dest + 4 * j,
                plan.read_base,
                j * 0x100,
            )
        })
        .collect();
    // The tensor-core block. Every instruction reuses the first fragment
    // register, so adjacent HMMAs benefit from the operand-reuse cache.
    let hmma: Vec<String> = (0..shape.n_hmma)
        .map(|i| {
            let acc = 162 + 4 * i;
            let b_frag = plan.lds_dest + 4 * (1 + i % (shape.n_lds - 1).max(1));
            format!(
                "{} HMMA.16816.F32 R{acc}, R{}.reuse, R{b_frag}, R{acc} ;",
                crate::builder::cc(&[plan.lds_barrier], None, None, false, 2),
                plan.lds_dest,
            )
        })
        .collect();
    // Optional special-function block (softmax scaling inside attention).
    let sfu: Vec<String> = (0..extra_sfu)
        .map(|s| {
            format!(
                "{} MUFU.EX2 R{}, R{} ;",
                crate::builder::cc(&[plan.lds_barrier], None, Some(plan.lds_barrier), false, 2),
                40 + 4 * s,
                plan.lds_dest + 4 * (s % shape.n_lds),
            )
        })
        .collect();

    match style {
        ScheduleStyle::Expert => {
            // Address advance, then copies (their latency overlaps the whole
            // stage), then the loads and the compute block with reuse pairs
            // kept adjacent.
            b.raw(advance);
            b.extend(ldgsts);
            b.extend(lds);
            b.extend(hmma);
            b.extend(sfu);
            b.raw(pred_lds);
        }
        ScheduleStyle::Baseline => {
            // `-O3`-like: most copies early, but the last `n_late` copies are
            // stranded after the compute block, a predicated LDS occupies an
            // issue slot ahead of one of them, and one straggler splits a
            // reuse pair.
            let n_early = shape.n_ldgsts - shape.n_late;
            let (early, late) = ldgsts.split_at(n_early);
            b.raw(advance);
            b.extend(early.to_vec());
            b.extend(lds);
            let mut hmma_iter = hmma.into_iter();
            let mut late_iter = late.iter().cloned();
            // First two HMMAs, then a straggler copy splitting the reuse pair.
            if let Some(h) = hmma_iter.next() {
                b.raw(h);
            }
            if let Some(l) = late_iter.next() {
                b.raw(pred_lds.clone());
                b.raw(l);
            }
            for h in hmma_iter {
                b.raw(h);
            }
            b.extend(sfu);
            b.extend(late_iter);
        }
    }
}

fn gemm_like(
    spec: &KernelSpec,
    config: &KernelConfig,
    style: ScheduleStyle,
    extra_sfu: usize,
) -> GeneratedKernel {
    let shape = gemm_shape(spec, config);
    let mut b = ScheduleBuilder::new();

    // Prologue: load kernel parameters, derive per-block pointers.
    b.inst(&[], None, None, 4, &format!("MOV R2, c[0x0][{PARAM_A:#x}]"));
    b.inst(&[], None, None, 4, &format!("MOV R4, c[0x0][{PARAM_B:#x}]"));
    b.inst(
        &[],
        None,
        None,
        4,
        &format!("MOV R6, c[0x0][{PARAM_OUT:#x}]"),
    );
    b.inst(&[], None, None, 13, "S2R R0, SR_CTAID.X");
    b.inst(&[], None, None, 4, "IMAD R10, R0, 0x1000, R2");
    b.inst(&[], None, None, 4, "IMAD R12, R0, 0x1000, R4");
    b.inst(&[], None, None, 4, "IMAD R60, R0, 0x800, R6");
    b.inst(&[], None, None, 4, "MOV R8, 0x1");
    b.inst(&[], None, None, 4, "MOV R74, 0x0");
    b.inst(&[], None, None, 4, "MOV R76, 0x4000");
    b.inst(&[], None, None, 4, "MOV R78, 0x0");
    b.inst(&[], None, None, 4, "MOV R79, 0x4000");
    b.inst(&[], None, None, 4, "MOV R90, 0x0");
    b.inst(&[], None, None, 4, &format!("MOV R91, {:#x}", shape.pairs));
    for i in 0..shape.n_hmma {
        b.inst(&[], None, None, 1, &format!("MOV R{}, 0x0", 162 + 4 * i));
    }
    // Prologue prefetch of the first tile into buffer 0.
    for j in 0..shape.n_ldgsts {
        b.inst(
            &[],
            None,
            Some(0),
            2,
            &format!(
                "LDGSTS.E.BYPASS.128 [R74+{:#x}], desc[UR16][R10.64+{:#x}]",
                j * 0x100,
                j * 0x200
            ),
        );
    }
    b.inst(&[], None, None, 6, "IMAD.WIDE R10, R8, 0x2000, R10");
    b.inst(&[], None, None, 6, "IMAD.WIDE R12, R8, 0x2000, R12");

    // Main loop, unrolled by two so each half uses a fixed buffer and
    // barrier set (as ptxas does for double-buffered Triton kernels).
    b.label(".L_main");
    emit_stage(
        &mut b,
        &shape,
        &StagePlan {
            write_base: "R76",
            copy_barrier: 2,
            read_base: "R78",
            read_wait: 0,
            lds_dest: 80,
            lds_barrier: 4,
            global_ptr: "R10",
        },
        style,
        extra_sfu,
    );
    emit_stage(
        &mut b,
        &shape,
        &StagePlan {
            write_base: "R74",
            copy_barrier: 0,
            read_base: "R79",
            read_wait: 2,
            lds_dest: 112,
            lds_barrier: 5,
            global_ptr: "R12",
        },
        style,
        extra_sfu,
    );
    b.inst(&[], None, None, 4, "IADD3 R90, R90, 0x1, RZ");
    b.inst(&[], None, None, 4, "ISETP.LT.AND P1, PT, R90, R91, PT");
    b.inst(&[], None, None, 6, "@P1 BRA `(.L_main)");

    // Epilogue: LeakyReLU on every accumulator, then the stores.
    for i in 0..shape.n_hmma {
        let acc = 162 + 4 * i;
        let scaled = 40 + 4 * (i % 8);
        let selected = 44 + 4 * (i % 8);
        b.inst(
            &[],
            None,
            None,
            4,
            &format!("FSETP.GT.AND P2, PT, R{acc}, RZ, PT"),
        );
        b.inst(
            &[],
            None,
            None,
            4,
            &format!("FMUL R{scaled}, R{acc}, c[0x0][{PARAM_SCALAR:#x}]"),
        );
        b.inst(
            &[],
            None,
            None,
            4,
            &format!("SEL R{selected}, R{acc}, R{scaled}, P2"),
        );
        b.inst(
            &[],
            None,
            None,
            2,
            &format!("STG.E [R60+{:#x}], R{selected}", i * 0x10),
        );
    }
    b.inst(&[], None, None, 5, "EXIT");

    let program = b.build().expect("generated GEMM listing must parse");
    let launch = LaunchConfig {
        grid_blocks: spec.grid_blocks(config),
        warps_per_block: config.num_warps,
        // Large double-buffered tiles consume enough shared memory that only
        // one block fits per SM, as is typical for Triton GEMM kernels.
        blocks_per_sm: 1,
        params: default_params(),
        work_per_block: spec.work_per_block(config),
        max_cycles: 4_000_000,
    };
    GeneratedKernel {
        name: format!(
            "{}_{}_{}",
            spec.kind.name(),
            shape_key(spec),
            config.cache_key()
        ),
        program,
        launch,
    }
}

fn rowwise(
    spec: &KernelSpec,
    config: &KernelConfig,
    style: ScheduleStyle,
    squared: bool,
) -> GeneratedKernel {
    let n_ldg = ((config.block_n * 2) / (512 * config.num_warps)).clamp(2, 8);
    let iters = spec.main_loop_iterations(config).max(1);
    let mut b = ScheduleBuilder::new();

    b.inst(&[], None, None, 4, &format!("MOV R2, c[0x0][{PARAM_A:#x}]"));
    b.inst(
        &[],
        None,
        None,
        4,
        &format!("MOV R6, c[0x0][{PARAM_OUT:#x}]"),
    );
    b.inst(&[], None, None, 13, "S2R R0, SR_CTAID.X");
    b.inst(&[], None, None, 4, "IMAD R10, R0, 0x2000, R2");
    b.inst(&[], None, None, 4, "IMAD R60, R0, 0x2000, R6");
    b.inst(&[], None, None, 4, "MOV R90, 0x0");
    b.inst(&[], None, None, 4, &format!("MOV R91, {iters:#x}"));
    b.inst(&[], None, None, 4, "MOV R130, 0x0");

    b.label(".L_main");
    b.inst(&[], None, None, 6, "IADD3 R10, R10, 0x400, RZ");
    let loads: Vec<String> = (0..n_ldg)
        .map(|j| {
            format!(
                "{} LDG.E.128 R{}, [R10+{:#x}] ;",
                crate::builder::cc(&[], None, Some(0), false, 2),
                80 + 4 * j,
                j * 0x80
            )
        })
        .collect();
    let reduces: Vec<String> = (0..n_ldg)
        .map(|j| {
            let src = 80 + 4 * j;
            let body = if squared {
                format!("FFMA R130, R{src}, R{src}, R130")
            } else {
                format!("FADD R130, R130, R{src}")
            };
            format!(
                "{} {body} ;",
                crate::builder::cc(&[0], None, None, false, 4)
            )
        })
        .collect();
    match style {
        ScheduleStyle::Expert => {
            // All loads issued back to back, their latencies overlap, then
            // the reduction chain consumes them.
            b.extend(loads);
            b.extend(reduces);
        }
        ScheduleStyle::Baseline => {
            // Just-in-time loads: each pair of loads is issued right before
            // its consumers, serialising the memory latencies.
            let mut loads = loads.into_iter();
            let mut reduces = reduces.into_iter();
            loop {
                let l: Vec<String> = loads.by_ref().take(2).collect();
                let r: Vec<String> = reduces.by_ref().take(2).collect();
                if l.is_empty() && r.is_empty() {
                    break;
                }
                b.extend(l);
                b.extend(r);
            }
        }
    }
    b.inst(&[], None, None, 4, "IADD3 R90, R90, 0x1, RZ");
    b.inst(&[], None, None, 4, "ISETP.LT.AND P1, PT, R90, R91, PT");
    b.inst(&[], None, None, 6, "@P1 BRA `(.L_main)");

    // Epilogue: normalise the last fragments by the reduced value and store.
    let recip = if squared { "MUFU.RSQ" } else { "MUFU.RCP" };
    b.inst(&[], None, Some(1), 2, &format!("{recip} R131, R130"));
    for j in 0..n_ldg {
        let src = 80 + 4 * j;
        let out = 132 + 4 * j;
        b.inst(&[1], None, None, 4, &format!("FMUL R{out}, R{src}, R131"));
        b.inst(
            &[],
            None,
            None,
            2,
            &format!("STG.E.128 [R60+{:#x}], R{out}", j * 0x80),
        );
    }
    b.inst(&[], None, None, 5, "EXIT");

    let program = b.build().expect("generated row-wise listing must parse");
    let launch = LaunchConfig {
        grid_blocks: spec.grid_blocks(config),
        warps_per_block: config.num_warps,
        blocks_per_sm: 4,
        params: default_params(),
        work_per_block: spec.work_per_block(config),
        max_cycles: 4_000_000,
    };
    GeneratedKernel {
        name: format!(
            "{}_{}_{}",
            spec.kind.name(),
            shape_key(spec),
            config.cache_key()
        ),
        program,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{simulate_launch, GpuConfig};

    fn small_config(kind: KernelKind) -> KernelConfig {
        if kind.is_compute_bound() {
            KernelConfig {
                block_m: 32,
                block_n: 32,
                block_k: 32,
                num_warps: 4,
                num_stages: 2,
            }
        } else {
            KernelConfig {
                block_m: 1,
                block_n: 512,
                block_k: 1,
                num_warps: 4,
                num_stages: 1,
            }
        }
    }

    #[test]
    fn every_kernel_generates_a_valid_hazard_free_schedule() {
        let gpu = GpuConfig::small();
        for kind in KernelKind::all() {
            let spec = KernelSpec::scaled(kind, 16);
            let config = small_config(kind);
            for style in [ScheduleStyle::Baseline, ScheduleStyle::Expert] {
                let kernel = generate(&spec, &config, style);
                assert!(
                    kernel.program.instruction_count() > 20,
                    "{kind:?} program too small"
                );
                let run = simulate_launch(&gpu, &kernel.program, &kernel.launch);
                assert!(run.sm.completed, "{kind:?}/{style:?} did not complete");
                assert_eq!(run.sm.hazards, 0, "{kind:?}/{style:?} has hazards");
                assert!(run.runtime_us > 0.0);
            }
        }
    }

    #[test]
    fn expert_and_baseline_compute_the_same_result() {
        let gpu = GpuConfig::small();
        for kind in KernelKind::all() {
            let spec = KernelSpec::scaled(kind, 16);
            let config = small_config(kind);
            let base = generate(&spec, &config, ScheduleStyle::Baseline);
            let expert = generate(&spec, &config, ScheduleStyle::Expert);
            assert_eq!(
                base.program.instruction_count(),
                expert.program.instruction_count(),
                "{kind:?}: styles must contain the same instructions"
            );
            let rb = simulate_launch(&gpu, &base.program, &base.launch);
            let re = simulate_launch(&gpu, &expert.program, &expert.launch);
            assert_eq!(
                rb.sm.output_digest, re.sm.output_digest,
                "{kind:?}: reordering must not change the output"
            );
        }
    }

    #[test]
    fn expert_schedule_is_at_least_as_fast_as_baseline() {
        let gpu = GpuConfig::small();
        for kind in KernelKind::all() {
            let spec = KernelSpec::scaled(kind, 16);
            let config = small_config(kind);
            let base = generate(&spec, &config, ScheduleStyle::Baseline);
            let expert = generate(&spec, &config, ScheduleStyle::Expert);
            let rb = simulate_launch(&gpu, &base.program, &base.launch);
            let re = simulate_launch(&gpu, &expert.program, &expert.launch);
            assert!(
                re.sm.cycles <= rb.sm.cycles,
                "{kind:?}: expert ({}) should not be slower than baseline ({})",
                re.sm.cycles,
                rb.sm.cycles
            );
        }
    }

    #[test]
    fn expert_is_strictly_faster_for_compute_kernels() {
        let gpu = GpuConfig::small();
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 8);
        let config = small_config(KernelKind::MatmulLeakyRelu);
        let base = generate(&spec, &config, ScheduleStyle::Baseline);
        let expert = generate(&spec, &config, ScheduleStyle::Expert);
        let rb = simulate_launch(&gpu, &base.program, &base.launch);
        let re = simulate_launch(&gpu, &expert.program, &expert.launch);
        assert!(
            re.sm.cycles < rb.sm.cycles,
            "expert ({}) must beat baseline ({})",
            re.sm.cycles,
            rb.sm.cycles
        );
    }

    #[test]
    fn generated_kernels_use_async_copies_and_tensor_cores() {
        let spec = KernelSpec::scaled(KernelKind::FusedFeedForward, 16);
        let kernel = generate(&spec, &small_config(spec.kind), ScheduleStyle::Baseline);
        let text = kernel.program.to_string();
        assert!(text.contains("LDGSTS"));
        assert!(text.contains("HMMA"));
        assert!(text.contains("@!PT LDS"));
        assert!(text.contains(".reuse"));
        assert!(text.contains("BAR.SYNC"));
    }

    #[test]
    fn memory_instruction_indices_are_plentiful() {
        // The CuAsmRL action space needs memory instructions to act on.
        let spec = KernelSpec::scaled(KernelKind::BatchMatmul, 16);
        let kernel = generate(&spec, &small_config(spec.kind), ScheduleStyle::Baseline);
        assert!(kernel.program.memory_instruction_indices().len() >= 10);
    }

    #[test]
    fn launch_config_reflects_the_problem_shape() {
        let spec = KernelSpec::paper(KernelKind::BatchMatmul);
        let config = KernelConfig::default_compute();
        let kernel = generate(&spec, &config, ScheduleStyle::Baseline);
        assert_eq!(kernel.launch.grid_blocks, spec.grid_blocks(&config));
        assert_eq!(kernel.launch.warps_per_block, config.num_warps);
        assert!(!kernel.launch.params.is_empty());
    }
}
