//! Low-level helpers for emitting scheduled SASS text.

use sass::{Program, SassError};

/// Formats a control code string `[B..:R.:W.:.:S..]`.
///
/// `wait` lists the barrier indices the instruction waits on; `read`/`write`
/// are the barriers it sets; `yld` is the yield flag and `stall` the stall
/// count.
#[must_use]
pub fn cc(wait: &[u8], read: Option<u8>, write: Option<u8>, yld: bool, stall: u8) -> String {
    let mut wait_field = String::new();
    for i in 0..6u8 {
        if wait.contains(&i) {
            wait_field.push(char::from(b'0' + i));
        } else {
            wait_field.push('-');
        }
    }
    let read_field = read.map_or("-".to_string(), |b| b.to_string());
    let write_field = write.map_or("-".to_string(), |b| b.to_string());
    format!(
        "[B{wait_field}:R{read_field}:W{write_field}:{}:S{stall:02}]",
        if yld { "Y" } else { "-" }
    )
}

/// An incrementally built SASS listing.
#[derive(Debug, Clone, Default)]
pub struct ScheduleBuilder {
    lines: Vec<String>,
}

impl ScheduleBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        ScheduleBuilder { lines: Vec::new() }
    }

    /// Appends a raw listing line (an already-formatted instruction).
    pub fn raw(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Appends an instruction with the given control code fields.
    pub fn inst(
        &mut self,
        wait: &[u8],
        read: Option<u8>,
        write: Option<u8>,
        stall: u8,
        body: &str,
    ) {
        self.lines
            .push(format!("{} {body} ;", cc(wait, read, write, false, stall)));
    }

    /// Appends several already-formatted lines.
    pub fn extend(&mut self, lines: impl IntoIterator<Item = String>) {
        self.lines.extend(lines);
    }

    /// Appends a label.
    pub fn label(&mut self, name: &str) {
        self.lines.push(format!("{name}:"));
    }

    /// Number of lines emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Returns true if nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The listing text.
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        out
    }

    /// Parses the listing into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an error if any emitted line fails to parse (a generator bug).
    pub fn build(&self) -> Result<Program, SassError> {
        self.text().parse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_code_formatting() {
        assert_eq!(cc(&[], None, Some(2), true, 2), "[B------:R-:W2:Y:S02]");
        assert_eq!(
            cc(&[0, 5], Some(1), None, false, 12),
            "[B0----5:R1:W-:-:S12]"
        );
    }

    #[test]
    fn builder_produces_parsable_listing() {
        let mut b = ScheduleBuilder::new();
        b.inst(&[], None, None, 4, "MOV R1, 0x7");
        b.label(".L_x");
        b.inst(&[], None, Some(0), 2, "LDG.E R2, [R4]");
        b.inst(&[0], None, None, 4, "IADD3 R3, R2, R1, RZ");
        b.inst(&[], None, None, 5, "EXIT");
        let program = b.build().unwrap();
        assert_eq!(program.instruction_count(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn raw_and_extend_append_lines() {
        let mut b = ScheduleBuilder::new();
        b.raw("[B------:R-:W-:-:S04] MOV R1, 0x1 ;");
        b.extend(vec!["[B------:R-:W-:-:S05] EXIT ;".to_string()]);
        assert_eq!(b.build().unwrap().instruction_count(), 2);
    }
}
