//! Synthetic LLM kernel workloads for the CuAsmRL reproduction.
//!
//! The paper evaluates CuAsmRL on six specialized Triton kernels for large
//! language models (Table 2). This crate provides:
//!
//! * [`KernelKind`] / [`KernelSpec`] — the evaluated kernel suite and its
//!   problem shapes,
//! * [`WorkloadSuite`] / [`find_suite`] — the workload registry: named,
//!   declarative kernel suites (the Table-2 default plus attention- and
//!   reduction-style families) selected with `--suite`,
//! * [`KernelConfig`] / [`ConfigSpace`] — tile configurations and the
//!   autotuning search space,
//! * [`generate`] — SASS generators that stand in for `ptxas -O3` applied to
//!   Triton-emitted PTX, producing valid schedules with the realistic
//!   inefficiencies the paper's RL agent learns to remove,
//! * [`TritonPipeline`] / [`Autotuner`] — the Triton-like compilation
//!   pipeline and the grid-search autotuner of §3.1,
//! * [`BaselineSystem`] — the PyTorch / cuBLAS / FlashAttention-2 / Cutlass
//!   comparison points of Figure 6,
//! * [`PtxBlock`] — the miniature PTX model used to reproduce the §5.6
//!   PTX-vs-SASS comparison.
//!
//! # Example
//!
//! ```
//! use kernels::{generate, KernelConfig, KernelKind, KernelSpec, ScheduleStyle};
//!
//! let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
//! let kernel = generate(&spec, &KernelConfig::default_compute(), ScheduleStyle::Baseline);
//! assert!(kernel.program.memory_instruction_indices().len() > 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod generator;
mod ptx;
mod reference;
mod registry;
mod suite;
mod triton;

pub use builder::{cc, ScheduleBuilder};
pub use config::{ConfigSpace, KernelConfig};
pub use generator::{
    generate, GeneratedKernel, ScheduleStyle, PARAM_A, PARAM_B, PARAM_OUT, PARAM_SCALAR,
};
pub use ptx::{PtxBlock, PtxInstr};
pub use reference::{baseline_runtime_us, elementwise_pass_runtime_us, BaselineSystem};
pub use registry::{find_suite, suite_names, workload_suites, SuiteEntry, WorkloadSuite};
pub use suite::{KernelKind, KernelSpec, ProblemShape};
pub use triton::{Autotuner, CompiledKernel, TritonPipeline, TuningRecord, TuningResult};
