//! The evaluated kernel suite (Table 2 of the paper).

use serde::{Deserialize, Serialize};

use crate::config::{ConfigSpace, KernelConfig};

/// The six representative LLM kernels evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Fused feed-forward block (two projections + activation), `fused_ff`.
    FusedFeedForward,
    /// GEMM fused with a LeakyReLU epilogue, `mmLeakyReLu`.
    MatmulLeakyRelu,
    /// Batched matrix multiplication, `bmm`.
    BatchMatmul,
    /// Fused self-attention (flash-attention style).
    FlashAttention,
    /// Row-wise softmax (memory-bound).
    Softmax,
    /// Root-mean-square layer normalization (memory-bound).
    Rmsnorm,
}

impl KernelKind {
    /// All kernels in the order of Figure 6.
    #[must_use]
    pub fn all() -> [KernelKind; 6] {
        [
            KernelKind::BatchMatmul,
            KernelKind::FusedFeedForward,
            KernelKind::FlashAttention,
            KernelKind::MatmulLeakyRelu,
            KernelKind::Softmax,
            KernelKind::Rmsnorm,
        ]
    }

    /// Short name used in figures and in the deploy-time cache key.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::FusedFeedForward => "fused_ff",
            KernelKind::MatmulLeakyRelu => "mmLeakyReLu",
            KernelKind::BatchMatmul => "bmm",
            KernelKind::FlashAttention => "flash-attention",
            KernelKind::Softmax => "softmax",
            KernelKind::Rmsnorm => "rmsnorm",
        }
    }

    /// Looks a kernel up by its [`KernelKind::name`] (case-insensitive), the
    /// inverse used wherever kernel kinds arrive as text — request
    /// validation in the optimization service, config files, CLIs.
    #[must_use]
    pub fn by_name(name: &str) -> Option<KernelKind> {
        let wanted = name.to_ascii_lowercase();
        KernelKind::all()
            .into_iter()
            .find(|kind| kind.name().to_ascii_lowercase() == wanted)
    }

    /// True for the compute-bound kernels of Table 2.
    #[must_use]
    pub fn is_compute_bound(&self) -> bool {
        matches!(
            self,
            KernelKind::FusedFeedForward
                | KernelKind::MatmulLeakyRelu
                | KernelKind::BatchMatmul
                | KernelKind::FlashAttention
        )
    }

    /// The default autotuning space for this kernel.
    #[must_use]
    pub fn config_space(&self) -> ConfigSpace {
        if self.is_compute_bound() {
            ConfigSpace::gemm_default()
        } else {
            ConfigSpace::rowwise_default()
        }
    }
}

/// Problem dimensions. GEMM-family kernels use `batch`/`m`/`n`/`k`;
/// attention uses `batch`/`heads`/`seq_len`/`head_dim`; row-wise kernels use
/// `rows`/`cols`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProblemShape {
    /// Batch dimension.
    pub batch: usize,
    /// Output rows (GEMM) or attention heads.
    pub m: usize,
    /// Output columns (GEMM) or sequence length.
    pub n: usize,
    /// Reduction dimension (GEMM) or head dimension.
    pub k: usize,
}

/// A fully specified evaluated kernel: which kernel and at which shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Which kernel.
    pub kind: KernelKind,
    /// The problem shape.
    pub shape: ProblemShape,
}

impl KernelSpec {
    /// The shape used in the paper's evaluation (Table 2).
    #[must_use]
    pub fn paper(kind: KernelKind) -> Self {
        let shape = match kind {
            KernelKind::FusedFeedForward | KernelKind::MatmulLeakyRelu => ProblemShape {
                batch: 1,
                m: 512,
                n: 512,
                k: 2048,
            },
            KernelKind::BatchMatmul => ProblemShape {
                batch: 4,
                m: 512,
                n: 512,
                k: 2048,
            },
            KernelKind::FlashAttention => ProblemShape {
                batch: 1,
                m: 4,    // heads
                n: 4096, // sequence length
                k: 32,   // head dimension
            },
            KernelKind::Softmax => ProblemShape {
                batch: 1,
                m: 512,  // rows
                n: 4096, // columns
                k: 1,
            },
            KernelKind::Rmsnorm => ProblemShape {
                batch: 1,
                m: 32 * 4096, // heads x sequence length rows
                n: 64,        // head dimension columns
                k: 1,
            },
        };
        KernelSpec { kind, shape }
    }

    /// A scaled-down version of the paper shape, keeping every structural
    /// feature but dividing the large dimensions by `factor`. Used by unit
    /// tests and examples that must run in milliseconds.
    #[must_use]
    pub fn scaled(kind: KernelKind, factor: usize) -> Self {
        KernelSpec::paper(kind).scaled_by(factor)
    }

    /// Divides this spec's large dimensions by `factor` (floored at 32),
    /// shrinking only the dimensions that are large for the kernel family —
    /// the same rule [`KernelSpec::scaled`] applies to the paper shapes,
    /// available for any base shape (e.g. the workload-registry suites).
    #[must_use]
    pub fn scaled_by(mut self, factor: usize) -> Self {
        let f = factor.max(1);
        let shrink = |v: usize| (v / f).max(32);
        match self.kind {
            KernelKind::FusedFeedForward
            | KernelKind::MatmulLeakyRelu
            | KernelKind::BatchMatmul => {
                self.shape.m = shrink(self.shape.m);
                self.shape.n = shrink(self.shape.n);
                self.shape.k = shrink(self.shape.k);
            }
            KernelKind::FlashAttention => {
                self.shape.n = shrink(self.shape.n);
            }
            KernelKind::Softmax => {
                self.shape.m = shrink(self.shape.m);
                self.shape.n = shrink(self.shape.n);
            }
            KernelKind::Rmsnorm => {
                self.shape.m = shrink(self.shape.m);
            }
        }
        self
    }

    /// Number of thread blocks in the launch grid for a given tile
    /// configuration.
    #[must_use]
    pub fn grid_blocks(&self, config: &KernelConfig) -> u64 {
        let s = &self.shape;
        match self.kind {
            KernelKind::FusedFeedForward
            | KernelKind::MatmulLeakyRelu
            | KernelKind::BatchMatmul => {
                let tiles_m = s.m.div_ceil(config.block_m.max(1)) as u64;
                let tiles_n = s.n.div_ceil(config.block_n.max(1)) as u64;
                s.batch as u64 * tiles_m * tiles_n
            }
            KernelKind::FlashAttention => {
                // One block per (head, query tile).
                let query_tiles = s.n.div_ceil(config.block_m.max(1)) as u64;
                s.batch as u64 * s.m as u64 * query_tiles
            }
            KernelKind::Softmax => s.m as u64,
            KernelKind::Rmsnorm => s.m.div_ceil(64).max(1) as u64,
        }
    }

    /// Useful work per thread block, used to convert runtime into the
    /// throughput plotted in Figure 6 (FLOPs for compute-bound kernels,
    /// bytes for memory-bound kernels).
    #[must_use]
    pub fn work_per_block(&self, config: &KernelConfig) -> f64 {
        let s = &self.shape;
        match self.kind {
            KernelKind::FusedFeedForward
            | KernelKind::MatmulLeakyRelu
            | KernelKind::BatchMatmul => {
                2.0 * config.block_m as f64 * config.block_n as f64 * s.k as f64
            }
            KernelKind::FlashAttention => {
                // QK^T plus PV for one query tile against the full sequence.
                4.0 * config.block_m as f64 * s.n as f64 * s.k as f64
            }
            KernelKind::Softmax => 2.0 * 2.0 * s.n as f64, // read + write each row, fp16
            KernelKind::Rmsnorm => 2.0 * 2.0 * s.n as f64 * 64.0,
        }
    }

    /// Number of main-loop iterations a thread block executes (the K loop
    /// for GEMMs, the key/value loop for attention, the column loop for
    /// row-wise kernels).
    #[must_use]
    pub fn main_loop_iterations(&self, config: &KernelConfig) -> usize {
        let s = &self.shape;
        match self.kind {
            KernelKind::FusedFeedForward
            | KernelKind::MatmulLeakyRelu
            | KernelKind::BatchMatmul => s.k.div_ceil(config.block_k.max(1)).max(1),
            KernelKind::FlashAttention => s.n.div_ceil(config.block_n.max(1)).max(1),
            KernelKind::Softmax | KernelKind::Rmsnorm => s.n.div_ceil(config.block_n.max(1)).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes_match_table_2() {
        let ff = KernelSpec::paper(KernelKind::FusedFeedForward);
        assert_eq!(
            (ff.shape.batch, ff.shape.m, ff.shape.n, ff.shape.k),
            (1, 512, 512, 2048)
        );
        let bmm = KernelSpec::paper(KernelKind::BatchMatmul);
        assert_eq!(bmm.shape.batch, 4);
        let fa = KernelSpec::paper(KernelKind::FlashAttention);
        assert_eq!((fa.shape.m, fa.shape.n, fa.shape.k), (4, 4096, 32));
        let sm = KernelSpec::paper(KernelKind::Softmax);
        assert_eq!((sm.shape.m, sm.shape.n), (512, 4096));
    }

    #[test]
    fn grid_blocks_cover_the_problem() {
        let spec = KernelSpec::paper(KernelKind::MatmulLeakyRelu);
        let cfg = KernelConfig::default_compute();
        assert_eq!(spec.grid_blocks(&cfg), (512 / 64) * (512 / 64));
        let bmm = KernelSpec::paper(KernelKind::BatchMatmul);
        assert_eq!(bmm.grid_blocks(&cfg), 4 * (512 / 64) * (512 / 64));
    }

    #[test]
    fn loop_iterations_cover_the_reduction() {
        let spec = KernelSpec::paper(KernelKind::FusedFeedForward);
        let cfg = KernelConfig::default_compute();
        assert_eq!(spec.main_loop_iterations(&cfg), 2048 / 32);
    }

    #[test]
    fn scaling_shrinks_but_preserves_structure() {
        let spec = KernelSpec::scaled(KernelKind::FusedFeedForward, 8);
        assert!(spec.shape.k < 2048);
        assert!(spec.shape.k >= 32);
        let cfg = KernelConfig::default_compute();
        assert!(spec.main_loop_iterations(&cfg) >= 1);
    }

    #[test]
    fn by_name_round_trips_every_kind_and_rejects_unknown_names() {
        for kind in KernelKind::all() {
            assert_eq!(KernelKind::by_name(kind.name()), Some(kind));
            assert_eq!(
                KernelKind::by_name(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(KernelKind::by_name("nonexistent"), None);
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(KernelKind::all().len(), 6);
        assert!(KernelKind::FlashAttention.is_compute_bound());
        assert!(!KernelKind::Softmax.is_compute_bound());
        assert_eq!(KernelKind::Rmsnorm.name(), "rmsnorm");
        assert!(!KernelKind::Softmax.config_space().candidates.is_empty());
    }
}
