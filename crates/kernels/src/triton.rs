//! A Triton-like compilation pipeline and its autotuner (§3.1, §4.1).
//!
//! The real CuAsmRL reuses OpenAI Triton's pipeline: an autotuner enumerates
//! user-provided kernel configurations, the best one is compiled to a cubin,
//! and CuAsmRL intercepts that cubin. This module provides the same two
//! stages on top of the synthetic kernel generators:
//!
//! * [`TritonPipeline::compile`] — kernel spec + configuration → [`Cubin`],
//! * [`Autotuner::tune`] — grid search over a [`ConfigSpace`], measuring each
//!   candidate on the simulated GPU and caching the best configuration.

use gpusim::{measure, GpuConfig, LaunchConfig, MeasureOptions};
use sass::Cubin;
use serde::{Deserialize, Serialize};

use crate::config::{ConfigSpace, KernelConfig};
use crate::generator::{generate, GeneratedKernel, ScheduleStyle};
use crate::suite::KernelSpec;

/// The compilation pipeline: source (kernel spec) → SASS → cubin.
#[derive(Debug, Clone)]
pub struct TritonPipeline {
    gpu: GpuConfig,
}

/// A compiled kernel: the cubin plus the launch configuration and the name
/// of the kernel symbol inside the cubin.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The kernel symbol name.
    pub name: String,
    /// The binary container.
    pub cubin: Cubin,
    /// Launch configuration for execution and measurement.
    pub launch: LaunchConfig,
    /// The configuration the kernel was compiled with.
    pub config: KernelConfig,
}

impl TritonPipeline {
    /// Creates a pipeline targeting the given device.
    #[must_use]
    pub fn new(gpu: GpuConfig) -> Self {
        TritonPipeline { gpu }
    }

    /// The target device.
    #[must_use]
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Compiles a kernel with a specific configuration, producing the cubin
    /// CuAsmRL will intercept.
    #[must_use]
    pub fn compile(&self, spec: &KernelSpec, config: &KernelConfig) -> CompiledKernel {
        let GeneratedKernel {
            name,
            program,
            launch,
        } = generate(spec, config, ScheduleStyle::Baseline);
        let cubin = Cubin::from_kernel("sm_80", &name, &program);
        CompiledKernel {
            name,
            cubin,
            launch,
            config: *config,
        }
    }
}

/// One autotuning measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningRecord {
    /// The configuration measured.
    pub config: KernelConfig,
    /// Mean measured runtime in microseconds.
    pub runtime_us: f64,
}

/// The result of an autotuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// The best (lowest-runtime) configuration.
    pub best: KernelConfig,
    /// Mean runtime of the best configuration, in microseconds.
    pub best_runtime_us: f64,
    /// Every configuration measured, in enumeration order.
    pub records: Vec<TuningRecord>,
}

/// Grid-search autotuner over kernel configurations (§3.1).
#[derive(Debug, Clone)]
pub struct Autotuner {
    gpu: GpuConfig,
    options: MeasureOptions,
}

impl Autotuner {
    /// Creates an autotuner that measures with the paper's protocol
    /// (100 warm-up + 100 measured iterations).
    #[must_use]
    pub fn new(gpu: GpuConfig) -> Self {
        Autotuner {
            gpu,
            options: MeasureOptions::default(),
        }
    }

    /// Overrides the measurement options (useful for fast tests).
    #[must_use]
    pub fn with_options(mut self, options: MeasureOptions) -> Self {
        self.options = options;
        self
    }

    /// Enumerates the configuration space, measures every candidate and
    /// greedily selects the fastest (§3.1).
    ///
    /// # Panics
    ///
    /// Panics if `space` is empty.
    #[must_use]
    pub fn tune(&self, spec: &KernelSpec, space: &ConfigSpace) -> TuningResult {
        assert!(
            !space.candidates.is_empty(),
            "autotuning space must contain at least one configuration"
        );
        let mut records = Vec::with_capacity(space.candidates.len());
        for config in &space.candidates {
            let kernel = generate(spec, config, ScheduleStyle::Baseline);
            let measurement = measure(&self.gpu, &kernel.program, &kernel.launch, &self.options);
            records.push(TuningRecord {
                config: *config,
                runtime_us: measurement.mean_us,
            });
        }
        let best = records
            .iter()
            .min_by(|a, b| a.runtime_us.total_cmp(&b.runtime_us))
            .expect("non-empty records");
        TuningResult {
            best: best.config,
            best_runtime_us: best.runtime_us,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{KernelKind, KernelSpec};

    fn fast_options() -> MeasureOptions {
        MeasureOptions {
            warmup: 0,
            repeats: 3,
            noise_std: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn compile_produces_an_interceptable_cubin() {
        let pipeline = TritonPipeline::new(GpuConfig::small());
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let compiled = pipeline.compile(&spec, &KernelConfig::default_compute());
        let program = compiled.cubin.kernel_program(&compiled.name).unwrap();
        assert!(program.instruction_count() > 20);
        assert_eq!(compiled.cubin.kernel_names(), vec![compiled.name.as_str()]);
        assert_eq!(pipeline.gpu().name, GpuConfig::small().name);
    }

    #[test]
    fn autotuner_picks_the_fastest_configuration() {
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16);
        let tuner = Autotuner::new(GpuConfig::small()).with_options(fast_options());
        let mut space = ConfigSpace::small();
        space.candidates.push(KernelConfig::untuned());
        let result = tuner.tune(&spec, &space);
        assert_eq!(result.records.len(), space.candidates.len());
        let min = result
            .records
            .iter()
            .map(|r| r.runtime_us)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(result.best_runtime_us, min);
        // The deliberately poor configuration must not win.
        assert_ne!(result.best, KernelConfig::untuned());
    }

    #[test]
    fn tuning_result_is_deterministic() {
        let spec = KernelSpec::scaled(KernelKind::Softmax, 16);
        let tuner = Autotuner::new(GpuConfig::small()).with_options(fast_options());
        let space = KernelKind::Softmax.config_space();
        let small = ConfigSpace {
            candidates: space.candidates.into_iter().take(4).collect(),
        };
        let a = tuner.tune(&spec, &small);
        let b = tuner.tune(&spec, &small);
        assert_eq!(a.best, b.best);
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_space_panics() {
        let spec = KernelSpec::scaled(KernelKind::Softmax, 16);
        let tuner = Autotuner::new(GpuConfig::small()).with_options(fast_options());
        let _ = tuner.tune(&spec, &ConfigSpace { candidates: vec![] });
    }
}
