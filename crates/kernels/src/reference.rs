//! Reference baselines for the Figure 6 comparison.
//!
//! The paper compares CuAsmRL (on top of Triton) against PyTorch eager
//! (dispatching to cuBLAS), hand-optimized reference kernels
//! (FlashAttention-2), and Cutlass with its default configuration. None of
//! those closed or CUDA-only code bases can run here, so each is modelled by
//! the schedule/configuration property that determines its performance:
//!
//! * **Reference** (cuBLAS / FlashAttention-2): the expert schedule at a
//!   well-tuned configuration — the performance target CuAsmRL approaches.
//! * **Torch eager**: for kernels that are a single library call (bmm,
//!   fused feed-forward, attention) it equals the reference; for fused
//!   kernels that eager mode cannot fuse (GEMM+LeakyReLU, softmax, rmsnorm)
//!   it pays one extra element-wise memory pass over the output.
//! * **Cutlass (default configuration)**: the expert schedule but at the
//!   untuned default tile configuration, which the paper observes to be an
//!   order of magnitude slower than Triton.

use gpusim::{measure, GpuConfig, LaunchConfig, MeasureOptions};
use serde::{Deserialize, Serialize};

use crate::builder::ScheduleBuilder;
use crate::config::KernelConfig;
use crate::generator::{generate, ScheduleStyle, PARAM_A, PARAM_OUT};
use crate::suite::{KernelKind, KernelSpec};

/// The systems Figure 6 compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineSystem {
    /// PyTorch eager composition of library kernels.
    Torch,
    /// The hand-optimized reference library (cuBLAS or FlashAttention-2).
    Reference,
    /// Cutlass with its default (untuned) configuration.
    Cutlass,
}

impl BaselineSystem {
    /// Whether the paper evaluates this baseline for the given kernel.
    #[must_use]
    pub fn applies_to(&self, kind: KernelKind) -> bool {
        match self {
            BaselineSystem::Torch | BaselineSystem::Reference => true,
            BaselineSystem::Cutlass => kind == KernelKind::MatmulLeakyRelu,
        }
    }
}

/// Runtime of a baseline system on a kernel, in microseconds, or `None` when
/// the baseline does not apply to that kernel.
#[must_use]
pub fn baseline_runtime_us(
    gpu: &GpuConfig,
    spec: &KernelSpec,
    tuned: &KernelConfig,
    system: BaselineSystem,
    options: &MeasureOptions,
) -> Option<f64> {
    if !system.applies_to(spec.kind) {
        return None;
    }
    match system {
        BaselineSystem::Reference => Some(expert_runtime(gpu, spec, tuned, options)),
        BaselineSystem::Cutlass => {
            let untuned = KernelConfig::untuned();
            Some(expert_runtime(gpu, spec, &untuned, options))
        }
        BaselineSystem::Torch => {
            let base = expert_runtime(gpu, spec, tuned, options);
            if needs_extra_pass(spec.kind) {
                Some(base + elementwise_pass_runtime_us(gpu, spec, options))
            } else {
                Some(base)
            }
        }
    }
}

fn needs_extra_pass(kind: KernelKind) -> bool {
    matches!(
        kind,
        KernelKind::MatmulLeakyRelu | KernelKind::Softmax | KernelKind::Rmsnorm
    )
}

fn expert_runtime(
    gpu: &GpuConfig,
    spec: &KernelSpec,
    config: &KernelConfig,
    options: &MeasureOptions,
) -> f64 {
    let kernel = generate(spec, config, ScheduleStyle::Expert);
    measure(gpu, &kernel.program, &kernel.launch, options).mean_us
}

/// Runtime of an extra element-wise pass over the output tensor: the cost
/// eager-mode composition pays when it cannot fuse an epilogue or a
/// normalisation into the producing kernel.
#[must_use]
pub fn elementwise_pass_runtime_us(
    gpu: &GpuConfig,
    spec: &KernelSpec,
    options: &MeasureOptions,
) -> f64 {
    let kernel = elementwise_kernel(spec);
    measure(gpu, &kernel.0, &kernel.1, options).mean_us
}

/// A simple load-multiply-store kernel over the output of `spec`.
fn elementwise_kernel(spec: &KernelSpec) -> (sass::Program, LaunchConfig) {
    let mut b = ScheduleBuilder::new();
    b.inst(&[], None, None, 4, &format!("MOV R2, c[0x0][{PARAM_A:#x}]"));
    b.inst(
        &[],
        None,
        None,
        4,
        &format!("MOV R6, c[0x0][{PARAM_OUT:#x}]"),
    );
    b.inst(&[], None, None, 13, "S2R R0, SR_CTAID.X");
    b.inst(&[], None, None, 4, "IMAD R10, R0, 0x400, R2");
    b.inst(&[], None, None, 4, "IMAD R60, R0, 0x400, R6");
    for j in 0..4 {
        b.inst(
            &[],
            None,
            Some(0),
            2,
            &format!("LDG.E.128 R{}, [R10+{:#x}]", 80 + 4 * j, j * 0x80),
        );
    }
    for j in 0..4 {
        b.inst(
            &[0],
            None,
            None,
            4,
            &format!("FMUL R{}, R{}, 0x3dcccccd", 100 + 4 * j, 80 + 4 * j),
        );
    }
    for j in 0..4 {
        b.inst(
            &[],
            None,
            None,
            2,
            &format!("STG.E.128 [R60+{:#x}], R{}", j * 0x80, 100 + 4 * j),
        );
    }
    b.inst(&[], None, None, 5, "EXIT");
    let program = b.build().expect("element-wise listing must parse");
    // One block per 512 output elements (fp16).
    let outputs = (spec.shape.m * spec.shape.n * spec.shape.batch).max(512);
    let launch = LaunchConfig {
        grid_blocks: (outputs / 512).max(1) as u64,
        warps_per_block: 4,
        blocks_per_sm: 4,
        params: vec![(PARAM_A, 0x30_0000), (PARAM_OUT, 0x40_0000)],
        work_per_block: 512.0 * 2.0,
        max_cycles: 1_000_000,
    };
    (program, launch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_options() -> MeasureOptions {
        MeasureOptions {
            warmup: 0,
            repeats: 2,
            noise_std: 0.0,
            seed: 3,
        }
    }

    #[test]
    fn cutlass_only_applies_to_fused_gemm() {
        assert!(BaselineSystem::Cutlass.applies_to(KernelKind::MatmulLeakyRelu));
        assert!(!BaselineSystem::Cutlass.applies_to(KernelKind::Softmax));
        assert!(BaselineSystem::Torch.applies_to(KernelKind::Softmax));
    }

    #[test]
    fn cutlass_default_is_much_slower_than_reference() {
        let gpu = GpuConfig::small();
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 8);
        let tuned = KernelConfig::default_compute();
        let opts = fast_options();
        let reference =
            baseline_runtime_us(&gpu, &spec, &tuned, BaselineSystem::Reference, &opts).unwrap();
        let cutlass =
            baseline_runtime_us(&gpu, &spec, &tuned, BaselineSystem::Cutlass, &opts).unwrap();
        assert!(
            cutlass > reference * 2.0,
            "untuned cutlass ({cutlass:.1}us) should be much slower than reference ({reference:.1}us)"
        );
    }

    #[test]
    fn torch_pays_an_extra_pass_for_fused_kernels() {
        let gpu = GpuConfig::small();
        let spec = KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 8);
        let tuned = KernelConfig::default_compute();
        let opts = fast_options();
        let torch = baseline_runtime_us(&gpu, &spec, &tuned, BaselineSystem::Torch, &opts).unwrap();
        let reference =
            baseline_runtime_us(&gpu, &spec, &tuned, BaselineSystem::Reference, &opts).unwrap();
        assert!(torch > reference);
    }

    #[test]
    fn torch_equals_reference_for_plain_library_calls() {
        let gpu = GpuConfig::small();
        let spec = KernelSpec::scaled(KernelKind::BatchMatmul, 16);
        let tuned = KernelConfig {
            block_m: 32,
            block_n: 32,
            block_k: 32,
            num_warps: 4,
            num_stages: 2,
        };
        let opts = fast_options();
        let torch = baseline_runtime_us(&gpu, &spec, &tuned, BaselineSystem::Torch, &opts).unwrap();
        let reference =
            baseline_runtime_us(&gpu, &spec, &tuned, BaselineSystem::Reference, &opts).unwrap();
        assert_eq!(torch, reference);
    }

    #[test]
    fn elementwise_pass_is_fast_but_nonzero() {
        let gpu = GpuConfig::small();
        let spec = KernelSpec::scaled(KernelKind::Softmax, 16);
        let t = elementwise_pass_runtime_us(&gpu, &spec, &fast_options());
        assert!(t > 0.0);
    }
}
