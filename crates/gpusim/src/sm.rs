//! The cycle-level streaming-multiprocessor model.
//!
//! One [`SmSimulator::run`] call executes a kernel's SASS program for a set
//! of resident warps on a single SM, honouring:
//!
//! * per-instruction **stall counts** (the warp may not issue its next
//!   instruction earlier),
//! * **scoreboard wait barriers** set by variable-latency instructions and
//!   consumed by the wait mask,
//! * **warp scheduling** (greedy-then-oldest): when the current warp cannot
//!   issue, the scheduler switches to another eligible warp (thread-level
//!   parallelism),
//! * **structural hazards** on the load/store unit and the tensor pipe,
//! * **register-bank conflicts** and the operand-reuse cache, which is
//!   invalidated by warp switches (§5.7.1),
//! * the **fixed pipeline latencies** of ALU instructions — a schedule that
//!   under-stalls a producer yields stale values, which are propagated and
//!   counted as hazards,
//! * the **LDGSTS group rule**: asynchronous copies that fill consecutive
//!   shared-memory slices must issue in ascending order (§3.5 "additional
//!   dependencies"); violations corrupt the transferred data.

use std::collections::HashMap;

use sass::{Instruction, LatencyClass, MemorySpace, Mnemonic, Operand, Program, Register};
use serde::{Deserialize, Serialize};

use crate::compiled::{CompiledProgram, Flow};
use crate::config::GpuConfig;
use crate::exec::{execute, ConstantBank, ExecContext};
use crate::memory::{MemCounters, MemorySubsystem};
use crate::regfile::{RegisterFile, ReuseCache};

/// Aggregate result of simulating one thread block (a set of resident warps)
/// on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmReport {
    /// Total cycles until every warp exited (or the cycle limit was hit).
    pub cycles: u64,
    /// Dynamic instructions issued.
    pub instructions_issued: u64,
    /// Cycles in which at least one instruction was issued.
    pub issue_active_cycles: u64,
    /// Cycles in which at least one warp was eligible to issue.
    pub eligible_cycles: u64,
    /// Cycles during which the load/store unit was occupied.
    pub lsu_busy_cycles: u64,
    /// Cycles during which the tensor pipe was occupied.
    pub tensor_busy_cycles: u64,
    /// Extra issue cycles paid to register-bank conflicts.
    pub bank_conflict_cycles: u64,
    /// Memory traffic counters.
    pub mem: MemCounters,
    /// Number of data hazards observed (stale register reads plus LDGSTS
    /// group violations). A correct schedule has zero.
    pub hazards: u64,
    /// Order-insensitive digest of the final global-memory contents.
    pub output_digest: u64,
    /// False if the simulation hit the cycle limit before all warps exited.
    pub completed: bool,
}

impl SmReport {
    /// Instructions per cycle over elapsed cycles.
    #[must_use]
    pub fn ipc_elapsed(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions_issued as f64 / self.cycles as f64
        }
    }

    /// Instructions per cycle over cycles in which the SM had issuable work.
    #[must_use]
    pub fn ipc_active(&self) -> f64 {
        if self.eligible_cycles == 0 {
            0.0
        } else {
            self.instructions_issued as f64 / self.eligible_cycles as f64
        }
    }

    /// Fraction of cycles in which an instruction was issued.
    #[must_use]
    pub fn sm_busy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issue_active_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles in which the LSU was busy.
    #[must_use]
    pub fn mem_busy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.lsu_busy_cycles.min(self.cycles)) as f64 / self.cycles as f64
        }
    }
}

/// The full result of a simulation: the timing report plus the final memory
/// image (used by probabilistic testing to inspect output buffers).
#[derive(Debug)]
pub struct SimOutput {
    /// Timing and counter report.
    pub report: SmReport,
    /// Final memory state.
    pub memory: MemorySubsystem,
}

#[derive(Debug, Clone)]
pub(crate) struct Warp {
    pub(crate) pc: usize,
    stall_until: u64,
    pub(crate) finished: bool,
    at_barrier: bool,
    regs: RegisterFile,
    /// Outstanding completion cycles per scoreboard barrier.
    barrier_pending: Vec<Vec<u64>>,
    /// State of the current LDGSTS ascending-offset group: (shared base
    /// register, last offset seen).
    ldgsts_group: Option<(Register, i64)>,
    ldgsts_violations: u64,
    yielded: bool,
}

/// True when the entries strictly greater than `cycle` in `a` and `b` form
/// equal multisets. Deadlines at or before `cycle` are *dead*: every wait or
/// queue-occupancy check they could still gate has already been satisfied,
/// so they can differ without affecting any future cycle.
pub(crate) fn live_multiset_eq(a: &[u64], b: &[u64], cycle: u64) -> bool {
    let live_count = |xs: &[u64]| xs.iter().filter(|&&x| x > cycle).count();
    if live_count(a) != live_count(b) {
        return false;
    }
    a.iter()
        .filter(|&&x| x > cycle)
        .all(|&x| a.iter().filter(|&&y| y == x).count() == b.iter().filter(|&&y| y == x).count())
}

impl Warp {
    fn new(warp_id: usize, block_id: usize, scoreboards: usize) -> Self {
        let mut regs = RegisterFile::new();
        // Thread/block identity registers conventionally live in R0/R1 right
        // after the prologue of generated kernels; we also pre-seed a couple
        // of well-known registers so that generators may rely on them.
        regs.write(Register::Gpr(252), (warp_id * 32) as u64, 0);
        regs.write(Register::Gpr(253), block_id as u64, 0);
        Warp {
            pc: 0,
            stall_until: 0,
            finished: false,
            at_barrier: false,
            regs,
            barrier_pending: vec![Vec::new(); scoreboards],
            ldgsts_group: None,
            ldgsts_violations: 0,
            yielded: false,
        }
    }

    fn barriers_clear(&self, mask: u8, cycle: u64) -> bool {
        (0..self.barrier_pending.len() as u8)
            .all(|b| mask & (1 << b) == 0 || self.barrier_clear(b, cycle))
    }

    fn barrier_clear(&self, barrier: u8, cycle: u64) -> bool {
        self.barrier_pending[barrier as usize]
            .iter()
            .all(|&done| done <= cycle)
    }

    fn all_barriers_clear(&self, cycle: u64) -> bool {
        (0..self.barrier_pending.len() as u8).all(|b| self.barrier_clear(b, cycle))
    }

    fn prune_barriers(&mut self, cycle: u64) {
        for pending in &mut self.barrier_pending {
            pending.retain(|&done| done > cycle);
        }
    }

    /// Monotone hazard tally attributed to this warp so far (stale reads
    /// plus LDGSTS ascending-group violations).
    pub(crate) fn hazard_tally(&self) -> u64 {
        self.regs.hazard_count() as u64 + self.ldgsts_violations
    }

    /// Allocation-reusing copy of `other` into `self` (see
    /// [`SimState::assign_from`]).
    fn assign_from(&mut self, other: &Warp) {
        self.pc = other.pc;
        self.stall_until = other.stall_until;
        self.finished = other.finished;
        self.at_barrier = other.at_barrier;
        self.regs.assign_from(&other.regs);
        self.barrier_pending.clone_from(&other.barrier_pending);
        self.ldgsts_group = other.ldgsts_group;
        self.ldgsts_violations = other.ldgsts_violations;
        self.yielded = other.yielded;
    }

    /// True when `self` and `other` are *evolution-equivalent* at `cycle`:
    /// every eligibility check and issue from `cycle` onwards behaves
    /// identically. Monotone tallies (the stale-read list, the LDGSTS
    /// violation count) are excluded — they never feed back into execution —
    /// and deadlines that can no longer be observed (stall/readiness times
    /// at or before `cycle`, drained scoreboard completions) are treated as
    /// dead rather than compared exactly.
    fn equivalent_at(&self, other: &Warp, cycle: u64) -> bool {
        let deadline_eq = |a: u64, b: u64| a == b || (a <= cycle && b <= cycle);
        self.pc == other.pc
            && self.finished == other.finished
            && self.at_barrier == other.at_barrier
            && self.yielded == other.yielded
            && self.ldgsts_group == other.ldgsts_group
            && deadline_eq(self.stall_until, other.stall_until)
            && self.regs.equivalent_at(&other.regs, cycle)
            && self.barrier_pending.len() == other.barrier_pending.len()
            && self
                .barrier_pending
                .iter()
                .zip(&other.barrier_pending)
                .all(|(a, b)| live_multiset_eq(a, b, cycle))
    }
}

/// Simulator for one SM running one thread block's worth of warps.
#[derive(Debug, Clone)]
pub struct SmSimulator {
    config: GpuConfig,
}

impl SmSimulator {
    /// Creates a simulator for the given device.
    #[must_use]
    pub fn new(config: GpuConfig) -> Self {
        SmSimulator { config }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Fixed pipeline latency of a (non-memory) instruction, per the
    /// architecture backend's opcode latency table.
    fn fixed_latency(&self, inst: &Instruction) -> u64 {
        self.config.arch.fixed_latency(inst.opcode())
    }

    /// Runs `program` with `warps` resident warps for block `block_id`,
    /// using `constants` as the kernel parameter bank.
    ///
    /// The program is lowered once through [`CompiledProgram::compile`] and
    /// the cycle loop interprets the dense form; results are bit-identical
    /// to [`SmSimulator::run_reference`].
    ///
    /// The simulation stops when every warp has executed `EXIT` or when
    /// `max_cycles` is reached (reported through [`SmReport::completed`]).
    #[must_use]
    pub fn run(
        &self,
        program: &Program,
        warps: usize,
        block_id: usize,
        constants: &ConstantBank,
        max_cycles: u64,
    ) -> SimOutput {
        let compiled = CompiledProgram::compile(program, &self.config);
        self.run_compiled(&compiled, warps, block_id, constants, max_cycles)
    }

    /// Runs an already-lowered program (see [`CompiledProgram::compile`]);
    /// compile once per (schedule, device) to amortize decoding across
    /// repeated simulations of the same schedule.
    #[must_use]
    pub fn run_compiled(
        &self,
        compiled: &CompiledProgram,
        warps: usize,
        block_id: usize,
        constants: &ConstantBank,
        max_cycles: u64,
    ) -> SimOutput {
        let mut state = SimState::start(&self.config, warps, block_id);
        if compiled.is_empty() {
            let report = report_from_state(&state, true);
            return SimOutput {
                report,
                memory: state.memory,
            };
        }
        let mut engine = CycleEngine::new(&self.config, compiled, constants, block_id);
        let mut completed = true;
        while !state.all_finished() {
            if state.cycle >= max_cycles {
                completed = false;
                break;
            }
            engine.step(&mut state);
        }
        let report = report_from_state(&state, completed);
        SimOutput {
            report,
            memory: state.memory,
        }
    }

    /// The original instruction-at-a-time interpreter, kept as the
    /// executable specification of the simulator: [`SmSimulator::run`]
    /// (which interprets the pre-decoded [`CompiledProgram`]) must produce
    /// bit-identical results. Use only for differential testing — it
    /// re-decodes every instruction on every issue.
    #[must_use]
    pub fn run_reference(
        &self,
        program: &Program,
        warps: usize,
        block_id: usize,
        constants: &ConstantBank,
        max_cycles: u64,
    ) -> SimOutput {
        let instructions: Vec<&Instruction> = program.instructions().collect();
        let label_map = build_label_map(program);
        let mut memory = MemorySubsystem::new(&self.config);
        let mut warp_states: Vec<Warp> = (0..warps.max(1))
            .map(|w| Warp::new(w, block_id, self.config.arch.scoreboard_count()))
            .collect();
        let mut reuse_cache = ReuseCache::for_model(&self.config.arch.banks);

        let mut cycle: u64 = 0;
        let mut issued: u64 = 0;
        let mut issue_active_cycles: u64 = 0;
        let mut eligible_cycles: u64 = 0;
        let mut lsu_busy: u64 = 0;
        let mut tensor_busy: u64 = 0;
        let mut bank_conflict_cycles: u64 = 0;
        let mut lsu_free_at: u64 = 0;
        let mut tensor_free_at: u64 = 0;
        let mut lsu_outstanding: Vec<u64> = Vec::new();
        let mut last_issued_warp: Option<usize> = None;
        let mut completed = true;

        if instructions.is_empty() {
            let report = SmReport {
                cycles: 0,
                instructions_issued: 0,
                issue_active_cycles: 0,
                eligible_cycles: 0,
                lsu_busy_cycles: 0,
                tensor_busy_cycles: 0,
                bank_conflict_cycles: 0,
                mem: memory.counters(),
                hazards: 0,
                output_digest: memory.global_digest(),
                completed: true,
            };
            return SimOutput { report, memory };
        }

        while warp_states.iter().any(|w| !w.finished) {
            if cycle >= max_cycles {
                completed = false;
                break;
            }
            // Barrier release: when every unfinished warp is waiting, release
            // all of them.
            if warp_states.iter().any(|w| !w.finished && w.at_barrier)
                && warp_states.iter().all(|w| w.finished || w.at_barrier)
            {
                for w in &mut warp_states {
                    w.at_barrier = false;
                }
            }
            lsu_outstanding.retain(|&done| done > cycle);

            let eligible: Vec<usize> = (0..warp_states.len())
                .filter(|&w| {
                    self.warp_eligible(
                        &warp_states[w],
                        &instructions,
                        cycle,
                        lsu_free_at,
                        tensor_free_at,
                        lsu_outstanding.len(),
                    )
                })
                .collect();
            if !eligible.is_empty() {
                eligible_cycles += 1;
            }

            let mut issued_this_cycle = 0usize;
            let mut pick_from = eligible;
            while issued_this_cycle < self.config.arch.issue_width && !pick_from.is_empty() {
                // Greedy-then-oldest: prefer the warp that issued last cycle
                // (unless it yielded), otherwise the lowest-index eligible
                // warp after it.
                let chosen = match last_issued_warp {
                    Some(last) if !warp_states[last].yielded && pick_from.contains(&last) => last,
                    Some(last) => *pick_from
                        .iter()
                        .find(|&&w| w > last)
                        .unwrap_or(&pick_from[0]),
                    None => pick_from[0],
                };
                pick_from.retain(|&w| w != chosen);

                let warp = &mut warp_states[chosen];
                let inst = instructions[warp.pc];
                let ctx = ExecContext {
                    warp_id: chosen,
                    block_id,
                    cycle,
                    constants,
                };
                let outcome = execute(inst, &mut warp.regs, &mut memory, &ctx);

                // Register-bank conflicts and the operand-reuse cache.
                let sources: Vec<Register> =
                    inst.uses().into_iter().filter(|r| r.is_gpr()).collect();
                let reuse_flagged: Vec<Register> = inst
                    .operands()
                    .iter()
                    .filter(|o| o.has_reuse())
                    .flat_map(Operand::registers)
                    .filter(|r| r.is_gpr())
                    .collect();
                let conflicts = reuse_cache.issue(chosen, &sources, &reuse_flagged);
                bank_conflict_cycles += conflicts;

                let stall =
                    u64::from(inst.control().stall()).max(self.config.arch.min_stall) + conflicts;
                warp.stall_until = cycle + stall;
                warp.yielded = inst.control().yield_flag();

                // Barrier / synchronisation semantics.
                match inst.opcode().base() {
                    Mnemonic::Bar => {
                        warp.at_barrier = true;
                    }
                    Mnemonic::Depbar | Mnemonic::Ldgdepbar => {
                        // Wait-for-outstanding-copies: model as stalling the
                        // warp until its own barriers clear.
                        let worst = warp
                            .barrier_pending
                            .iter()
                            .flatten()
                            .copied()
                            .max()
                            .unwrap_or(cycle);
                        warp.stall_until = warp.stall_until.max(worst);
                    }
                    _ => {}
                }

                if !outcome.predicated_off {
                    if let Some(access) = outcome.access {
                        // Timing of the memory access. Shared-memory and
                        // constant accesses are served by on-chip pipelines
                        // with (approximately) fixed latency; only accesses
                        // that leave the SM queue behind earlier global
                        // traffic.
                        let (service_latency, queued) = match access.space {
                            MemorySpace::Shared => (memory.shared_latency(), false),
                            MemorySpace::Constant => (self.config.arch.latency.l1_hit, false),
                            _ => {
                                let (lat, _) =
                                    memory.global_access_latency(access.addr, access.bypass_l1);
                                (lat, true)
                            }
                        };
                        // LSU occupancy: one cycle per 128 bytes of
                        // warp-wide traffic.
                        let warp_bytes = access.bytes * 32;
                        let lsu_cycles = (warp_bytes / self.config.arch.lsu_bytes_per_cycle).max(1);
                        let queue_wait = if queued {
                            lsu_free_at.saturating_sub(cycle)
                        } else {
                            0
                        };
                        lsu_free_at = lsu_free_at.max(cycle) + lsu_cycles;
                        lsu_busy += lsu_cycles;
                        let completion = cycle + queue_wait + service_latency;
                        if queued {
                            // Only off-SM (global) requests occupy the
                            // outstanding-request queue; shared-memory
                            // accesses are serviced by the on-chip pipeline.
                            lsu_outstanding.push(completion);
                        }

                        if let Some(rb) = inst.control().read_barrier() {
                            // Source registers are consumed once the request
                            // has left the LSU.
                            warp.barrier_pending[rb as usize].push(
                                cycle
                                    + queue_wait
                                    + lsu_cycles
                                    + self.config.arch.read_barrier_drain,
                            );
                        }
                        if let Some(wb) = inst.control().write_barrier() {
                            warp.barrier_pending[wb as usize].push(completion);
                        }
                        // Loads deliver their destination registers at
                        // completion time.
                        for (reg, value) in &outcome.writes {
                            warp.regs.write(*reg, *value, completion);
                        }
                        // LDGSTS ascending-group rule.
                        if *inst.opcode().base() == Mnemonic::Ldgsts {
                            let key = ldgsts_group_key(inst);
                            if let (Some((base, offset)), Some((prev_base, prev_offset))) =
                                (key, warp.ldgsts_group)
                            {
                                if base == prev_base && offset < prev_offset {
                                    warp.ldgsts_violations += 1;
                                }
                            }
                            warp.ldgsts_group = key.or(warp.ldgsts_group);
                        } else {
                            warp.ldgsts_group = None;
                        }
                    } else {
                        // Fixed-latency (or barrier-setting non-memory) path.
                        let latency = self.fixed_latency(inst);
                        if inst.opcode().is_mma() {
                            let busy = self.config.arch.mma_busy;
                            tensor_free_at = tensor_free_at.max(cycle) + busy;
                            tensor_busy += busy;
                        }
                        let ready_at = cycle + latency;
                        for (reg, value) in &outcome.writes {
                            warp.regs.write(*reg, *value, ready_at);
                        }
                        if inst.opcode().latency_class() == LatencyClass::Variable {
                            // Variable-latency non-memory instructions clear
                            // their write barrier after their latency.
                            if let Some(wb) = inst.control().write_barrier() {
                                warp.barrier_pending[wb as usize].push(ready_at);
                            }
                        }
                    }
                }

                // Control flow.
                if outcome.exit {
                    warp.finished = true;
                } else if let Some(target) = &outcome.branch_to {
                    match label_map.get(target) {
                        Some(&idx) => warp.pc = idx,
                        None => warp.finished = true,
                    }
                } else {
                    warp.pc += 1;
                    if warp.pc >= instructions.len() {
                        warp.finished = true;
                    }
                }
                warp.prune_barriers(cycle);

                issued += 1;
                issued_this_cycle += 1;
                last_issued_warp = Some(chosen);
            }
            if issued_this_cycle > 0 {
                issue_active_cycles += 1;
            }
            cycle += 1;
        }

        let hazards: u64 = warp_states
            .iter()
            .map(|w| w.regs.hazard_count() as u64 + w.ldgsts_violations)
            .sum();
        let report = SmReport {
            cycles: cycle,
            instructions_issued: issued,
            issue_active_cycles,
            eligible_cycles,
            lsu_busy_cycles: lsu_busy,
            tensor_busy_cycles: tensor_busy,
            bank_conflict_cycles,
            mem: memory.counters(),
            hazards,
            output_digest: memory.global_digest(),
            completed,
        };
        SimOutput { report, memory }
    }

    #[allow(clippy::too_many_arguments)]
    fn warp_eligible(
        &self,
        warp: &Warp,
        instructions: &[&Instruction],
        cycle: u64,
        lsu_free_at: u64,
        tensor_free_at: u64,
        lsu_outstanding: usize,
    ) -> bool {
        if warp.finished || warp.at_barrier || cycle < warp.stall_until {
            return false;
        }
        let Some(inst) = instructions.get(warp.pc) else {
            return false;
        };
        if !warp.barriers_clear(inst.control().wait_mask(), cycle) {
            return false;
        }
        if matches!(inst.opcode().base(), Mnemonic::Depbar | Mnemonic::Ldgdepbar)
            && !warp.all_barriers_clear(cycle)
        {
            return false;
        }
        // Memory instructions can issue as long as the LSU input queue has
        // room; data-path serialisation is charged to their completion time,
        // not to the issue stage.
        if inst.opcode().is_memory() && lsu_outstanding >= self.config.arch.lsu_queue_depth {
            return false;
        }
        let _ = lsu_free_at;
        if inst.opcode().is_mma() && tensor_free_at > cycle + self.config.arch.mma_issue_gap {
            return false;
        }
        true
    }
}

/// The complete mutable state of one compiled-program simulation at a cycle
/// boundary: per-warp issue state and register files, scoreboard completion
/// queues, the operand-reuse cache, structural-hazard bookkeeping
/// (LSU/tensor-pipe occupancy, outstanding global requests), the memory
/// subsystem (caches, functional contents and traffic counters) and every
/// aggregate counter of the eventual [`SmReport`].
///
/// The state is a plain value: cloning it at a cycle boundary and resuming
/// with [`CycleEngine::step`] is indistinguishable from having simulated
/// straight through — this is what makes the epoch snapshots of
/// [`crate::DeltaEngine`] sound.
#[derive(Debug, Clone)]
pub(crate) struct SimState {
    pub(crate) cycle: u64,
    pub(crate) issued: u64,
    pub(crate) issue_active_cycles: u64,
    pub(crate) eligible_cycles: u64,
    pub(crate) lsu_busy: u64,
    pub(crate) tensor_busy: u64,
    pub(crate) bank_conflict_cycles: u64,
    pub(crate) lsu_free_at: u64,
    pub(crate) tensor_free_at: u64,
    pub(crate) lsu_outstanding: Vec<u64>,
    pub(crate) last_issued_warp: Option<usize>,
    pub(crate) warps: Vec<Warp>,
    pub(crate) reuse: ReuseCache,
    pub(crate) memory: MemorySubsystem,
}

impl SimState {
    /// The cycle-zero state of a fresh simulation on `config` with `warps`
    /// resident warps for thread block `block_id`.
    pub(crate) fn start(config: &GpuConfig, warps: usize, block_id: usize) -> Self {
        let warp_states: Vec<Warp> = (0..warps.max(1))
            .map(|w| Warp::new(w, block_id, config.arch.scoreboard_count()))
            .collect();
        SimState {
            cycle: 0,
            issued: 0,
            issue_active_cycles: 0,
            eligible_cycles: 0,
            lsu_busy: 0,
            tensor_busy: 0,
            bank_conflict_cycles: 0,
            lsu_free_at: 0,
            tensor_free_at: 0,
            lsu_outstanding: Vec::new(),
            last_issued_warp: None,
            warps: warp_states,
            reuse: ReuseCache::for_model(&config.arch.banks),
            memory: MemorySubsystem::new(config),
        }
    }

    /// True when every warp has executed its `EXIT`.
    pub(crate) fn all_finished(&self) -> bool {
        self.warps.iter().all(|w| w.finished)
    }

    /// Total hazards observed so far (stale reads + LDGSTS violations),
    /// summed over warps. Monotone, so splicing adjusts it additively.
    pub(crate) fn hazard_tally(&self) -> u64 {
        self.warps.iter().map(Warp::hazard_tally).sum()
    }

    /// Allocation-reusing deep copy: every `Vec` and map in `self` keeps its
    /// buffers where capacities allow. This is what lets the snapshot pool
    /// recycle retired states instead of reallocating register files and
    /// memory images per snapshot.
    pub(crate) fn assign_from(&mut self, other: &SimState) {
        self.cycle = other.cycle;
        self.issued = other.issued;
        self.issue_active_cycles = other.issue_active_cycles;
        self.eligible_cycles = other.eligible_cycles;
        self.lsu_busy = other.lsu_busy;
        self.tensor_busy = other.tensor_busy;
        self.bank_conflict_cycles = other.bank_conflict_cycles;
        self.lsu_free_at = other.lsu_free_at;
        self.tensor_free_at = other.tensor_free_at;
        self.lsu_outstanding.clone_from(&other.lsu_outstanding);
        self.last_issued_warp = other.last_issued_warp;
        if self.warps.len() == other.warps.len() {
            for (dst, src) in self.warps.iter_mut().zip(&other.warps) {
                dst.assign_from(src);
            }
        } else {
            self.warps.clone_from(&other.warps);
        }
        self.reuse.assign_from(&other.reuse);
        self.memory.assign_from(&other.memory);
    }

    /// True when `self` and `other` (two states of the *same* program suffix
    /// at the same cycle) are evolution-equivalent: every future cycle
    /// produces identical issues, identical counter increments and identical
    /// memory traffic. Aggregate tallies (instruction/cycle counters, memory
    /// traffic, hazard lists) are excluded — they are outputs, not inputs,
    /// of the cycle loop — and dead deadlines are forgiven (see
    /// [`Warp::equivalent_at`]).
    pub(crate) fn equivalent_to(&self, other: &SimState) -> bool {
        let cycle = self.cycle;
        let deadline_eq = |a: u64, b: u64| a == b || (a <= cycle && b <= cycle);
        self.cycle == other.cycle
            && self.last_issued_warp == other.last_issued_warp
            && deadline_eq(self.lsu_free_at, other.lsu_free_at)
            && deadline_eq(self.tensor_free_at, other.tensor_free_at)
            && live_multiset_eq(&self.lsu_outstanding, &other.lsu_outstanding, cycle)
            && self.warps.len() == other.warps.len()
            && self
                .warps
                .iter()
                .zip(&other.warps)
                .all(|(a, b)| a.equivalent_at(b, cycle))
            && self.reuse.state_eq(&other.reuse)
            && self.memory.equivalent_to(&other.memory)
    }
}

/// Builds the aggregate report of a finished (or cycle-limited) simulation
/// from its final state.
pub(crate) fn report_from_state(state: &SimState, completed: bool) -> SmReport {
    SmReport {
        cycles: state.cycle,
        instructions_issued: state.issued,
        issue_active_cycles: state.issue_active_cycles,
        eligible_cycles: state.eligible_cycles,
        lsu_busy_cycles: state.lsu_busy,
        tensor_busy_cycles: state.tensor_busy,
        bank_conflict_cycles: state.bank_conflict_cycles,
        mem: state.memory.counters(),
        hazards: state.hazard_tally(),
        output_digest: state.memory.global_digest(),
        completed,
    }
}

/// Executes one [`SimState`] cycle at a time over one compiled program.
///
/// The scratch buffers (register writes, operand values, the eligible-warp
/// list) live here so the hot loop never allocates; both
/// [`SmSimulator::run_compiled`] and the delta engine drive their states
/// through this single implementation, which is what makes delta results
/// bit-identical to full runs by construction.
pub(crate) struct CycleEngine<'a> {
    config: &'a GpuConfig,
    compiled: &'a CompiledProgram,
    constants: &'a ConstantBank,
    block_id: usize,
    writes: Vec<(Register, u64)>,
    values: Vec<u64>,
    eligible: Vec<usize>,
}

impl<'a> CycleEngine<'a> {
    pub(crate) fn new(
        config: &'a GpuConfig,
        compiled: &'a CompiledProgram,
        constants: &'a ConstantBank,
        block_id: usize,
    ) -> Self {
        CycleEngine {
            config,
            compiled,
            constants,
            block_id,
            writes: Vec::new(),
            values: Vec::new(),
            eligible: Vec::new(),
        }
    }

    /// Simulates exactly one cycle: barrier release, queue draining, the
    /// eligibility scan, up to `issue_width` issues and the cycle increment.
    /// The caller has already checked liveness and the cycle limit.
    #[allow(clippy::too_many_lines)] // the cycle body mirrors run_reference
    pub(crate) fn step(&mut self, state: &mut SimState) {
        let cycle = state.cycle;
        // Barrier release: when every unfinished warp is waiting, release
        // all of them.
        if state.warps.iter().any(|w| !w.finished && w.at_barrier)
            && state.warps.iter().all(|w| w.finished || w.at_barrier)
        {
            for w in &mut state.warps {
                w.at_barrier = false;
            }
        }
        state.lsu_outstanding.retain(|&done| done > cycle);

        self.eligible.clear();
        for (w, warp) in state.warps.iter().enumerate() {
            if compiled_warp_eligible(
                self.config,
                warp,
                self.compiled,
                cycle,
                state.tensor_free_at,
                state.lsu_outstanding.len(),
            ) {
                self.eligible.push(w);
            }
        }
        if !self.eligible.is_empty() {
            state.eligible_cycles += 1;
        }

        let mut issued_this_cycle = 0usize;
        let pick_from = &mut self.eligible;
        while issued_this_cycle < self.config.arch.issue_width && !pick_from.is_empty() {
            // Greedy-then-oldest: prefer the warp that issued last cycle
            // (unless it yielded), otherwise the lowest-index eligible
            // warp after it.
            let chosen = match state.last_issued_warp {
                Some(last) if !state.warps[last].yielded && pick_from.contains(&last) => last,
                Some(last) => *pick_from
                    .iter()
                    .find(|&&w| w > last)
                    .unwrap_or(&pick_from[0]),
                None => pick_from[0],
            };
            pick_from.retain(|&w| w != chosen);

            let warp = &mut state.warps[chosen];
            let inst = &self.compiled.insts[warp.pc];
            let ctx = ExecContext {
                warp_id: chosen,
                block_id: self.block_id,
                cycle,
                constants: self.constants,
            };
            let effects = inst.execute(
                &mut warp.regs,
                &mut state.memory,
                &ctx,
                &mut self.writes,
                &mut self.values,
            );

            // Register-bank conflicts and the operand-reuse cache.
            let conflicts = state
                .reuse
                .issue(chosen, &inst.bank_sources, &inst.reuse_regs);
            state.bank_conflict_cycles += conflicts;

            let stall = inst.stall + conflicts;
            warp.stall_until = cycle + stall;
            warp.yielded = inst.yield_flag;

            // Barrier / synchronisation semantics.
            if inst.is_bar {
                warp.at_barrier = true;
            } else if inst.is_depbar {
                // Wait-for-outstanding-copies: model as stalling the
                // warp until its own barriers clear.
                let worst = warp
                    .barrier_pending
                    .iter()
                    .flatten()
                    .copied()
                    .max()
                    .unwrap_or(cycle);
                warp.stall_until = warp.stall_until.max(worst);
            }

            if !effects.predicated_off {
                if let Some(access) = effects.access {
                    // Timing of the memory access. Shared-memory and
                    // constant accesses are served by on-chip pipelines
                    // with (approximately) fixed latency; only accesses
                    // that leave the SM queue behind earlier global
                    // traffic.
                    let (service_latency, queued) = match access.space {
                        MemorySpace::Shared => (state.memory.shared_latency(), false),
                        MemorySpace::Constant => (self.config.arch.latency.l1_hit, false),
                        _ => {
                            let (lat, _) = state
                                .memory
                                .global_access_latency(access.addr, access.bypass_l1);
                            (lat, true)
                        }
                    };
                    // LSU occupancy: one cycle per 128 bytes of
                    // warp-wide traffic.
                    let warp_bytes = access.bytes * 32;
                    let lsu_cycles = (warp_bytes / self.config.arch.lsu_bytes_per_cycle).max(1);
                    let queue_wait = if queued {
                        state.lsu_free_at.saturating_sub(cycle)
                    } else {
                        0
                    };
                    state.lsu_free_at = state.lsu_free_at.max(cycle) + lsu_cycles;
                    state.lsu_busy += lsu_cycles;
                    let completion = cycle + queue_wait + service_latency;
                    if queued {
                        // Only off-SM (global) requests occupy the
                        // outstanding-request queue; shared-memory
                        // accesses are serviced by the on-chip pipeline.
                        state.lsu_outstanding.push(completion);
                    }

                    if let Some(rb) = inst.read_barrier {
                        // Source registers are consumed once the request
                        // has left the LSU.
                        warp.barrier_pending[rb as usize].push(
                            cycle + queue_wait + lsu_cycles + self.config.arch.read_barrier_drain,
                        );
                    }
                    if let Some(wb) = inst.write_barrier {
                        warp.barrier_pending[wb as usize].push(completion);
                    }
                    // Loads deliver their destination registers at
                    // completion time.
                    for (reg, value) in &self.writes {
                        warp.regs.write(*reg, *value, completion);
                    }
                    // LDGSTS ascending-group rule.
                    if inst.is_ldgsts {
                        let key = inst.ldgsts_key;
                        if let (Some((base, offset)), Some((prev_base, prev_offset))) =
                            (key, warp.ldgsts_group)
                        {
                            if base == prev_base && offset < prev_offset {
                                warp.ldgsts_violations += 1;
                            }
                        }
                        warp.ldgsts_group = key.or(warp.ldgsts_group);
                    } else {
                        warp.ldgsts_group = None;
                    }
                } else {
                    // Fixed-latency (or barrier-setting non-memory) path.
                    if inst.is_mma {
                        state.tensor_free_at = state.tensor_free_at.max(cycle) + inst.mma_busy;
                        state.tensor_busy += inst.mma_busy;
                    }
                    let ready_at = cycle + inst.fixed_latency;
                    for (reg, value) in &self.writes {
                        warp.regs.write(*reg, *value, ready_at);
                    }
                    if inst.variable_latency {
                        // Variable-latency non-memory instructions clear
                        // their write barrier after their latency.
                        if let Some(wb) = inst.write_barrier {
                            warp.barrier_pending[wb as usize].push(ready_at);
                        }
                    }
                }
            }

            // Control flow.
            match effects.flow {
                Flow::Finish => warp.finished = true,
                Flow::Jump(target) => warp.pc = target,
                Flow::Next => {
                    warp.pc += 1;
                    if warp.pc >= self.compiled.len() {
                        warp.finished = true;
                    }
                }
            }
            warp.prune_barriers(cycle);

            state.issued += 1;
            issued_this_cycle += 1;
            state.last_issued_warp = Some(chosen);
        }
        if issued_this_cycle > 0 {
            state.issue_active_cycles += 1;
        }
        state.cycle += 1;
    }
}

/// Eligibility check over the pre-decoded form: all instruction metadata is
/// read from dense [`CompiledProgram`] fields (mirrors
/// [`SmSimulator::warp_eligible`]).
fn compiled_warp_eligible(
    config: &GpuConfig,
    warp: &Warp,
    compiled: &CompiledProgram,
    cycle: u64,
    tensor_free_at: u64,
    lsu_outstanding: usize,
) -> bool {
    if warp.finished || warp.at_barrier || cycle < warp.stall_until {
        return false;
    }
    let Some(inst) = compiled.insts.get(warp.pc) else {
        return false;
    };
    if !warp.barriers_clear(inst.wait_mask, cycle) {
        return false;
    }
    if inst.is_depbar && !warp.all_barriers_clear(cycle) {
        return false;
    }
    // Memory instructions can issue as long as the LSU input queue has
    // room; data-path serialisation is charged to their completion time,
    // not to the issue stage.
    if inst.is_memory && lsu_outstanding >= config.arch.lsu_queue_depth {
        return false;
    }
    if inst.is_mma && tensor_free_at > cycle + config.arch.mma_issue_gap {
        return false;
    }
    true
}

/// The (shared-memory base register, offset) key used to detect LDGSTS
/// ascending-group violations.
fn ldgsts_group_key(inst: &Instruction) -> Option<(Register, i64)> {
    let mem = inst.operands().iter().find_map(Operand::as_mem)?;
    let base = mem.base?;
    Some((base.reg, mem.offset))
}

fn build_label_map(program: &Program) -> HashMap<String, usize> {
    let mut map = HashMap::new();
    let mut instr_index = 0usize;
    for item in program.items() {
        match item {
            sass::Item::Label(name) => {
                map.insert(name.clone(), instr_index);
            }
            sass::Item::Instr(_) => instr_index += 1,
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> SmSimulator {
        SmSimulator::new(GpuConfig::small())
    }

    fn run_text(text: &str, warps: usize) -> SimOutput {
        let program: Program = text.parse().unwrap();
        sim().run(&program, warps, 0, &ConstantBank::new(), 1_000_000)
    }

    /// Every behavioural test below also exercises the compiled path; this
    /// helper additionally cross-checks it against the reference
    /// interpreter bit for bit.
    fn assert_compiled_matches_reference(text: &str, warps: usize) {
        let program: Program = text.parse().unwrap();
        let constants = ConstantBank::new();
        let fast = sim().run(&program, warps, 0, &constants, 1_000_000);
        let reference = sim().run_reference(&program, warps, 0, &constants, 1_000_000);
        assert_eq!(fast.report, reference.report, "{text}");
        assert_eq!(
            fast.memory.global_digest(),
            reference.memory.global_digest(),
            "{text}"
        );
    }

    #[test]
    fn trivial_program_completes() {
        let out = run_text(
            "[B------:R-:W-:-:S04] MOV R1, 0x7 ;\n[B------:R-:W-:-:S05] EXIT ;\n",
            1,
        );
        assert!(out.report.completed);
        assert_eq!(out.report.instructions_issued, 2);
        assert!(out.report.cycles >= 5);
    }

    #[test]
    fn stall_counts_gate_issue() {
        // Two instructions with stall 4 and 1: total at least 5 cycles.
        let fast = run_text(
            "[B------:R-:W-:-:S01] MOV R1, 0x7 ;\n[B------:R-:W-:-:S01] MOV R2, 0x8 ;\n[B------:R-:W-:-:S01] EXIT ;\n",
            1,
        );
        let slow = run_text(
            "[B------:R-:W-:-:S08] MOV R1, 0x7 ;\n[B------:R-:W-:-:S08] MOV R2, 0x8 ;\n[B------:R-:W-:-:S01] EXIT ;\n",
            1,
        );
        assert!(slow.report.cycles > fast.report.cycles);
    }

    #[test]
    fn correct_schedule_has_no_hazards_and_wrong_stall_does() {
        // Producer-consumer with the full 4-cycle stall: correct value stored.
        let good = run_text(
            "[B------:R-:W-:-:S04] MOV R15, 0x1 ;\n\
             [B------:R-:W-:-:S04] MOV R4, 0x100 ;\n\
             [B------:R-:W-:-:S04] STG.E [R4], R15 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
            1,
        );
        assert_eq!(good.report.hazards, 0);
        assert_eq!(good.memory.load_global(0x100), 1);

        // Under-stalled producer: the store reads a stale R15.
        let bad = run_text(
            "[B------:R-:W-:-:S04] MOV R4, 0x100 ;\n\
             [B------:R-:W-:-:S01] MOV R15, 0x1 ;\n\
             [B------:R-:W-:-:S04] STG.E [R4], R15 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
            1,
        );
        assert!(bad.report.hazards > 0);
        assert_ne!(bad.memory.load_global(0x100), 1);
        assert_ne!(good.report.output_digest, bad.report.output_digest);
    }

    #[test]
    fn write_barrier_protects_load_consumers() {
        // A load sets write barrier 0; the consumer waits on it: no hazard
        // and the loaded value reaches the output store.
        let text = "\
[B------:R-:W-:-:S04] MOV R4, 0x40 ;
[B------:R-:W-:-:S04] MOV R8, 0x80 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S04] STG.E [R8], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let out = run_text(text, 1);
        assert_eq!(out.report.hazards, 0);
        let expected = out.memory.load_global(0x40).wrapping_add(1);
        assert_eq!(out.memory.load_global(0x80), expected);

        // Remove the wait: the consumer reads a stale R2.
        let broken = text.replace("[B0-----:R-:W-:-:S04] IADD3", "[B------:R-:W-:-:S04] IADD3");
        let out = run_text(&broken, 1);
        assert!(out.report.hazards > 0);
    }

    #[test]
    fn more_warps_hide_memory_latency() {
        // A load followed by dependent compute: with more warps, total
        // cycles per warp shrink because the scheduler switches (TLP).
        let text = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S04] IADD3 R7, R6, 0x1, RZ ;
[B------:R-:W-:-:S05] EXIT ;
";
        let one = run_text(text, 1);
        let four = run_text(text, 4);
        let per_warp_one = one.report.cycles as f64;
        let per_warp_four = four.report.cycles as f64 / 4.0;
        assert!(
            per_warp_four < per_warp_one,
            "expected latency hiding: {per_warp_four} vs {per_warp_one}"
        );
    }

    #[test]
    fn interleaving_loads_with_compute_reduces_cycles() {
        // Back-to-back dependent chain after two loads vs. loads hoisted
        // early: the hoisted schedule overlaps memory latency with compute.
        let bunched = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W-:-:S04] MOV R8, 0x2000 ;
[B------:R-:W-:-:S04] MOV R20, 0x3 ;
[B------:R-:W-:-:S04] IMAD R21, R20, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R22, R21, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R23, R22, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R24, R23, R20, RZ ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B------:R-:W1:-:S02] LDG.E R3, [R8] ;
[B01----:R-:W-:-:S04] IADD3 R6, R2, R3, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let hoisted = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W-:-:S04] MOV R8, 0x2000 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B------:R-:W1:-:S02] LDG.E R3, [R8] ;
[B------:R-:W-:-:S04] MOV R20, 0x3 ;
[B------:R-:W-:-:S04] IMAD R21, R20, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R22, R21, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R23, R22, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R24, R23, R20, RZ ;
[B01----:R-:W-:-:S04] IADD3 R6, R2, R3, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let a = run_text(bunched, 2);
        let b = run_text(hoisted, 2);
        assert!(a.report.hazards == 0 && b.report.hazards == 0);
        assert_eq!(a.report.output_digest, b.report.output_digest);
        assert!(
            b.report.cycles < a.report.cycles,
            "hoisted loads should be faster: {} vs {}",
            b.report.cycles,
            a.report.cycles
        );
    }

    #[test]
    fn loops_execute_until_predicate_flips() {
        let text = "\
[B------:R-:W-:-:S04] MOV R10, 0x0 ;
[B------:R-:W-:-:S04] MOV R11, 0x4 ;
.L_loop:
[B------:R-:W-:-:S04] IADD3 R10, R10, 0x1, RZ ;
[B------:R-:W-:-:S04] ISETP.LT.AND P0, PT, R10, R11, PT ;
[B------:R-:W-:-:S06] @P0 BRA `(.L_loop) ;
[B------:R-:W-:-:S04] MOV R4, 0x40 ;
[B------:R-:W-:-:S04] STG.E [R4], R10 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let out = run_text(text, 1);
        assert!(out.report.completed);
        assert_eq!(out.memory.load_global(0x40), 4);
        assert_eq!(out.report.hazards, 0);
    }

    #[test]
    fn barrier_sync_synchronises_all_warps() {
        let text = "\
[B------:R-:W-:-:S04] MOV R1, 0x1 ;
[B------:R-:W-:-:S01] BAR.SYNC 0x0 ;
[B------:R-:W-:-:S04] MOV R2, 0x2 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let out = run_text(text, 4);
        assert!(out.report.completed);
        assert_eq!(out.report.instructions_issued, 16);
    }

    #[test]
    fn ldgsts_descending_offsets_are_a_violation() {
        let ascending = "\
[B------:R-:W-:-:S04] MOV R74, 0x100 ;
[B------:R-:W-:-:S04] MOV R10, 0x4000 ;
[B------:R0:W-:-:S02] LDGSTS.E.128 [R74+0x0], desc[UR18][R10.64] ;
[B------:R0:W-:-:S02] LDGSTS.E.128 [R74+0x800], desc[UR18][R10.64] ;
[B------:R-:W-:-:S05] EXIT ;
";
        let descending = "\
[B------:R-:W-:-:S04] MOV R74, 0x100 ;
[B------:R-:W-:-:S04] MOV R10, 0x4000 ;
[B------:R0:W-:-:S02] LDGSTS.E.128 [R74+0x800], desc[UR18][R10.64] ;
[B------:R0:W-:-:S02] LDGSTS.E.128 [R74+0x0], desc[UR18][R10.64] ;
[B------:R-:W-:-:S05] EXIT ;
";
        assert_eq!(run_text(ascending, 1).report.hazards, 0);
        assert!(run_text(descending, 1).report.hazards > 0);
    }

    #[test]
    fn cycle_limit_is_reported() {
        let text = "\
.L_spin:
[B------:R-:W-:-:S04] IADD3 R1, R1, 0x1, RZ ;
[B------:R-:W-:-:S06] BRA `(.L_spin) ;
[B------:R-:W-:-:S05] EXIT ;
";
        let program: Program = text.parse().unwrap();
        let out = sim().run(&program, 1, 0, &ConstantBank::new(), 200);
        assert!(!out.report.completed);
    }

    #[test]
    fn compiled_matches_reference_on_representative_programs() {
        let programs = [
            // Producer-consumer with a correct and an under-stalled schedule.
            "[B------:R-:W-:-:S04] MOV R15, 0x1 ;\n\
             [B------:R-:W-:-:S04] MOV R4, 0x100 ;\n\
             [B------:R-:W-:-:S04] STG.E [R4], R15 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
            "[B------:R-:W-:-:S04] MOV R4, 0x100 ;\n\
             [B------:R-:W-:-:S01] MOV R15, 0x1 ;\n\
             [B------:R-:W-:-:S04] STG.E [R4], R15 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
            // Loads, write barriers, dependent compute and a loop.
            "[B------:R-:W-:-:S04] MOV R10, 0x0 ;\n\
             [B------:R-:W-:-:S04] MOV R11, 0x4 ;\n\
             .L_loop:\n\
             [B------:R-:W-:-:S04] IADD3 R10, R10, 0x1, RZ ;\n\
             [B------:R-:W0:-:S02] LDG.E R2, [R10+0x1000] ;\n\
             [B0-----:R-:W-:-:S04] IADD3 R6, R2, R10, RZ ;\n\
             [B------:R-:W-:-:S04] ISETP.LT.AND P0, PT, R10, R11, PT ;\n\
             [B------:R-:W-:-:S06] @P0 BRA `(.L_loop) ;\n\
             [B------:R-:W-:-:S04] MOV R4, 0x40 ;\n\
             [B------:R-:W-:-:S04] STG.E [R4], R6 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
            // Asynchronous copies, descriptors, barrier sync, value mixing,
            // predication, reuse hints and special registers.
            "[B------:R-:W-:-:S04] MOV R74, 0x100 ;\n\
             [B------:R-:W-:-:S04] MOV R10, 0x4000 ;\n\
             [B------:R0:W-:-:S02] LDGSTS.E.128 [R74+0x0], desc[UR18][R10.64] ;\n\
             [B------:R0:W-:-:S02] LDGSTS.E.BYPASS.128 [R74+0x800], desc[UR18][R10.64] ;\n\
             [B------:R-:W-:-:S01] BAR.SYNC 0x0 ;\n\
             [B------:R-:W0:-:S02] LDS.U.128 R76, [R74] ;\n\
             [B0-----:R-:W-:-:S04] FFMA R24, R76.reuse, R76, R24 ;\n\
             [B------:R-:W-:-:S02] HMMA.16816.F32 R24, R24.reuse, R76, R24 ;\n\
             [B------:R-:W-:-:S04] CS2R R2, SR_CLOCKLO ;\n\
             [B------:R-:W-:-:S04] S2R R3, SR_TID.X ;\n\
             [B------:R-:W-:-:S04] ISETP.GE.AND P1, PT, R3, 0x20, PT ;\n\
             [B------:R-:W-:-:S04] @P1 STG.E [R74+0x40], R24 ;\n\
             [B------:R-:W-:-:S04] @!P1 STG.E [R74+0x80], R2 ;\n\
             [B------:R-:W-:-:S04] MOV R5, c[0x0][0x160] ;\n\
             [B------:R-:W-:-:S04] STG.E [R5+0x10], R3 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
            // Branch to a missing label finishes the warp.
            "[B------:R-:W-:-:S04] MOV R1, 0x1 ;\n\
             [B------:R-:W-:-:S06] BRA `(.L_missing) ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
        ];
        for text in programs {
            for warps in [1, 4] {
                assert_compiled_matches_reference(text, warps);
            }
        }
    }

    #[test]
    fn compiled_run_reuses_a_lowered_program() {
        let program: Program = "[B------:R-:W-:-:S04] MOV R4, 0x40 ;\n\
             [B------:R-:W0:-:S02] LDG.E R2, [R4] ;\n\
             [B0-----:R-:W-:-:S04] STG.E [R4], R2 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n"
            .parse()
            .unwrap();
        let simulator = sim();
        let compiled = CompiledProgram::compile(&program, simulator.config());
        assert_eq!(compiled.len(), 4);
        assert!(!compiled.is_empty());
        let constants = ConstantBank::new();
        let a = simulator.run_compiled(&compiled, 2, 0, &constants, 1_000_000);
        let b = simulator.run(&program, 2, 0, &constants, 1_000_000);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn counters_are_populated() {
        let out = run_text(
            "[B------:R-:W-:-:S04] MOV R4, 0x40 ;\n\
             [B------:R-:W0:-:S02] LDG.E R2, [R4] ;\n\
             [B0-----:R-:W-:-:S04] STG.E [R4], R2 ;\n\
             [B------:R-:W-:-:S05] EXIT ;\n",
            2,
        );
        assert!(out.report.mem.global_load_bytes > 0);
        assert!(out.report.mem.global_store_bytes > 0);
        assert!(out.report.lsu_busy_cycles > 0);
        assert!(out.report.ipc_elapsed() > 0.0);
        assert!(out.report.sm_busy() > 0.0);
        assert!(out.report.mem_busy() > 0.0);
        assert!(out.report.ipc_active() >= out.report.ipc_elapsed());
    }

    #[test]
    fn empty_program_yields_empty_report() {
        let out = run_text("", 4);
        assert_eq!(out.report.cycles, 0);
        assert!(out.report.completed);
    }
}
