//! Incremental delta re-simulation of locally mutated schedules.
//!
//! The assembly game mutates a SASS schedule one adjacent-instruction swap
//! at a time, yet the reward signal re-simulates the whole kernel from cycle
//! zero for every candidate. This module removes that redundancy without
//! changing a single observable bit:
//!
//! 1. [`DeltaEngine::record_baseline`] runs a schedule once through the
//!    shared [`crate::SmSimulator`] cycle loop, capturing **epoch
//!    snapshots** of the full [`SimState`] every K issued instructions
//!    (thinned geometrically so memory stays bounded) plus, per static
//!    instruction index, the first and last cycle at which any warp's fetch
//!    pointer rested on it.
//! 2. [`DeltaEngine::simulate_delta`] evaluates a mutated schedule that
//!    differs from the baseline at a known set of instruction indices. The
//!    run **resumes** from the latest snapshot taken before the mutation
//!    could first have been fetched (everything earlier is provably
//!    identical), and it **stops early** as soon as the simulated state
//!    provably reconverges with the baseline: at a baseline snapshot cycle
//!    past the last fetch of any mutated index, with an evolution-equivalent
//!    state (same fetch pointers, no live in-flight latencies that differ,
//!    identical scoreboard horizon, register values, reuse-cache and
//!    recency-equivalent memory system — see [`SimState::equivalent_to`]).
//!    The remaining baseline cycle and counter tail is then **spliced** on
//!    additively instead of being re-executed.
//! 3. When reconvergence is not detected, the run simply continues to
//!    completion from the resume point — still bit-identical to a full
//!    simulation by construction, still saving the shared prefix. This is
//!    the bounded **fallback** surfaced as
//!    [`DeltaOutcome::Resimulated`] and tracked by the `delta_fallbacks`
//!    telemetry counter.
//!
//! Soundness rests on two facts pinned by the workspace `delta_equivalence`
//! proptest suite across every built-in architecture profile:
//!
//! * before the first fetch of a mutated index, baseline and mutant runs are
//!   literally the same computation (instruction metadata is only ever read
//!   through a warp's fetch pointer, recorded at every cycle boundary), and
//! * once evolution-equivalent at a cycle past the last baseline fetch of
//!   every mutated index, both runs execute identical instruction sequences
//!   with identical timing forever after, so the baseline tail *is* the
//!   mutant tail.
//!
//! Snapshots are recycled through an allocation pool: retiring a baseline
//! ([`DeltaEngine::recycle_baseline`]) returns its states to the pool, and
//! every working state of a delta run is reused via
//! [`SimState::assign_from`] instead of freshly allocated.

use crate::compiled::CompiledProgram;
use crate::config::GpuConfig;
use crate::exec::ConstantBank;
use crate::launch::{resident_warps, LaunchConfig};
use crate::memory::MemCounters;
use crate::sm::{report_from_state, CycleEngine, SimState};
use crate::SmReport;

/// Tuning knobs of the delta engine. The defaults favour frequent
/// reconvergence checks on small kernels; all values only trade time for
/// memory — results are bit-identical for any configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaConfig {
    /// Take a baseline snapshot every this many issued instructions (the
    /// effective stride doubles whenever the snapshot budget is exceeded).
    pub epoch_instructions: u64,
    /// Upper bound on retained snapshots per baseline; exceeding it thins
    /// the snapshot list geometrically (every other snapshot is dropped).
    pub max_snapshots: usize,
    /// Stop testing for reconvergence after this many failed comparisons
    /// and just run the remainder out (the comparisons themselves are the
    /// only cost bounded here — correctness never depends on it).
    pub max_reconvergence_checks: usize,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            epoch_instructions: 64,
            max_snapshots: 48,
            max_reconvergence_checks: 16,
        }
    }
}

/// A recorded baseline run: the final report plus everything needed to
/// resume and reconverge mutated variants of the same schedule.
#[derive(Debug, Clone)]
pub struct DeltaBaseline {
    report: SmReport,
    /// Cycle-boundary snapshots in ascending cycle order;
    /// `snapshots[0]` is always the cycle-zero state.
    snapshots: Vec<SimState>,
    /// Per instruction index: earliest cycle at whose boundary any live
    /// warp's fetch pointer rested on it (`u64::MAX` = never fetched).
    first_touch: Vec<u64>,
    /// Per instruction index: latest such cycle (0 when never fetched).
    last_touch: Vec<u64>,
}

impl DeltaBaseline {
    /// The report of the recorded (unmutated) run — bit-identical to
    /// [`crate::SmSimulator::run_compiled`] on the same inputs.
    #[must_use]
    pub fn report(&self) -> &SmReport {
        &self.report
    }

    /// Number of retained epoch snapshots (at least one: cycle zero).
    #[must_use]
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Number of instructions in the recorded schedule.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.first_touch.len()
    }
}

/// How a delta evaluation obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// The mutated indices are never fetched by the baseline run, so the
    /// baseline report is the answer verbatim.
    Unchanged,
    /// The run resumed from an epoch snapshot and reconverged with the
    /// baseline, whose tail was spliced on.
    Spliced {
        /// Cycle of the snapshot the run resumed from.
        resumed_cycle: u64,
        /// Cycle at which the state reconverged with the baseline.
        spliced_cycle: u64,
    },
    /// No reconvergence was detected: the run was re-simulated to completion
    /// from the resume snapshot (the bounded fallback — still bit-identical,
    /// still skipping the shared prefix).
    Resimulated {
        /// Cycle of the snapshot the run resumed from.
        resumed_cycle: u64,
    },
}

impl DeltaOutcome {
    /// True for the full-resimulation fallback: the run re-executed from
    /// cycle zero and neither spliced nor reused any prefix — the delta
    /// engine contributed nothing beyond skipping the per-candidate
    /// recompile. A [`DeltaOutcome::Resimulated`] that resumed past cycle
    /// zero reused the shared prefix and is not a fallback.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        matches!(self, DeltaOutcome::Resimulated { resumed_cycle: 0 })
    }

    /// The cycle simulation actually resumed from (the whole prefix before
    /// it was reused from the baseline).
    #[must_use]
    pub fn resumed_cycle(&self) -> u64 {
        match *self {
            DeltaOutcome::Unchanged => u64::MAX,
            DeltaOutcome::Spliced { resumed_cycle, .. }
            | DeltaOutcome::Resimulated { resumed_cycle } => resumed_cycle,
        }
    }
}

/// The incremental re-simulation engine for one fixed evaluation context
/// (device, resident warps, block, constant bank, cycle limit).
#[derive(Debug)]
pub struct DeltaEngine {
    gpu: GpuConfig,
    warps: usize,
    block_id: usize,
    constants: ConstantBank,
    max_cycles: u64,
    config: DeltaConfig,
    /// Retired [`SimState`]s, reused via [`SimState::assign_from`].
    pool: Vec<SimState>,
}

impl Clone for DeltaEngine {
    /// Clones the evaluation context only: the snapshot pool is pure
    /// buffer-reuse scratch (up to dozens of retired states holding full
    /// register files and memory images), so a clone starts with an empty
    /// one instead of deep-copying it.
    fn clone(&self) -> Self {
        DeltaEngine {
            gpu: self.gpu.clone(),
            warps: self.warps,
            block_id: self.block_id,
            constants: self.constants.clone(),
            max_cycles: self.max_cycles,
            config: self.config.clone(),
            pool: Vec::new(),
        }
    }
}

impl DeltaEngine {
    /// Creates an engine for an explicit simulation context.
    #[must_use]
    pub fn new(
        gpu: GpuConfig,
        warps: usize,
        block_id: usize,
        constants: ConstantBank,
        max_cycles: u64,
    ) -> Self {
        DeltaEngine {
            gpu,
            warps,
            block_id,
            constants,
            max_cycles,
            config: DeltaConfig::default(),
            pool: Vec::new(),
        }
    }

    /// Creates an engine whose context matches what
    /// [`crate::simulate_launch`] simulates for `launch` on `gpu` (resident
    /// warps, block 0, the launch's constant bank and cycle limit).
    #[must_use]
    pub fn for_launch(gpu: GpuConfig, launch: &LaunchConfig) -> Self {
        let warps = resident_warps(&gpu, launch);
        let constants = launch.constant_bank();
        DeltaEngine::new(gpu, warps, 0, constants, launch.max_cycles)
    }

    /// Overrides the engine configuration.
    #[must_use]
    pub fn with_config(mut self, config: DeltaConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs `compiled` to completion, recording epoch snapshots and
    /// fetch-touch cycles. The returned report is bit-identical to
    /// [`crate::SmSimulator::run_compiled`] with this engine's context.
    #[must_use]
    pub fn record_baseline(&mut self, compiled: &CompiledProgram) -> DeltaBaseline {
        let DeltaEngine {
            gpu,
            warps,
            block_id,
            constants,
            max_cycles,
            config,
            pool,
        } = self;
        let pool_cap = config.max_snapshots.max(2) + 4;
        let n = compiled.len();
        let mut first_touch = vec![u64::MAX; n];
        let mut last_touch = vec![0u64; n];
        let mut state = acquire(pool, None, gpu, *warps, *block_id);
        let mut snapshots = vec![acquire(pool, Some(&state), gpu, *warps, *block_id)];
        if compiled.is_empty() {
            let report = report_from_state(&state, true);
            recycle(pool, pool_cap, state);
            return DeltaBaseline {
                report,
                snapshots,
                first_touch,
                last_touch,
            };
        }
        let mut engine = CycleEngine::new(gpu, compiled, constants, *block_id);
        let mut epoch = config.epoch_instructions.max(1);
        let mut next_snapshot_at = epoch;
        let mut completed = true;
        loop {
            if state.all_finished() {
                break;
            }
            if state.cycle >= *max_cycles {
                completed = false;
                break;
            }
            // Cycle-boundary bookkeeping: every instruction-metadata read of
            // the upcoming cycle goes through a fetch pointer visible here.
            for warp in &state.warps {
                if !warp.finished {
                    if let Some(first) = first_touch.get_mut(warp.pc) {
                        if *first == u64::MAX {
                            *first = state.cycle;
                        }
                        last_touch[warp.pc] = state.cycle;
                    }
                }
            }
            if state.issued >= next_snapshot_at {
                let snapshot = acquire(pool, Some(&state), gpu, *warps, *block_id);
                snapshots.push(snapshot);
                if snapshots.len() > config.max_snapshots.max(2) {
                    // Thin geometrically: keep cycle zero and every other
                    // later snapshot (recycling the dropped ones), double
                    // the stride.
                    let mut kept = Vec::with_capacity(snapshots.len() / 2 + 1);
                    for (index, snapshot) in snapshots.drain(..).enumerate() {
                        if index % 2 == 0 {
                            kept.push(snapshot);
                        } else {
                            recycle(pool, pool_cap, snapshot);
                        }
                    }
                    snapshots = kept;
                    epoch = epoch.saturating_mul(2);
                }
                next_snapshot_at = state.issued + epoch;
            }
            engine.step(&mut state);
        }
        let report = report_from_state(&state, completed);
        recycle(pool, pool_cap, state);
        DeltaBaseline {
            report,
            snapshots,
            first_touch,
            last_touch,
        }
    }

    /// Evaluates `mutated`, a schedule that differs from the recorded
    /// baseline program **only** at the instruction indices in `changed`
    /// (same length, labels and branch targets unchanged — exactly what
    /// [`CompiledProgram::swap_insts`] chains produce). Returns a report
    /// bit-identical to a full [`crate::SmSimulator::run_compiled`] of
    /// `mutated`, plus how it was obtained.
    #[must_use]
    pub fn simulate_delta(
        &mut self,
        baseline: &DeltaBaseline,
        mutated: &CompiledProgram,
        changed: &[usize],
    ) -> (SmReport, DeltaOutcome) {
        // Divergence horizon: the earliest cycle at which the baseline run
        // could have observed any mutated index. Indices outside the
        // recorded program are treated as touched-at-zero (defensive; the
        // session never produces them).
        let touch = |table: &[u64], default: u64, pick: fn(u64, u64) -> u64| {
            changed
                .iter()
                .map(|&i| table.get(i).copied().unwrap_or(default))
                .fold(None, |acc: Option<u64>, t| {
                    Some(acc.map_or(t, |a| pick(a, t)))
                })
        };
        let Some(first) = touch(&baseline.first_touch, 0, u64::min) else {
            return (baseline.report, DeltaOutcome::Unchanged);
        };
        if first == u64::MAX {
            // The mutated instructions are dead code in this context: the
            // baseline run never fetched them, so it is the answer verbatim.
            return (baseline.report, DeltaOutcome::Unchanged);
        }
        let last = touch(&baseline.last_touch, u64::MAX, u64::max).unwrap_or(u64::MAX);

        // Resume from the latest snapshot at or before the divergence
        // horizon; snapshot 0 (cycle zero) always qualifies.
        let DeltaEngine {
            gpu,
            warps,
            block_id,
            constants,
            max_cycles,
            config,
            pool,
        } = self;
        let pool_cap = config.max_snapshots.max(2) + 4;
        let resume_index = baseline
            .snapshots
            .partition_point(|s| s.cycle <= first)
            .saturating_sub(1);
        let resumed_cycle = baseline.snapshots[resume_index].cycle;
        let mut state = acquire(
            pool,
            Some(&baseline.snapshots[resume_index]),
            gpu,
            *warps,
            *block_id,
        );
        let mut engine = CycleEngine::new(gpu, mutated, constants, *block_id);
        let mut next_snapshot = resume_index + 1;
        let mut checks_left = config.max_reconvergence_checks;
        let result = loop {
            if state.all_finished() {
                break (
                    report_from_state(&state, true),
                    DeltaOutcome::Resimulated { resumed_cycle },
                );
            }
            if state.cycle >= *max_cycles {
                break (
                    report_from_state(&state, false),
                    DeltaOutcome::Resimulated { resumed_cycle },
                );
            }
            if let Some(snapshot) = baseline.snapshots.get(next_snapshot) {
                if snapshot.cycle == state.cycle {
                    if state.cycle > last && checks_left > 0 {
                        if state.equivalent_to(snapshot) {
                            let report = splice_report(&baseline.report, snapshot, &state);
                            break (
                                report,
                                DeltaOutcome::Spliced {
                                    resumed_cycle,
                                    spliced_cycle: state.cycle,
                                },
                            );
                        }
                        checks_left -= 1;
                    }
                    next_snapshot += 1;
                }
            }
            engine.step(&mut state);
        };
        recycle(pool, pool_cap, state);
        result
    }

    /// Returns a retired baseline's snapshots to the allocation pool so the
    /// next [`DeltaEngine::record_baseline`] reuses their buffers.
    pub fn recycle_baseline(&mut self, baseline: DeltaBaseline) {
        let cap = self.config.max_snapshots.max(2) + 4;
        for snapshot in baseline.snapshots {
            recycle(&mut self.pool, cap, snapshot);
        }
    }
}

/// A fresh or recycled state: cycle-zero when `src` is `None` (built
/// directly — copying a fresh state into pooled buffers would cost an
/// allocation *and* a copy), a deep copy of `src` into pooled buffers
/// otherwise.
fn acquire(
    pool: &mut Vec<SimState>,
    src: Option<&SimState>,
    gpu: &GpuConfig,
    warps: usize,
    block_id: usize,
) -> SimState {
    match src {
        Some(src) => match pool.pop() {
            Some(mut state) => {
                state.assign_from(src);
                state
            }
            None => src.clone(),
        },
        None => SimState::start(gpu, warps, block_id),
    }
}

fn recycle(pool: &mut Vec<SimState>, cap: usize, state: SimState) {
    if pool.len() < cap {
        pool.push(state);
    }
}

/// Splices the baseline tail onto a reconverged state: terminal facts
/// (total cycles, completion, output digest) come from the baseline;
/// monotone tallies become `baseline_final - baseline_at_c + mutant_at_c`.
fn splice_report(final_report: &SmReport, base_at: &SimState, mutant_at: &SimState) -> SmReport {
    let adjust = |final_value: u64, base_value: u64, mutant_value: u64| {
        final_value - base_value + mutant_value
    };
    SmReport {
        cycles: final_report.cycles,
        instructions_issued: adjust(
            final_report.instructions_issued,
            base_at.issued,
            mutant_at.issued,
        ),
        issue_active_cycles: adjust(
            final_report.issue_active_cycles,
            base_at.issue_active_cycles,
            mutant_at.issue_active_cycles,
        ),
        eligible_cycles: adjust(
            final_report.eligible_cycles,
            base_at.eligible_cycles,
            mutant_at.eligible_cycles,
        ),
        lsu_busy_cycles: adjust(
            final_report.lsu_busy_cycles,
            base_at.lsu_busy,
            mutant_at.lsu_busy,
        ),
        tensor_busy_cycles: adjust(
            final_report.tensor_busy_cycles,
            base_at.tensor_busy,
            mutant_at.tensor_busy,
        ),
        bank_conflict_cycles: adjust(
            final_report.bank_conflict_cycles,
            base_at.bank_conflict_cycles,
            mutant_at.bank_conflict_cycles,
        ),
        mem: splice_counters(
            final_report.mem,
            base_at.memory.counters(),
            mutant_at.memory.counters(),
        ),
        hazards: adjust(
            final_report.hazards,
            base_at.hazard_tally(),
            mutant_at.hazard_tally(),
        ),
        output_digest: final_report.output_digest,
        completed: final_report.completed,
    }
}

fn splice_counters(
    final_mem: MemCounters,
    base_at: MemCounters,
    mutant_at: MemCounters,
) -> MemCounters {
    let adjust = |f: u64, b: u64, m: u64| f - b + m;
    MemCounters {
        global_load_bytes: adjust(
            final_mem.global_load_bytes,
            base_at.global_load_bytes,
            mutant_at.global_load_bytes,
        ),
        global_store_bytes: adjust(
            final_mem.global_store_bytes,
            base_at.global_store_bytes,
            mutant_at.global_store_bytes,
        ),
        global_to_shared_bytes: adjust(
            final_mem.global_to_shared_bytes,
            base_at.global_to_shared_bytes,
            mutant_at.global_to_shared_bytes,
        ),
        shared_load_bytes: adjust(
            final_mem.shared_load_bytes,
            base_at.shared_load_bytes,
            mutant_at.shared_load_bytes,
        ),
        shared_store_bytes: adjust(
            final_mem.shared_store_bytes,
            base_at.shared_store_bytes,
            mutant_at.shared_store_bytes,
        ),
        l1_hits: adjust(final_mem.l1_hits, base_at.l1_hits, mutant_at.l1_hits),
        l1_misses: adjust(final_mem.l1_misses, base_at.l1_misses, mutant_at.l1_misses),
        l2_hits: adjust(final_mem.l2_hits, base_at.l2_hits, mutant_at.l2_hits),
        l2_misses: adjust(final_mem.l2_misses, base_at.l2_misses, mutant_at.l2_misses),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuConfig, SmSimulator};
    use sass::Program;

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W-:-:S04] MOV R8, 0x2000 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B------:R-:W1:-:S02] LDG.E R3, [R8] ;
[B------:R-:W-:-:S04] MOV R20, 0x3 ;
[B------:R-:W-:-:S04] IMAD R21, R20, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R22, R21, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R23, R22, R20, RZ ;
[B------:R-:W-:-:S04] IMAD R24, R23, R20, RZ ;
[B01----:R-:W-:-:S04] IADD3 R6, R2, R3, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn dense_config() -> DeltaConfig {
        DeltaConfig {
            epoch_instructions: 1,
            max_snapshots: 64,
            max_reconvergence_checks: 64,
        }
    }

    fn engine(gpu: &GpuConfig, warps: usize) -> DeltaEngine {
        DeltaEngine::new(gpu.clone(), warps, 0, ConstantBank::new(), 1_000_000)
            .with_config(dense_config())
    }

    #[test]
    fn baseline_report_matches_the_full_simulator() {
        let gpu = GpuConfig::small();
        let program: Program = SAMPLE.parse().unwrap();
        let compiled = CompiledProgram::compile(&program, &gpu);
        for warps in [1, 4] {
            let mut delta = engine(&gpu, warps);
            let baseline = delta.record_baseline(&compiled);
            let full = SmSimulator::new(gpu.clone()).run_compiled(
                &compiled,
                warps,
                0,
                &ConstantBank::new(),
                1_000_000,
            );
            assert_eq!(*baseline.report(), full.report);
            assert!(baseline.snapshot_count() >= 2, "epochs must be recorded");
        }
    }

    #[test]
    fn every_adjacent_swap_is_bit_identical_to_full_simulation() {
        let gpu = GpuConfig::small();
        let program: Program = SAMPLE.parse().unwrap();
        let compiled = CompiledProgram::compile(&program, &gpu);
        let simulator = SmSimulator::new(gpu.clone());
        for warps in [1, 2, 4] {
            let mut delta = engine(&gpu, warps);
            let baseline = delta.record_baseline(&compiled);
            let mut spliced = 0usize;
            for upper in 0..compiled.len() - 1 {
                let mut swapped_program = program.clone();
                swapped_program.swap_instructions(upper, upper + 1).unwrap();
                let mut mutated = compiled.clone();
                mutated.swap_insts(upper, upper + 1);
                let (report, outcome) =
                    delta.simulate_delta(&baseline, &mutated, &[upper, upper + 1]);
                let full =
                    simulator.run(&swapped_program, warps, 0, &ConstantBank::new(), 1_000_000);
                assert_eq!(report, full.report, "swap at {upper}, {warps} warps");
                if matches!(outcome, DeltaOutcome::Spliced { .. }) {
                    spliced += 1;
                }
            }
            assert!(
                spliced > 0,
                "at least one early swap must reconverge and splice ({warps} warps)"
            );
        }
    }

    #[test]
    fn swapping_the_compiled_form_equals_recompiling_the_swapped_source() {
        let gpu = GpuConfig::small();
        let program: Program = SAMPLE.parse().unwrap();
        let compiled = CompiledProgram::compile(&program, &gpu);
        let simulator = SmSimulator::new(gpu.clone());
        for upper in 0..compiled.len() - 1 {
            let mut swapped_program = program.clone();
            swapped_program.swap_instructions(upper, upper + 1).unwrap();
            let mut mirrored = compiled.clone();
            mirrored.swap_insts(upper, upper + 1);
            let a = simulator.run_compiled(&mirrored, 2, 0, &ConstantBank::new(), 1_000_000);
            let b = simulator.run(&swapped_program, 2, 0, &ConstantBank::new(), 1_000_000);
            assert_eq!(a.report, b.report, "swap at {upper}");
        }
    }

    #[test]
    fn untouched_mutations_answer_from_the_baseline_verbatim() {
        // Instructions after EXIT are never fetched: mutating them is
        // provably unobservable and must not simulate anything.
        let gpu = GpuConfig::small();
        let text = "\
[B------:R-:W-:-:S04] MOV R4, 0x40 ;
[B------:R-:W-:-:S05] EXIT ;
[B------:R-:W-:-:S04] MOV R5, 0x50 ;
[B------:R-:W-:-:S04] MOV R6, 0x60 ;
";
        let program: Program = text.parse().unwrap();
        let compiled = CompiledProgram::compile(&program, &gpu);
        let mut delta = engine(&gpu, 1);
        let baseline = delta.record_baseline(&compiled);
        let mut mutated = compiled.clone();
        mutated.swap_insts(2, 3);
        let (report, outcome) = delta.simulate_delta(&baseline, &mutated, &[2, 3]);
        assert_eq!(outcome, DeltaOutcome::Unchanged);
        assert_eq!(report, *baseline.report());
    }

    #[test]
    fn recycled_snapshot_pools_never_leak_state_across_baselines() {
        let gpu = GpuConfig::small();
        let program_a: Program = SAMPLE.parse().unwrap();
        let program_b: Program = "\
[B------:R-:W-:-:S04] MOV R7, 0x123 ;
[B------:R-:W-:-:S04] MOV R9, 0x300 ;
[B------:R-:W-:-:S04] STG.E [R9], R7 ;
[B------:R-:W-:-:S05] EXIT ;
"
        .parse()
        .unwrap();
        let compiled_a = CompiledProgram::compile(&program_a, &gpu);
        let compiled_b = CompiledProgram::compile(&program_b, &gpu);

        // Pooled engine: record A, retire it, record B reusing A's buffers.
        let mut pooled = engine(&gpu, 2);
        let stale = pooled.record_baseline(&compiled_a);
        pooled.recycle_baseline(stale);
        let recycled = pooled.record_baseline(&compiled_b);

        // Fresh engine: record B with no pool history.
        let mut fresh = engine(&gpu, 2);
        let pristine = fresh.record_baseline(&compiled_b);
        assert_eq!(recycled.report(), pristine.report());
        assert_eq!(recycled.snapshot_count(), pristine.snapshot_count());
        for upper in 0..compiled_b.len() - 1 {
            let mut mutated = compiled_b.clone();
            mutated.swap_insts(upper, upper + 1);
            let (a, _) = pooled.simulate_delta(&recycled, &mutated, &[upper, upper + 1]);
            let (b, _) = fresh.simulate_delta(&pristine, &mutated, &[upper, upper + 1]);
            assert_eq!(a, b, "pooled and fresh engines must agree at {upper}");
        }
    }

    #[test]
    fn multi_swap_diffs_accumulate_correctly() {
        let gpu = GpuConfig::small();
        let program: Program = SAMPLE.parse().unwrap();
        let compiled = CompiledProgram::compile(&program, &gpu);
        let simulator = SmSimulator::new(gpu.clone());
        let mut delta = engine(&gpu, 4);
        let baseline = delta.record_baseline(&compiled);
        // Apply two separated swaps and diff both windows at once.
        let mut mutated_program = program.clone();
        mutated_program.swap_instructions(4, 5).unwrap();
        mutated_program.swap_instructions(6, 7).unwrap();
        let mut mutated = compiled.clone();
        mutated.swap_insts(4, 5);
        mutated.swap_insts(6, 7);
        let (report, _) = delta.simulate_delta(&baseline, &mutated, &[4, 5, 6, 7]);
        let full = simulator.run(&mutated_program, 4, 0, &ConstantBank::new(), 1_000_000);
        assert_eq!(report, full.report);
    }

    #[test]
    fn snapshot_thinning_keeps_results_identical_under_tiny_budgets() {
        let gpu = GpuConfig::small();
        let program: Program = SAMPLE.parse().unwrap();
        let compiled = CompiledProgram::compile(&program, &gpu);
        let mut tight = DeltaEngine::new(gpu.clone(), 4, 0, ConstantBank::new(), 1_000_000)
            .with_config(DeltaConfig {
                epoch_instructions: 1,
                max_snapshots: 3,
                max_reconvergence_checks: 8,
            });
        let mut roomy = engine(&gpu, 4);
        let base_tight = tight.record_baseline(&compiled);
        let base_roomy = roomy.record_baseline(&compiled);
        assert!(base_tight.snapshot_count() <= 4);
        assert_eq!(base_tight.report(), base_roomy.report());
        for upper in 0..compiled.len() - 1 {
            let mut mutated = compiled.clone();
            mutated.swap_insts(upper, upper + 1);
            let (a, _) = tight.simulate_delta(&base_tight, &mutated, &[upper, upper + 1]);
            let (b, _) = roomy.simulate_delta(&base_roomy, &mutated, &[upper, upper + 1]);
            assert_eq!(a, b, "snapshot budget must not change results ({upper})");
        }
    }
}
