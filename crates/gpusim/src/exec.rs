//! Functional execution of a single SASS instruction.
//!
//! Integer/address arithmetic, moves, predicates and memory operations have
//! real semantics so that the addresses the timing model sees are the
//! addresses a real kernel would generate. Floating-point and tensor-core
//! instructions use a deterministic value-mixing semantics: their results are
//! a hash of their inputs, which is enough to make the outputs of a kernel
//! depend on every value that flows into them — a schedule that breaks a
//! dependence produces a different (wrong) output.

use sass::{Guard, Instruction, MemorySpace, Mnemonic, Operand, Register};

use crate::memory::{splitmix64, MemorySubsystem};
use crate::regfile::RegisterFile;

/// The kernel-parameter constant bank, pre-sorted for binary-search lookup.
///
/// The executor resolves `c[bank][offset]` operands on every issue of every
/// constant-reading instruction, so the bank is built once per launch as a
/// sorted slice instead of rebuilding a `HashMap` (and paying its hashing
/// cost per lookup) on the hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstantBank {
    /// `(bank << 32 | offset, value)`, sorted by key, unique keys.
    entries: Vec<(u64, u64)>,
}

impl ConstantBank {
    /// An empty constant bank.
    #[must_use]
    pub fn new() -> Self {
        ConstantBank::default()
    }

    /// Builds a bank from `((bank, offset), value)` pairs. Later pairs win
    /// on duplicate keys (matching `HashMap::from_iter` semantics).
    #[must_use]
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = ((u32, u32), u64)>,
    {
        let mut entries: Vec<(u64, u64)> = pairs
            .into_iter()
            .map(|((bank, offset), value)| (Self::key(bank, offset), value))
            .collect();
        // Stable sort keeps insertion order within equal keys; keep the last
        // entry of each run so later inserts overwrite earlier ones.
        entries.sort_by_key(|&(key, _)| key);
        let mut unique: Vec<(u64, u64)> = Vec::with_capacity(entries.len());
        for entry in entries {
            match unique.last_mut() {
                Some(last) if last.0 == entry.0 => *last = entry,
                _ => unique.push(entry),
            }
        }
        ConstantBank { entries: unique }
    }

    fn key(bank: u32, offset: u32) -> u64 {
        u64::from(bank) << 32 | u64::from(offset)
    }

    /// Inserts or replaces one constant.
    pub fn insert(&mut self, bank: u32, offset: u32, value: u64) {
        let key = Self::key(bank, offset);
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key, value)),
        }
    }

    /// Looks up `c[bank][offset]`.
    #[must_use]
    pub fn get(&self, bank: u32, offset: u32) -> Option<u64> {
        let key = Self::key(bank, offset);
        self.entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of constants in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the bank holds no constants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-issue context needed to evaluate operands.
#[derive(Debug, Clone, Copy)]
pub struct ExecContext<'a> {
    /// Index of the executing warp within its thread block.
    pub warp_id: usize,
    /// Index of the thread block.
    pub block_id: usize,
    /// Current cycle (read by `CS2R SR_CLOCKLO`).
    pub cycle: u64,
    /// Kernel parameter constant bank.
    pub constants: &'a ConstantBank,
}

/// A memory access produced by executing an instruction, consumed by the
/// timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The memory space accessed.
    pub space: MemorySpace,
    /// The (byte) address accessed.
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u64,
    /// True for loads (data flows toward the SM), false for stores.
    pub is_load: bool,
    /// True if the access bypasses L1 (`LDGSTS.BYPASS`).
    pub bypass_l1: bool,
}

/// The architectural effects of one instruction execution.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Register writes `(register, value)`; the caller decides *when* each
    /// becomes visible (fixed latency vs memory completion).
    pub writes: Vec<(Register, u64)>,
    /// Memory access for the timing model, if any.
    pub access: Option<MemAccess>,
    /// Branch target label if a branch was taken.
    pub branch_to: Option<String>,
    /// True if the program should terminate this warp (`EXIT`).
    pub exit: bool,
    /// True if the instruction was skipped because its guard evaluated false.
    pub predicated_off: bool,
}

/// Evaluates the guard predicate of an instruction.
fn guard_passes(guard: Option<&Guard>, regs: &mut RegisterFile, cycle: u64) -> bool {
    match guard {
        None => true,
        Some(g) => {
            let v = regs.read(g.pred, cycle) != 0;
            if g.negated {
                !v
            } else {
                v
            }
        }
    }
}

/// Memory access width implied by the opcode modifiers. Shared with the
/// precompiled lowering ([`crate::CompiledProgram`]) so the two interpreters
/// can never drift apart.
pub(crate) fn access_bytes(inst: &Instruction) -> u64 {
    for m in inst.opcode().modifiers() {
        match m.as_str() {
            "128" | "LTC128B" => return 16,
            "64" => return 8,
            "32" => return 4,
            "16" | "U16" | "S16" => return 2,
            "8" | "U8" | "S8" => return 1,
            _ => {}
        }
    }
    4
}

/// The deterministic fallback value of an unbound constant-bank slot.
/// Shared with the precompiled lowering.
pub(crate) fn const_fallback(bank: u32, offset: u32) -> u64 {
    splitmix64(u64::from(bank) << 32 | u64::from(offset))
}

/// A classified special register: the single source of truth for the
/// `SR_*` dispatch, shared between the interpretive executor and the
/// precompiled lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecialReg {
    /// `SR_CLOCKLO`: the current cycle.
    Clock,
    /// `SR_TID[.X]`: the warp's first thread id.
    Tid,
    /// `SR_CTAID[.X]`: the block id.
    CtaId,
    /// `SR_LANEID`: always zero in this model.
    LaneId,
    /// `SR_WARPID`: the warp id.
    WarpId,
    /// Any other special register: a deterministic hash of its name.
    Hashed(u64),
}

impl SpecialReg {
    pub(crate) fn classify(name: &str) -> Self {
        match name {
            "SR_CLOCKLO" => SpecialReg::Clock,
            "SR_TID.X" | "SR_TID" => SpecialReg::Tid,
            "SR_CTAID.X" | "SR_CTAID" => SpecialReg::CtaId,
            "SR_LANEID" => SpecialReg::LaneId,
            "SR_WARPID" => SpecialReg::WarpId,
            other => SpecialReg::Hashed(splitmix64(other.len() as u64 ^ 0x5352)),
        }
    }

    #[inline]
    pub(crate) fn value(self, ctx: &ExecContext<'_>) -> u64 {
        match self {
            SpecialReg::Clock => ctx.cycle,
            SpecialReg::Tid => (ctx.warp_id * 32) as u64,
            SpecialReg::CtaId => ctx.block_id as u64,
            SpecialReg::LaneId => 0,
            SpecialReg::WarpId => ctx.warp_id as u64,
            SpecialReg::Hashed(value) => value,
        }
    }
}

fn special_register(name: &str, ctx: &ExecContext<'_>) -> u64 {
    SpecialReg::classify(name).value(ctx)
}

/// Evaluates a source operand to a 64-bit value, recording stale-read
/// hazards through the register file.
fn operand_value(operand: &Operand, regs: &mut RegisterFile, ctx: &ExecContext<'_>) -> u64 {
    match operand {
        Operand::Reg(r) => {
            let mut v = regs.read(r.reg, ctx.cycle);
            if r.reg.is_predicate() {
                if r.not {
                    v = u64::from(v == 0);
                }
                return v;
            }
            if r.negated {
                v = v.wrapping_neg();
            }
            if r.absolute {
                v = (v as i64).unsigned_abs();
            }
            v
        }
        Operand::Imm(v) => *v as u64,
        Operand::FImm(v) => v.to_bits(),
        Operand::Const { bank, offset } => ctx
            .constants
            .get(*bank, *offset)
            .unwrap_or_else(|| const_fallback(*bank, *offset)),
        Operand::Mem(_) => 0,
        Operand::Special(name) => special_register(name, ctx),
        Operand::Label(_) => 0,
    }
}

/// Computes the effective byte address of a memory reference operand.
fn memref_address(operand: &Operand, regs: &mut RegisterFile, ctx: &ExecContext<'_>) -> u64 {
    let Operand::Mem(m) = operand else { return 0 };
    let mut addr = 0u64;
    if let Some(desc) = m.descriptor {
        // Descriptor-based addressing: the uniform register holds the base
        // of the (virtual) buffer descriptor.
        addr = addr.wrapping_add(regs.read(desc, ctx.cycle));
    }
    if let Some(base) = &m.base {
        addr = addr.wrapping_add(regs.read(base.reg, ctx.cycle));
    }
    addr.wrapping_add(m.offset as u64)
}

/// The value-mixing semantics of floating-point/tensor instructions.
/// Shared with the precompiled lowering.
pub(crate) fn mix_values(opcode_tag: u64, values: &[u64]) -> u64 {
    let mut acc = splitmix64(opcode_tag);
    for &v in values {
        acc = splitmix64(acc ^ v.rotate_left(17));
    }
    acc
}

/// The comparison operator of a `SETP`-family instruction: the single
/// source of truth for modifier lowering and evaluation, shared between the
/// interpretive executor and the precompiled lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cmp {
    Ge,
    Gt,
    Le,
    Lt,
    Eq,
    Ne,
}

impl Cmp {
    pub(crate) fn lower(modifier: Option<&String>) -> Self {
        match modifier.map(String::as_str) {
            Some("GE") => Cmp::Ge,
            Some("GT") => Cmp::Gt,
            Some("LE") => Cmp::Le,
            Some("LT") => Cmp::Lt,
            Some("EQ") => Cmp::Eq,
            _ => Cmp::Ne,
        }
    }

    #[inline]
    pub(crate) fn apply(self, a: i64, b: i64) -> bool {
        match self {
            Cmp::Ge => a >= b,
            Cmp::Gt => a > b,
            Cmp::Le => a <= b,
            Cmp::Lt => a < b,
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
        }
    }
}

fn compare(modifier: Option<&String>, a: i64, b: i64) -> bool {
    Cmp::lower(modifier).apply(a, b)
}

/// Executes one instruction functionally.
///
/// Register reads go through [`RegisterFile::read`] at the issue cycle, so
/// any premature read (a schedule hazard) both records a hazard event and
/// propagates the stale value into the result.
pub fn execute(
    inst: &Instruction,
    regs: &mut RegisterFile,
    mem: &mut MemorySubsystem,
    ctx: &ExecContext<'_>,
) -> Outcome {
    let mut outcome = Outcome::default();
    if !guard_passes(inst.guard(), regs, ctx.cycle) {
        outcome.predicated_off = true;
        return outcome;
    }
    let opcode = inst.opcode();
    let n_dest = inst.dest_operand_count();
    let dests: Vec<&Operand> = inst.operands().iter().take(n_dest).collect();
    let sources: Vec<&Operand> = inst.operands().iter().skip(n_dest).collect();
    let source_values: Vec<u64> = sources
        .iter()
        .map(|o| operand_value(o, regs, ctx))
        .collect();
    let opcode_tag = splitmix64(opcode.full_name().len() as u64 ^ 0xC0DE);
    let first_dest_reg = dests.first().and_then(|o| o.as_reg()).map(|r| r.reg);

    match opcode.base() {
        Mnemonic::Mov => {
            if let Some(reg) = first_dest_reg {
                outcome
                    .writes
                    .push((reg, source_values.first().copied().unwrap_or(0)));
            }
        }
        Mnemonic::Iadd3 | Mnemonic::Lea => {
            if let Some(reg) = first_dest_reg {
                let sum = source_values
                    .iter()
                    .fold(0u64, |acc, v| acc.wrapping_add(*v));
                outcome.writes.push((reg, sum));
            }
            // Carry-out predicates (if any) are set to zero.
            for dest in dests.iter().skip(1) {
                if let Some(r) = dest.as_reg() {
                    outcome.writes.push((r.reg, 0));
                }
            }
        }
        Mnemonic::Imad => {
            if let Some(reg) = first_dest_reg {
                let a = source_values.first().copied().unwrap_or(0);
                let b = source_values.get(1).copied().unwrap_or(0);
                let c = source_values.get(2).copied().unwrap_or(0);
                outcome
                    .writes
                    .push((reg, a.wrapping_mul(b).wrapping_add(c)));
            }
        }
        Mnemonic::Sel | Mnemonic::Fsel => {
            if let Some(reg) = first_dest_reg {
                // Last source is the predicate selecting between the first two.
                let pred = source_values.last().copied().unwrap_or(1);
                let a = source_values.first().copied().unwrap_or(0);
                let b = source_values.get(1).copied().unwrap_or(0);
                outcome.writes.push((reg, if pred != 0 { a } else { b }));
            }
        }
        Mnemonic::Iabs => {
            if let Some(reg) = first_dest_reg {
                let v = source_values.first().copied().unwrap_or(0) as i64;
                outcome.writes.push((reg, v.unsigned_abs()));
            }
        }
        Mnemonic::Shf => {
            if let Some(reg) = first_dest_reg {
                let a = source_values.first().copied().unwrap_or(0);
                let sh = source_values.get(1).copied().unwrap_or(0) & 63;
                let dir_right = opcode.has_modifier("R");
                let v = if dir_right { a >> sh } else { a << sh };
                outcome.writes.push((reg, v));
            }
        }
        Mnemonic::Imnmx => {
            if let Some(reg) = first_dest_reg {
                let a = source_values.first().copied().unwrap_or(0) as i64;
                let b = source_values.get(1).copied().unwrap_or(0) as i64;
                outcome.writes.push((reg, a.min(b) as u64));
            }
        }
        Mnemonic::Isetp | Mnemonic::Fsetp | Mnemonic::Hsetp2 => {
            let a = source_values.first().copied().unwrap_or(0) as i64;
            let b = source_values.get(1).copied().unwrap_or(0) as i64;
            let result = compare(opcode.modifiers().first(), a, b);
            for dest in &dests {
                if let Some(r) = dest.as_reg() {
                    outcome.writes.push((r.reg, u64::from(result)));
                }
            }
        }
        Mnemonic::Cs2r | Mnemonic::S2r => {
            if let Some(reg) = first_dest_reg {
                let value = match sources.first() {
                    Some(Operand::Special(name)) => special_register(name, ctx),
                    _ => source_values.first().copied().unwrap_or(0),
                };
                outcome.writes.push((reg, value));
            }
        }
        Mnemonic::Ldg | Mnemonic::Ld | Mnemonic::Ldc => {
            let addr_operand = sources.iter().find(|o| o.as_mem().is_some());
            let addr = addr_operand.map_or(0, |o| memref_address(o, regs, ctx));
            let bytes = access_bytes(inst);
            let value = mem.load_global(addr);
            mem.record_global_load(bytes);
            if let Some(reg) = first_dest_reg {
                outcome.writes.push((reg, value));
            }
            outcome.access = Some(MemAccess {
                space: MemorySpace::Global,
                addr,
                bytes,
                is_load: true,
                bypass_l1: false,
            });
        }
        Mnemonic::Lds | Mnemonic::Ldsm => {
            let addr_operand = sources.iter().find(|o| o.as_mem().is_some());
            let addr = addr_operand.map_or(0, |o| memref_address(o, regs, ctx));
            let bytes = access_bytes(inst);
            let value = mem.load_shared(addr);
            mem.record_shared_load(bytes);
            if let Some(reg) = first_dest_reg {
                outcome.writes.push((reg, value));
            }
            outcome.access = Some(MemAccess {
                space: MemorySpace::Shared,
                addr,
                bytes,
                is_load: true,
                bypass_l1: false,
            });
        }
        Mnemonic::Stg | Mnemonic::St | Mnemonic::Red | Mnemonic::Atomg | Mnemonic::Atom => {
            // Destination address is operand 0 (a memory reference), data is
            // the following operand.
            let addr = inst
                .operands()
                .iter()
                .find(|o| o.as_mem().is_some())
                .map_or(0, |o| memref_address(o, regs, ctx));
            let data = inst
                .operands()
                .iter()
                .rfind(|o| o.as_mem().is_none())
                .map_or(0, |o| operand_value(o, regs, ctx));
            let bytes = access_bytes(inst);
            mem.store_global(addr, data, bytes);
            outcome.access = Some(MemAccess {
                space: MemorySpace::Global,
                addr,
                bytes,
                is_load: false,
                bypass_l1: false,
            });
        }
        Mnemonic::Sts | Mnemonic::Stl | Mnemonic::Atoms => {
            let addr = inst
                .operands()
                .iter()
                .find(|o| o.as_mem().is_some())
                .map_or(0, |o| memref_address(o, regs, ctx));
            let data = inst
                .operands()
                .iter()
                .rfind(|o| o.as_mem().is_none())
                .map_or(0, |o| operand_value(o, regs, ctx));
            let bytes = access_bytes(inst);
            mem.store_shared(addr, data, bytes);
            outcome.access = Some(MemAccess {
                space: MemorySpace::Shared,
                addr,
                bytes,
                is_load: false,
                bypass_l1: false,
            });
        }
        Mnemonic::Ldgsts => {
            // Asynchronous copy: operand 0 is the shared-memory destination,
            // the following memory operand is the global source.
            let mut mems = inst.operands().iter().filter(|o| o.as_mem().is_some());
            let shared_dst = mems.next().map_or(0, |o| memref_address(o, regs, ctx));
            let global_src = mems.next().map_or(0, |o| memref_address(o, regs, ctx));
            let bytes = access_bytes(inst);
            let value = mem.load_global(global_src);
            mem.store_shared(shared_dst, value, bytes);
            mem.record_global_to_shared(bytes);
            outcome.access = Some(MemAccess {
                space: MemorySpace::GlobalToShared,
                addr: global_src,
                bytes,
                is_load: true,
                bypass_l1: opcode.has_modifier("BYPASS"),
            });
        }
        Mnemonic::Ldl => {
            let addr_operand = sources.iter().find(|o| o.as_mem().is_some());
            let addr = addr_operand.map_or(0, |o| memref_address(o, regs, ctx));
            let value = mem.load_global(addr ^ 0x4c4f43414c); // distinct local window
            if let Some(reg) = first_dest_reg {
                outcome.writes.push((reg, value));
            }
            outcome.access = Some(MemAccess {
                space: MemorySpace::Local,
                addr,
                bytes: access_bytes(inst),
                is_load: true,
                bypass_l1: false,
            });
        }
        Mnemonic::Bra | Mnemonic::Brx | Mnemonic::Jmp => {
            if let Some(Operand::Label(name)) = inst
                .operands()
                .iter()
                .find(|o| matches!(o, Operand::Label(_)))
            {
                outcome.branch_to = Some(name.clone());
            }
        }
        Mnemonic::Exit | Mnemonic::Ret => {
            outcome.exit = true;
        }
        Mnemonic::Nop
        | Mnemonic::Bar
        | Mnemonic::Depbar
        | Mnemonic::Ldgdepbar
        | Mnemonic::Membar
        | Mnemonic::Errbar
        | Mnemonic::Cctl
        | Mnemonic::Fence
        | Mnemonic::Bssy
        | Mnemonic::Bsync
        | Mnemonic::Warpsync
        | Mnemonic::Yield
        | Mnemonic::Nanosleep => {}
        // Everything else (floating point, tensor core, unknown opcodes):
        // deterministic value mixing.
        _ => {
            for dest in &dests {
                if let Some(r) = dest.as_reg() {
                    outcome.writes.push((
                        r.reg,
                        mix_values(opcode_tag ^ r.reg.to_string().len() as u64, &source_values),
                    ));
                }
            }
        }
    }
    // Writes to the zero/true registers are architecturally discarded.
    outcome.writes.retain(|(reg, _)| !reg.is_zero_or_true());
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn setup() -> (RegisterFile, MemorySubsystem, ConstantBank) {
        (
            RegisterFile::new(),
            MemorySubsystem::new(&GpuConfig::small()),
            ConstantBank::new(),
        )
    }

    fn ctx<'a>(constants: &'a ConstantBank, cycle: u64) -> ExecContext<'a> {
        ExecContext {
            warp_id: 0,
            block_id: 0,
            cycle,
            constants,
        }
    }

    fn run(text: &str, regs: &mut RegisterFile, mem: &mut MemorySubsystem, cycle: u64) -> Outcome {
        let constants = ConstantBank::new();
        let inst: Instruction = text.parse().unwrap();
        execute(&inst, regs, mem, &ctx(&constants, cycle))
    }

    #[test]
    fn mov_and_iadd3_have_integer_semantics() {
        let (mut regs, mut mem, _) = setup();
        let out = run("MOV R1, 0x7 ;", &mut regs, &mut mem, 0);
        assert_eq!(out.writes, vec![(Register::Gpr(1), 7)]);
        regs.write(Register::Gpr(1), 7, 0);
        regs.write(Register::Gpr(2), 5, 0);
        let out = run("IADD3 R3, R1, R2, RZ ;", &mut regs, &mut mem, 0);
        assert_eq!(out.writes, vec![(Register::Gpr(3), 12)]);
    }

    #[test]
    fn imad_multiplies_and_accumulates() {
        let (mut regs, mut mem, _) = setup();
        regs.write(Register::Gpr(4), 3, 0);
        regs.write(Register::Gpr(5), 10, 0);
        regs.write(Register::Gpr(6), 1, 0);
        let out = run("IMAD R7, R4, R5, R6 ;", &mut regs, &mut mem, 0);
        assert_eq!(out.writes, vec![(Register::Gpr(7), 31)]);
    }

    #[test]
    fn isetp_compares_and_branch_follows_predicate() {
        let (mut regs, mut mem, _) = setup();
        regs.write(Register::Gpr(4), 20, 0);
        let out = run(
            "ISETP.GE.AND P0, PT, R4, 0x10, PT ;",
            &mut regs,
            &mut mem,
            0,
        );
        assert_eq!(out.writes, vec![(Register::Pred(0), 1)]);
        regs.write(Register::Pred(0), 1, 0);
        let out = run("@P0 BRA `(.L_loop) ;", &mut regs, &mut mem, 0);
        assert_eq!(out.branch_to.as_deref(), Some(".L_loop"));
        regs.write(Register::Pred(0), 0, 0);
        let out = run("@P0 BRA `(.L_loop) ;", &mut regs, &mut mem, 0);
        assert!(out.predicated_off);
        assert!(out.branch_to.is_none());
    }

    #[test]
    fn predicated_off_instruction_has_no_effects() {
        let (mut regs, mut mem, _) = setup();
        let out = run("@!PT LDS.U.128 R76, [R156] ;", &mut regs, &mut mem, 0);
        assert!(out.predicated_off);
        assert!(out.writes.is_empty());
        assert!(out.access.is_none());
    }

    #[test]
    fn store_then_load_round_trips_through_global_memory() {
        let (mut regs, mut mem, _) = setup();
        regs.write(Register::Gpr(4), 0x1000, 0);
        regs.write(Register::Gpr(15), 0xdead, 0);
        let out = run("STG.E [R4], R15 ;", &mut regs, &mut mem, 0);
        assert_eq!(
            out.access,
            Some(MemAccess {
                space: MemorySpace::Global,
                addr: 0x1000,
                bytes: 4,
                is_load: false,
                bypass_l1: false,
            })
        );
        let out = run("LDG.E R8, [R4] ;", &mut regs, &mut mem, 1);
        assert_eq!(out.writes, vec![(Register::Gpr(8), 0xdead)]);
    }

    #[test]
    fn ldgsts_copies_global_to_shared() {
        let (mut regs, mut mem, _) = setup();
        regs.write(Register::Gpr(10), 0x4000, 0); // global source
        regs.write(Register::Gpr(74), 0x100, 0); // shared destination
        mem.store_global(0x4000, 0xabcd, 8);
        let out = run(
            "LDGSTS.E.BYPASS.128 [R74], desc[UR18][R10.64] ;",
            &mut regs,
            &mut mem,
            0,
        );
        let access = out.access.unwrap();
        assert_eq!(access.space, MemorySpace::GlobalToShared);
        assert!(access.bypass_l1);
        assert_eq!(access.bytes, 16);
        assert_eq!(mem.load_shared(0x100), 0xabcd);
        assert_eq!(mem.counters().global_to_shared_bytes, 16);
    }

    #[test]
    fn exit_sets_exit_flag() {
        let (mut regs, mut mem, _) = setup();
        assert!(run("EXIT ;", &mut regs, &mut mem, 0).exit);
    }

    #[test]
    fn cs2r_reads_the_clock() {
        let (mut regs, mut mem, _) = setup();
        let out = run("CS2R R2, SR_CLOCKLO ;", &mut regs, &mut mem, 1234);
        assert_eq!(out.writes, vec![(Register::Gpr(2), 1234)]);
    }

    #[test]
    fn constants_come_from_the_parameter_bank() {
        let mut regs = RegisterFile::new();
        let mut mem = MemorySubsystem::new(&GpuConfig::small());
        let mut constants = ConstantBank::new();
        constants.insert(0, 0x160, 0x8000);
        let inst: Instruction = "MOV R1, c[0x0][0x160] ;".parse().unwrap();
        let out = execute(&inst, &mut regs, &mut mem, &ctx(&constants, 0));
        assert_eq!(out.writes, vec![(Register::Gpr(1), 0x8000)]);
    }

    #[test]
    fn constant_bank_lookup_and_last_wins() {
        let bank = ConstantBank::from_pairs([((0, 0x160), 1), ((0, 0x168), 2), ((0, 0x160), 3)]);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.get(0, 0x160), Some(3), "later pairs overwrite earlier");
        assert_eq!(bank.get(0, 0x168), Some(2));
        assert_eq!(bank.get(1, 0x160), None);
        assert!(!bank.is_empty());
        assert!(ConstantBank::new().is_empty());
    }

    #[test]
    fn premature_read_produces_stale_result() {
        let (mut regs, mut mem, _) = setup();
        // R1 is written with value 7 but only ready at cycle 10.
        regs.write(Register::Gpr(1), 7, 10);
        let out = run("IADD3 R2, R1, 0x1, RZ ;", &mut regs, &mut mem, 5);
        // The stale value of R1 (0) is consumed: result is 1, not 8.
        assert_eq!(out.writes, vec![(Register::Gpr(2), 1)]);
        assert_eq!(regs.hazard_count(), 1);
    }

    #[test]
    fn fp_ops_mix_deterministically() {
        let (mut regs, mut mem, _) = setup();
        regs.write(Register::Gpr(1), 3, 0);
        regs.write(Register::Gpr(2), 4, 0);
        let a = run("FFMA R3, R1, R2, R3 ;", &mut regs, &mut mem, 0);
        let b = run("FFMA R3, R1, R2, R3 ;", &mut regs, &mut mem, 0);
        assert_eq!(a.writes, b.writes);
        regs.write(Register::Gpr(1), 99, 0);
        let c = run("FFMA R3, R1, R2, R3 ;", &mut regs, &mut mem, 0);
        assert_ne!(a.writes, c.writes, "result must depend on inputs");
    }
}
