//! Device configuration: clocks, memory system and the per-SM architecture
//! backend.

use serde::{Deserialize, Serialize};

use crate::arch::ArchSpec;

/// The "ground-truth" pipeline latencies of the simulated device.
///
/// These numbers play the role of the undocumented instruction latencies of
/// a real GPU: the simulator uses them to decide when a destination
/// register is actually ready, while the CuAsmRL optimizer only ever sees
/// what it can recover through micro-benchmarking (§4.3) or the static
/// analysis pass (§3.2). Each [`ArchSpec`] profile carries its own model;
/// the default is the Ampere/A100 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Latency of the common single-cycle-issue integer/FP ALU instructions
    /// (`IADD3`, `MOV`, `SEL`, `FADD`, ...): 4 cycles on A100.
    pub alu: u64,
    /// Latency of wide integer multiply-add (`IMAD.WIDE`): 5 cycles on A100.
    pub imad_wide: u64,
    /// Latency of a tensor-core MMA instruction.
    pub mma: u64,
    /// Latency of the special-function unit (`MUFU`).
    pub sfu: u64,
    /// Latency of `S2R` special-register reads.
    pub s2r: u64,
    /// Shared-memory load-to-use latency.
    pub shared: u64,
    /// L1 hit latency for global accesses.
    pub l1_hit: u64,
    /// L2 hit latency for global accesses.
    pub l2_hit: u64,
    /// DRAM (L2 miss) latency for global accesses.
    pub dram: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            alu: 4,
            imad_wide: 5,
            mma: 16,
            sfu: 16,
            s2r: 12,
            shared: 22,
            l1_hit: 32,
            l2_hit: 190,
            dram: 470,
        }
    }
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Number of lines.
    pub lines: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.line_bytes * self.lines as u64
    }
}

/// Full device configuration: the chip-level parameters (SM count, clock,
/// memory system) plus the pluggable per-SM [`ArchSpec`] backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, used to key the deploy-time lookup cache.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s (A100 80GB PCIe: ~1935 GB/s).
    pub dram_bandwidth_gbs: f64,
    /// L1 data cache geometry (per SM).
    pub l1: CacheConfig,
    /// L2 cache geometry (device wide, modelled per SM slice).
    pub l2: CacheConfig,
    /// The per-SM microarchitecture backend.
    pub arch: ArchSpec,
}

impl GpuConfig {
    /// An A100-80GB-PCIe-like configuration, the device used in the paper's
    /// evaluation (§5.1). Runs the [`ArchSpec::ampere`] backend.
    #[must_use]
    pub fn a100() -> Self {
        GpuConfig {
            name: "sim-a100-80gb-pcie".to_string(),
            sm_count: 108,
            clock_ghz: 1.41,
            dram_bandwidth_gbs: 1935.0,
            l1: CacheConfig {
                line_bytes: 128,
                lines: 1536, // 192 KiB combined L1/shared
            },
            l2: CacheConfig {
                line_bytes: 128,
                lines: 32768, // 4 MiB slice per simulated SM context
            },
            arch: ArchSpec::ampere(),
        }
    }

    /// A Turing/RTX-2080-Ti-like configuration running the
    /// [`ArchSpec::turing`] backend.
    #[must_use]
    pub fn turing() -> Self {
        GpuConfig {
            name: "sim-tu102-rtx2080ti".to_string(),
            sm_count: 68,
            clock_ghz: 1.35,
            dram_bandwidth_gbs: 616.0,
            l1: CacheConfig {
                line_bytes: 128,
                lines: 768, // 96 KiB combined L1/shared
            },
            l2: CacheConfig {
                line_bytes: 128,
                lines: 16384, // smaller per-SM L2 slice
            },
            arch: ArchSpec::turing(),
        }
    }

    /// An H100-SXM-like configuration running the [`ArchSpec::hopper`]
    /// backend.
    #[must_use]
    pub fn hopper() -> Self {
        GpuConfig {
            name: "sim-h100-sxm".to_string(),
            sm_count: 132,
            clock_ghz: 1.59,
            dram_bandwidth_gbs: 3350.0,
            l1: CacheConfig {
                line_bytes: 128,
                lines: 1824, // 228 KiB combined L1/shared
            },
            l2: CacheConfig {
                line_bytes: 128,
                lines: 40960, // larger per-SM L2 slice
            },
            arch: ArchSpec::hopper(),
        }
    }

    /// Resolves a device profile by architecture name (the names and aliases
    /// of [`ArchSpec::by_name`]): `"ampere"` → [`GpuConfig::a100`],
    /// `"turing"` → [`GpuConfig::turing`], `"hopper"` → [`GpuConfig::hopper`].
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        // Exhaustive over ArchClass: adding a generation without a chip
        // profile is a compile error here, not a silent ampere fallback.
        let arch = ArchSpec::by_name(name)?;
        Some(match arch.class {
            sass::ArchClass::Turing => GpuConfig::turing(),
            sass::ArchClass::Ampere => GpuConfig::a100(),
            sass::ArchClass::Hopper => GpuConfig::hopper(),
        })
    }

    /// A small configuration for fast unit tests: identical mechanisms,
    /// smaller structures and shorter latencies (an Ampere-class backend).
    #[must_use]
    pub fn small() -> Self {
        let latency = LatencyModel {
            alu: 4,
            imad_wide: 5,
            mma: 8,
            sfu: 8,
            s2r: 6,
            shared: 10,
            l1_hit: 16,
            l2_hit: 60,
            dram: 150,
        };
        GpuConfig {
            name: "sim-small".to_string(),
            sm_count: 4,
            clock_ghz: 1.0,
            dram_bandwidth_gbs: 100.0,
            l1: CacheConfig {
                line_bytes: 128,
                lines: 64,
            },
            l2: CacheConfig {
                line_bytes: 128,
                lines: 512,
            },
            arch: ArchSpec {
                max_warps_per_sm: 8,
                lsu_queue_depth: 24,
                mma_busy: latency.mma / 2,
                latency,
                ..ArchSpec::ampere()
            },
        }
    }

    /// The small test configuration with a different architecture backend
    /// swapped in (for fast cross-architecture tests).
    #[must_use]
    pub fn small_with_arch(arch: ArchSpec) -> Self {
        let mut config = GpuConfig::small();
        config.name = format!("sim-small-{}", arch.name);
        config.arch = arch;
        config
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_defaults_match_paper_table1_ground_truth() {
        let cfg = GpuConfig::a100();
        assert_eq!(cfg.arch.latency.alu, 4);
        assert_eq!(cfg.arch.latency.imad_wide, 5);
        assert_eq!(cfg.sm_count, 108);
        assert_eq!(cfg.arch.name, "ampere");
    }

    #[test]
    fn cache_capacity() {
        let cfg = CacheConfig {
            line_bytes: 128,
            lines: 64,
        };
        assert_eq!(cfg.capacity(), 8192);
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(GpuConfig::default(), GpuConfig::a100());
    }

    #[test]
    fn by_name_resolves_each_builtin_profile() {
        assert_eq!(GpuConfig::by_name("ampere"), Some(GpuConfig::a100()));
        assert_eq!(GpuConfig::by_name("turing"), Some(GpuConfig::turing()));
        assert_eq!(GpuConfig::by_name("h100"), Some(GpuConfig::hopper()));
        assert_eq!(GpuConfig::by_name("volta"), None);
    }

    #[test]
    fn small_with_arch_swaps_only_the_backend() {
        let turing = GpuConfig::small_with_arch(ArchSpec::turing());
        assert_eq!(turing.sm_count, GpuConfig::small().sm_count);
        assert_eq!(turing.arch.name, "turing");
        assert_eq!(turing.name, "sim-small-turing");
    }
}
