//! Device configuration: clocks, pipe widths, memory latencies and sizes.

use serde::{Deserialize, Serialize};

/// The "ground-truth" pipeline latencies of the simulated device.
///
/// These numbers play the role of the undocumented instruction latencies of
/// a real Ampere GPU: the simulator uses them to decide when a destination
/// register is actually ready, while the CuAsmRL optimizer only ever sees
/// what it can recover through micro-benchmarking (§4.3) or the static
/// analysis pass (§3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Latency of the common single-cycle-issue integer/FP ALU instructions
    /// (`IADD3`, `MOV`, `SEL`, `FADD`, ...): 4 cycles on A100.
    pub alu: u64,
    /// Latency of wide integer multiply-add (`IMAD.WIDE`): 5 cycles on A100.
    pub imad_wide: u64,
    /// Latency of a tensor-core MMA instruction.
    pub mma: u64,
    /// Latency of the special-function unit (`MUFU`).
    pub sfu: u64,
    /// Latency of `S2R` special-register reads.
    pub s2r: u64,
    /// Shared-memory load-to-use latency.
    pub shared: u64,
    /// L1 hit latency for global accesses.
    pub l1_hit: u64,
    /// L2 hit latency for global accesses.
    pub l2_hit: u64,
    /// DRAM (L2 miss) latency for global accesses.
    pub dram: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            alu: 4,
            imad_wide: 5,
            mma: 16,
            sfu: 16,
            s2r: 12,
            shared: 22,
            l1_hit: 32,
            l2_hit: 190,
            dram: 470,
        }
    }
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Number of lines.
    pub lines: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.line_bytes * self.lines as u64
    }
}

/// Full device configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, used to key the deploy-time lookup cache.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Instructions the warp scheduler can issue per cycle per SM.
    pub issue_width: usize,
    /// Maximum warps resident on one SM.
    pub max_warps_per_sm: usize,
    /// Memory (load/store unit) instructions accepted per cycle.
    pub lsu_width: usize,
    /// Maximum outstanding memory requests per SM.
    pub lsu_queue_depth: usize,
    /// Tensor-core MMA instructions accepted per cycle.
    pub tensor_width: usize,
    /// Number of register file banks (operand collectors).
    pub register_banks: usize,
    /// Peak DRAM bandwidth in GB/s (A100 80GB PCIe: ~1935 GB/s).
    pub dram_bandwidth_gbs: f64,
    /// L1 data cache geometry (per SM).
    pub l1: CacheConfig,
    /// L2 cache geometry (device wide, modelled per SM slice).
    pub l2: CacheConfig,
    /// Pipeline latencies.
    pub latency: LatencyModel,
}

impl GpuConfig {
    /// An A100-80GB-PCIe-like configuration, the device used in the paper's
    /// evaluation (§5.1).
    #[must_use]
    pub fn a100() -> Self {
        GpuConfig {
            name: "sim-a100-80gb-pcie".to_string(),
            sm_count: 108,
            clock_ghz: 1.41,
            issue_width: 1,
            max_warps_per_sm: 64,
            lsu_width: 1,
            lsu_queue_depth: 64,
            tensor_width: 1,
            register_banks: 4,
            dram_bandwidth_gbs: 1935.0,
            l1: CacheConfig {
                line_bytes: 128,
                lines: 1536, // 192 KiB combined L1/shared
            },
            l2: CacheConfig {
                line_bytes: 128,
                lines: 32768, // 4 MiB slice per simulated SM context
            },
            latency: LatencyModel::default(),
        }
    }

    /// A small configuration for fast unit tests: identical mechanisms,
    /// smaller structures and shorter latencies.
    #[must_use]
    pub fn small() -> Self {
        GpuConfig {
            name: "sim-small".to_string(),
            sm_count: 4,
            clock_ghz: 1.0,
            issue_width: 1,
            max_warps_per_sm: 8,
            lsu_width: 1,
            lsu_queue_depth: 24,
            tensor_width: 1,
            register_banks: 4,
            dram_bandwidth_gbs: 100.0,
            l1: CacheConfig {
                line_bytes: 128,
                lines: 64,
            },
            l2: CacheConfig {
                line_bytes: 128,
                lines: 512,
            },
            latency: LatencyModel {
                alu: 4,
                imad_wide: 5,
                mma: 8,
                sfu: 8,
                s2r: 6,
                shared: 10,
                l1_hit: 16,
                l2_hit: 60,
                dram: 150,
            },
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_defaults_match_paper_table1_ground_truth() {
        let cfg = GpuConfig::a100();
        assert_eq!(cfg.latency.alu, 4);
        assert_eq!(cfg.latency.imad_wide, 5);
        assert_eq!(cfg.sm_count, 108);
    }

    #[test]
    fn cache_capacity() {
        let cfg = CacheConfig {
            line_bytes: 128,
            lines: 64,
        };
        assert_eq!(cfg.capacity(), 8192);
    }

    #[test]
    fn default_is_a100() {
        assert_eq!(GpuConfig::default(), GpuConfig::a100());
    }
}
