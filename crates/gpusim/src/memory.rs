//! Memory hierarchy: L1/L2 caches, global memory, shared memory.
//!
//! The memory subsystem serves two purposes:
//!
//! * **functional** — it stores the values written by stores and returned by
//!   loads, so that schedule corruption (a hazard) propagates into observable
//!   output differences (the paper's probabilistic testing relies on this),
//! * **timing** — each access reports a service latency derived from where
//!   the line was found (L1, L2 or DRAM), which is what makes interleaving
//!   loads and compute profitable for the RL agent.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

use crate::config::{CacheConfig, GpuConfig};

/// A SplitMix64 [`Hasher`] for the `u64 → u64` functional memory maps.
///
/// The default SipHash is DoS-resistant but costs a large fraction of every
/// functional load/store on the simulator's hot path; addresses here are
/// simulator-internal, so a statistically strong mix is all that is needed.
/// Only the map's bucket placement changes — iteration feeds the
/// order-insensitive XOR digest, so no observable output moves.
#[derive(Debug, Default, Clone, Copy)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 keys; fold bytes in 8 at a time.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = splitmix64(self.0 ^ value);
    }
}

/// Hash-map state shared by the functional global/shared memory images.
type AddrMap = HashMap<u64, u64, BuildHasherDefault<AddrHasher>>;

/// Memory-side event counters, aggregated over a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemCounters {
    /// Bytes loaded from global memory into registers (`LDG`).
    pub global_load_bytes: u64,
    /// Bytes stored to global memory (`STG`).
    pub global_store_bytes: u64,
    /// Bytes copied from global memory directly into shared memory (`LDGSTS`).
    pub global_to_shared_bytes: u64,
    /// Bytes loaded from shared memory (`LDS`, `LDSM`).
    pub shared_load_bytes: u64,
    /// Bytes stored to shared memory (`STS`).
    pub shared_store_bytes: u64,
    /// L1 hits for global accesses.
    pub l1_hits: u64,
    /// L1 misses for global accesses.
    pub l1_misses: u64,
    /// L2 hits for global accesses.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
}

impl MemCounters {
    /// Total bytes that crossed the device (DRAM + L2) boundary.
    #[must_use]
    pub fn device_bytes(&self) -> u64 {
        self.global_load_bytes + self.global_store_bytes + self.global_to_shared_bytes
    }

    /// L1 hit rate over global accesses, in `[0, 1]`.
    #[must_use]
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// L2 hit rate over L1 misses, in `[0, 1]`.
    #[must_use]
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }
}

/// A set-associative cache model with LRU replacement.
#[derive(Debug, Clone)]
struct Cache {
    line_bytes: u64,
    sets: Vec<Vec<(u64, u64)>>, // (tag, last-use stamp)
    ways: usize,
    stamp: u64,
}

impl Cache {
    fn new(cfg: CacheConfig) -> Self {
        let ways = 4usize.min(cfg.lines.max(1));
        let set_count = (cfg.lines / ways).max(1);
        Cache {
            line_bytes: cfg.line_bytes.max(1),
            sets: vec![Vec::with_capacity(ways); set_count],
            ways,
            stamp: 0,
        }
    }

    /// Probes the cache for the line containing `addr`, filling it on a miss.
    /// Returns true on a hit.
    fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let line = addr / self.line_bytes;
        let set_index = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_index];
        if let Some(entry) = set.iter_mut().find(|(tag, _)| *tag == line) {
            entry.1 = self.stamp;
            return true;
        }
        if set.len() >= self.ways {
            // Evict the least recently used line.
            if let Some(pos) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(pos, _)| pos)
            {
                set.swap_remove(pos);
            }
        }
        set.push((line, self.stamp));
        false
    }

    fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Allocation-reusing copy of `other` into `self`.
    fn assign_from(&mut self, other: &Cache) {
        self.line_bytes = other.line_bytes;
        self.sets.clone_from(&other.sets);
        self.ways = other.ways;
        self.stamp = other.stamp;
    }

    /// True when `self` and `other` (same geometry) will hit, miss and evict
    /// identically on every future access sequence. Eviction picks the
    /// minimum-stamp entry of a set and stamps are globally unique, so only
    /// the per-set *recency order* of the resident tags matters — absolute
    /// stamp values (which drift when two runs perform a different number of
    /// accesses) do not.
    fn recency_equivalent(&self, other: &Cache) -> bool {
        if self.sets.len() != other.sets.len() {
            return false;
        }
        self.sets.iter().zip(&other.sets).all(|(a, b)| {
            if a.len() != b.len() {
                return false;
            }
            // Ways are tiny (<= 4): insertion-sort (stamp, tag) pairs into
            // fixed stack arrays and compare the tag orders.
            let order = |set: &[(u64, u64)]| {
                let mut sorted = [(0u64, 0u64); 8];
                for (i, &(tag, stamp)) in set.iter().enumerate() {
                    let mut j = i;
                    while j > 0 && sorted[j - 1].0 > stamp {
                        sorted[j] = sorted[j - 1];
                        j -= 1;
                    }
                    sorted[j] = (stamp, tag);
                }
                sorted
            };
            let (oa, ob) = (order(a), order(b));
            oa.iter()
                .zip(ob.iter())
                .take(a.len())
                .all(|(x, y)| x.1 == y.1)
        })
    }
}

/// Where a global access was ultimately serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicePoint {
    /// Serviced from the per-SM L1 data cache.
    L1,
    /// Serviced from the device-level L2 cache.
    L2,
    /// Serviced from DRAM.
    Dram,
}

/// The full memory subsystem of one simulated SM context.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    l1: Cache,
    l2: Cache,
    latency_l1: u64,
    latency_l2: u64,
    latency_dram: u64,
    latency_shared: u64,
    global: AddrMap,
    shared: AddrMap,
    counters: MemCounters,
}

/// Default contents of an untouched global-memory word: a deterministic
/// function of its address, so that loads of never-written data are
/// reproducible.
#[must_use]
pub fn default_global_word(addr: u64) -> u64 {
    splitmix64(addr ^ 0xa076_1d64_78bd_642f)
}

/// A deterministic 64-bit mixer (SplitMix64 finalizer), used for default
/// memory contents and for the generic value semantics of floating-point
/// instructions.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl MemorySubsystem {
    /// Creates the memory subsystem for the given device configuration.
    #[must_use]
    pub fn new(cfg: &GpuConfig) -> Self {
        MemorySubsystem {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            latency_l1: cfg.arch.latency.l1_hit,
            latency_l2: cfg.arch.latency.l2_hit,
            latency_dram: cfg.arch.latency.dram,
            latency_shared: cfg.arch.latency.shared,
            global: AddrMap::default(),
            shared: AddrMap::default(),
            counters: MemCounters::default(),
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> MemCounters {
        self.counters
    }

    /// Clears both cache levels (used to model "L2 is cleared between
    /// measurement iterations", §3.6). Memory *contents* are preserved.
    pub fn clear_caches(&mut self) {
        self.l1.clear();
        self.l2.clear();
    }

    /// Timing probe of a global address: walks L1 → L2 → DRAM, updates the
    /// counters and returns the service latency and the service point.
    pub fn global_access_latency(&mut self, addr: u64, bypass_l1: bool) -> (u64, ServicePoint) {
        if !bypass_l1 && self.l1.access(addr) {
            self.counters.l1_hits += 1;
            return (self.latency_l1, ServicePoint::L1);
        }
        if !bypass_l1 {
            self.counters.l1_misses += 1;
        }
        if self.l2.access(addr) {
            self.counters.l2_hits += 1;
            (self.latency_l2, ServicePoint::L2)
        } else {
            self.counters.l2_misses += 1;
            (self.latency_dram, ServicePoint::Dram)
        }
    }

    /// Shared-memory access latency.
    #[must_use]
    pub fn shared_latency(&self) -> u64 {
        self.latency_shared
    }

    /// Functional read of a global word.
    #[must_use]
    pub fn load_global(&self, addr: u64) -> u64 {
        *self.global.get(&addr).unwrap_or(&default_global_word(addr))
    }

    /// Functional write of a global word.
    pub fn store_global(&mut self, addr: u64, value: u64, bytes: u64) {
        self.global.insert(addr, value);
        self.counters.global_store_bytes += bytes;
    }

    /// Records the traffic of a global load.
    pub fn record_global_load(&mut self, bytes: u64) {
        self.counters.global_load_bytes += bytes;
    }

    /// Records the traffic of an asynchronous global-to-shared copy.
    pub fn record_global_to_shared(&mut self, bytes: u64) {
        self.counters.global_to_shared_bytes += bytes;
    }

    /// Functional read of a shared-memory word.
    #[must_use]
    pub fn load_shared(&self, addr: u64) -> u64 {
        *self
            .shared
            .get(&addr)
            .unwrap_or(&default_global_word(addr ^ 0x5348_4152_4544)) // "SHARED"
    }

    /// Functional write of a shared-memory word.
    pub fn store_shared(&mut self, addr: u64, value: u64, bytes: u64) {
        self.shared.insert(addr, value);
        self.counters.shared_store_bytes += bytes;
    }

    /// Records the traffic of a shared-memory load.
    pub fn record_shared_load(&mut self, bytes: u64) {
        self.counters.shared_load_bytes += bytes;
    }

    /// A digest over the final global-memory contents, insensitive to the
    /// order in which stores executed but sensitive to their values. Two
    /// schedules that compute the same result produce the same digest.
    #[must_use]
    pub fn global_digest(&self) -> u64 {
        self.global.iter().fold(0u64, |acc, (addr, value)| {
            acc ^ splitmix64(addr.wrapping_mul(31).wrapping_add(*value))
        })
    }

    /// Reads a range of global words (used by probabilistic testing to
    /// compare output buffers).
    #[must_use]
    pub fn global_region(&self, base: u64, words: usize) -> Vec<u64> {
        (0..words as u64)
            .map(|i| self.load_global(base + i * 8))
            .collect()
    }

    /// Allocation-reusing copy of `other` into `self` (cache sets, memory
    /// images and counters keep their buffers).
    pub(crate) fn assign_from(&mut self, other: &MemorySubsystem) {
        self.l1.assign_from(&other.l1);
        self.l2.assign_from(&other.l2);
        self.latency_l1 = other.latency_l1;
        self.latency_l2 = other.latency_l2;
        self.latency_dram = other.latency_dram;
        self.latency_shared = other.latency_shared;
        self.global.clone_from(&other.global);
        self.shared.clone_from(&other.shared);
        self.counters = other.counters;
    }

    /// True when every future access against `self` observes exactly what it
    /// would against `other`: identical functional contents and
    /// recency-equivalent cache states (see [`Cache::recency_equivalent`]).
    /// The traffic counters are monotone tallies and deliberately excluded —
    /// the delta engine splices them additively.
    pub(crate) fn equivalent_to(&self, other: &MemorySubsystem) -> bool {
        self.global == other.global
            && self.shared == other.shared
            && self.l1.recency_equivalent(&other.l1)
            && self.l2.recency_equivalent(&other.l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subsystem() -> MemorySubsystem {
        MemorySubsystem::new(&GpuConfig::small())
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut mem = subsystem();
        let (lat1, p1) = mem.global_access_latency(0x1000, false);
        let (lat2, p2) = mem.global_access_latency(0x1000, false);
        assert_eq!(p1, ServicePoint::Dram);
        assert_eq!(p2, ServicePoint::L1);
        assert!(lat2 < lat1);
    }

    #[test]
    fn bypass_skips_l1() {
        let mut mem = subsystem();
        let (_, p1) = mem.global_access_latency(0x2000, true);
        let (_, p2) = mem.global_access_latency(0x2000, true);
        assert_eq!(p1, ServicePoint::Dram);
        assert_eq!(p2, ServicePoint::L2);
        assert_eq!(mem.counters().l1_hits, 0);
    }

    #[test]
    fn clearing_caches_forces_misses_but_keeps_data() {
        let mut mem = subsystem();
        mem.store_global(0x40, 7, 8);
        let _ = mem.global_access_latency(0x40, false);
        mem.clear_caches();
        let (_, p) = mem.global_access_latency(0x40, false);
        assert_eq!(p, ServicePoint::Dram);
        assert_eq!(mem.load_global(0x40), 7);
    }

    #[test]
    fn functional_store_load_round_trip() {
        let mut mem = subsystem();
        assert_eq!(mem.load_global(0x80), default_global_word(0x80));
        mem.store_global(0x80, 42, 8);
        assert_eq!(mem.load_global(0x80), 42);
        mem.store_shared(0x10, 9, 8);
        assert_eq!(mem.load_shared(0x10), 9);
    }

    #[test]
    fn digest_is_order_insensitive_and_value_sensitive() {
        let mut a = subsystem();
        a.store_global(0x0, 1, 8);
        a.store_global(0x8, 2, 8);
        let mut b = subsystem();
        b.store_global(0x8, 2, 8);
        b.store_global(0x0, 1, 8);
        assert_eq!(a.global_digest(), b.global_digest());
        let mut c = subsystem();
        c.store_global(0x0, 1, 8);
        c.store_global(0x8, 3, 8);
        assert_ne!(a.global_digest(), c.global_digest());
    }

    #[test]
    fn counters_accumulate() {
        let mut mem = subsystem();
        mem.record_global_load(16);
        mem.record_global_to_shared(128);
        mem.store_global(0x0, 1, 4);
        assert_eq!(mem.counters().device_bytes(), 16 + 128 + 4);
    }

    #[test]
    fn eviction_keeps_cache_bounded() {
        let mut mem = subsystem();
        // Touch far more lines than the small L1 can hold.
        for i in 0..10_000u64 {
            let _ = mem.global_access_latency(i * 128, false);
        }
        // Re-touching the very first line must now miss in L1 (it was evicted).
        let (_, p) = mem.global_access_latency(0, false);
        assert_ne!(p, ServicePoint::L1);
    }

    #[test]
    fn hit_rates() {
        let mut mem = subsystem();
        let _ = mem.global_access_latency(0, false);
        let _ = mem.global_access_latency(0, false);
        assert!(mem.counters().l1_hit_rate() > 0.0);
        assert!(mem.counters().l2_hit_rate() <= 1.0);
    }

    #[test]
    fn global_region_reads_default_values() {
        let mem = subsystem();
        let region = mem.global_region(0x100, 4);
        assert_eq!(region.len(), 4);
        assert_eq!(region[0], default_global_word(0x100));
    }
}
