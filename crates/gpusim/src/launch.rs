//! Kernel-level launch model: grids of thread blocks over many SMs, and the
//! CUDA-events-style measurement protocol.

use sass::Program;
use serde::{Deserialize, Serialize};

use crate::config::GpuConfig;
use crate::exec::ConstantBank;
use crate::sm::{SmReport, SmSimulator};

/// A kernel launch configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u64,
    /// Warps per thread block.
    pub warps_per_block: usize,
    /// Thread blocks co-resident on one SM (occupancy).
    pub blocks_per_sm: usize,
    /// Kernel parameters placed in constant bank 0: `(offset, value)`.
    pub params: Vec<(u32, u64)>,
    /// Useful work per thread block, used to convert runtime into
    /// throughput (FLOPs for compute-bound kernels, bytes for memory-bound
    /// kernels).
    pub work_per_block: f64,
    /// Simulation cycle limit per resident batch.
    pub max_cycles: u64,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            grid_blocks: 1,
            warps_per_block: 4,
            blocks_per_sm: 1,
            params: Vec::new(),
            work_per_block: 1.0,
            max_cycles: 4_000_000,
        }
    }
}

impl LaunchConfig {
    /// Builds the sorted constant bank consumed by the executor. Built once
    /// per launch; the executor resolves constants by binary search instead
    /// of rebuilding a hash map per simulation.
    #[must_use]
    pub fn constant_bank(&self) -> ConstantBank {
        ConstantBank::from_pairs(
            self.params
                .iter()
                .map(|&(offset, value)| ((0u32, offset), value)),
        )
    }
}

/// The result of simulating a kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// Per-SM report of one resident batch.
    pub sm: SmReport,
    /// Number of sequential "waves" of blocks needed to drain the grid.
    pub waves: u64,
    /// Total kernel runtime in microseconds.
    pub runtime_us: f64,
    /// Throughput in units of `work_per_block` per second.
    pub throughput: f64,
    /// Achieved device memory bandwidth in GB/s.
    pub memory_throughput_gbs: f64,
}

/// Simulates a full kernel launch on the device.
///
/// All thread blocks execute the same instruction stream, so one resident
/// batch (one SM's worth of co-resident blocks) is simulated cycle by cycle
/// and the grid-level runtime is obtained by multiplying by the number of
/// waves needed to drain the grid over all SMs.
#[must_use]
pub fn simulate_launch(config: &GpuConfig, program: &Program, launch: &LaunchConfig) -> KernelRun {
    let simulator = SmSimulator::new(config.clone());
    let constants = launch.constant_bank();
    let output = simulator.run(
        program,
        resident_warps(config, launch),
        0,
        &constants,
        launch.max_cycles,
    );
    kernel_run_from_report(config, launch, output.report)
}

/// The number of warps co-resident on one SM under `launch` (what
/// [`simulate_launch`] simulates cycle by cycle).
#[must_use]
pub fn resident_warps(config: &GpuConfig, launch: &LaunchConfig) -> usize {
    (launch.warps_per_block * launch.blocks_per_sm.max(1))
        .min(config.arch.max_warps_per_sm)
        .max(1)
}

/// Scales one resident batch's [`SmReport`] to the grid-level [`KernelRun`]
/// (waves, runtime, throughput). Pure arithmetic over the report — the delta
/// engine reuses it to turn a spliced per-SM report into a measurement that
/// is bit-identical to what [`simulate_launch`] would have produced.
#[must_use]
pub fn kernel_run_from_report(
    config: &GpuConfig,
    launch: &LaunchConfig,
    report: SmReport,
) -> KernelRun {
    let blocks_per_wave = (config.sm_count * launch.blocks_per_sm.max(1)) as u64;
    let waves = launch.grid_blocks.div_ceil(blocks_per_wave).max(1);
    let total_cycles = report.cycles.max(1) * waves;
    let runtime_us = total_cycles as f64 / (config.clock_ghz * 1e3);
    let total_work = launch.work_per_block * launch.grid_blocks as f64;
    let throughput = if runtime_us > 0.0 {
        total_work / (runtime_us * 1e-6)
    } else {
        0.0
    };
    // Device-level memory throughput: bytes moved by the whole grid over the
    // runtime (each simulated block moves `device_bytes`).
    let grid_bytes = report.mem.device_bytes() as f64 / launch.blocks_per_sm.max(1) as f64
        * launch.grid_blocks as f64;
    let memory_throughput_gbs = if runtime_us > 0.0 {
        grid_bytes / (runtime_us * 1e-6) / 1e9
    } else {
        0.0
    };
    KernelRun {
        sm: report,
        waves,
        runtime_us,
        throughput,
        memory_throughput_gbs,
    }
}

/// Options for the CUDA-events-style measurement protocol of §3.6 / §5.1:
/// warm-up iterations followed by measured iterations, L2 cleared between
/// iterations, with a small Gaussian measurement noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureOptions {
    /// Warm-up iterations (not measured).
    pub warmup: usize,
    /// Measured iterations.
    pub repeats: usize,
    /// Relative standard deviation of the measurement noise (the paper
    /// observes individual measurements within 1% of each other).
    pub noise_std: f64,
    /// Seed for the measurement-noise generator.
    pub seed: u64,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            warmup: 100,
            repeats: 100,
            noise_std: 0.003,
            seed: 0,
        }
    }
}

/// A kernel-runtime measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean runtime over the measured iterations, in microseconds.
    pub mean_us: f64,
    /// Standard deviation of the measured iterations, in microseconds.
    pub std_us: f64,
    /// The underlying noise-free launch simulation.
    pub run: KernelRun,
}

/// Measures the runtime of a kernel following the paper's protocol.
///
/// The simulator is deterministic, so the warm-up iterations only serve to
/// mirror the protocol; the measured iterations differ only by the injected
/// measurement noise.
#[must_use]
pub fn measure(
    config: &GpuConfig,
    program: &Program,
    launch: &LaunchConfig,
    options: &MeasureOptions,
) -> Measurement {
    measurement_from_run(simulate_launch(config, program, launch), options)
}

/// Applies the measurement protocol (repeat sampling plus seeded noise) to
/// an already-simulated launch. [`measure`] is `simulate_launch` followed by
/// this; the delta engine calls it directly on spliced runs, so the produced
/// [`Measurement`] is bit-for-bit what the full pipeline yields.
#[must_use]
pub fn measurement_from_run(run: KernelRun, options: &MeasureOptions) -> Measurement {
    use rand::{Rng, SeedableRng};
    let samples: Vec<f64> = if options.noise_std == 0.0 {
        // Noise-free protocol: the simulator is deterministic, so every
        // repeat observes exactly `runtime_us` (the noisy path multiplies by
        // `1.0 + 0.0`, which is the identity). Replicate the one simulated
        // sample instead of drawing per-repeat RNG noise; the mean/std
        // statistics below are computed identically, so the result is
        // bit-for-bit what the sampling loop produced.
        vec![run.runtime_us; options.repeats.max(1)]
    } else {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
            options.seed ^ run.sm.output_digest ^ run.sm.cycles,
        );
        (0..options.repeats.max(1))
            .map(|_| {
                // Box-Muller style noise via two uniform draws, clamped to a
                // few standard deviations to keep measurements realistic.
                let u: f64 = rng.gen_range(-1.0..1.0);
                let v: f64 = rng.gen_range(-1.0..1.0);
                let noise = (u + v) * 0.5 * options.noise_std * 3.0_f64.sqrt();
                run.runtime_us * (1.0 + noise)
            })
            .collect()
    };
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    Measurement {
        mean_us: mean,
        std_us: var.sqrt(),
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn launch() -> LaunchConfig {
        LaunchConfig {
            grid_blocks: 432,
            warps_per_block: 4,
            blocks_per_sm: 2,
            params: vec![(0x160, 0x10000)],
            work_per_block: 1024.0,
            max_cycles: 1_000_000,
        }
    }

    #[test]
    fn launch_scales_with_grid_size() {
        let cfg = GpuConfig::small();
        let program: sass::Program = SAMPLE.parse().unwrap();
        let small_grid = simulate_launch(
            &cfg,
            &program,
            &LaunchConfig {
                grid_blocks: 4,
                ..launch()
            },
        );
        let big_grid = simulate_launch(
            &cfg,
            &program,
            &LaunchConfig {
                grid_blocks: 4000,
                ..launch()
            },
        );
        assert!(big_grid.runtime_us > small_grid.runtime_us);
        assert!(big_grid.waves > small_grid.waves);
    }

    #[test]
    fn throughput_is_work_over_time() {
        let cfg = GpuConfig::small();
        let program: sass::Program = SAMPLE.parse().unwrap();
        let run = simulate_launch(&cfg, &program, &launch());
        let expected =
            launch().work_per_block * launch().grid_blocks as f64 / (run.runtime_us * 1e-6);
        assert!((run.throughput - expected).abs() / expected < 1e-9);
        assert!(run.memory_throughput_gbs > 0.0);
    }

    #[test]
    fn constant_bank_reaches_the_kernel() {
        let cfg = GpuConfig::small();
        let program: sass::Program = "\
[B------:R-:W-:-:S04] MOV R4, c[0x0][0x160] ;
[B------:R-:W-:-:S04] STG.E [R4], R4 ;
[B------:R-:W-:-:S05] EXIT ;
"
        .parse()
        .unwrap();
        let run = simulate_launch(&cfg, &program, &launch());
        assert_eq!(run.sm.hazards, 0);
        assert!(run.sm.mem.global_store_bytes > 0);
    }

    #[test]
    fn measurement_noise_is_small_and_centered() {
        let cfg = GpuConfig::small();
        let program: sass::Program = SAMPLE.parse().unwrap();
        let options = MeasureOptions::default();
        let m = measure(&cfg, &program, &launch(), &options);
        assert!((m.mean_us - m.run.runtime_us).abs() / m.run.runtime_us < 0.01);
        assert!(m.std_us / m.mean_us < 0.01, "std should be within 1%");
    }

    #[test]
    fn noise_free_measurement_short_circuits_to_one_simulation() {
        let cfg = GpuConfig::small();
        let program: sass::Program = SAMPLE.parse().unwrap();
        let options = MeasureOptions {
            warmup: 0,
            repeats: 7,
            noise_std: 0.0,
            seed: 123,
        };
        let m = measure(&cfg, &program, &launch(), &options);
        // Every sample is the deterministic runtime: zero spread, and the
        // mean is computed over `repeats` identical values exactly as the
        // sampling loop would have produced them.
        assert_eq!(m.std_us, 0.0);
        assert!((m.mean_us - m.run.runtime_us).abs() / m.run.runtime_us < 1e-12);
        // The seed is irrelevant without noise.
        let other = measure(
            &cfg,
            &program,
            &launch(),
            &MeasureOptions {
                seed: 456,
                ..options
            },
        );
        assert_eq!(m.mean_us, other.mean_us);
        assert_eq!(m.run, other.run);
    }

    #[test]
    fn measurement_is_reproducible_for_a_fixed_seed() {
        let cfg = GpuConfig::small();
        let program: sass::Program = SAMPLE.parse().unwrap();
        let options = MeasureOptions {
            seed: 7,
            ..MeasureOptions::default()
        };
        let a = measure(&cfg, &program, &launch(), &options);
        let b = measure(&cfg, &program, &launch(), &options);
        assert_eq!(a.mean_us, b.mean_us);
    }
}
