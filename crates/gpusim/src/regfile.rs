//! Per-warp register state: values, readiness times, bank conflicts and the
//! operand-reuse cache.

use sass::Register;

use crate::arch::BankModel;

/// Number of general-purpose registers per warp context.
const NUM_GPR: usize = 256;
/// Number of uniform registers per warp context.
const NUM_UR: usize = 64;
/// Number of predicate registers per warp context.
const NUM_PRED: usize = 8;

/// A stale-read event: an instruction consumed a register value before its
/// producer had completed.
///
/// On real hardware this is exactly the failure mode the stall-count and
/// barrier dependencies of §3.5 protect against; in the simulator it is both
/// recorded as a hazard and *propagated* (the stale value is returned), so
/// that corrupted schedules produce observably wrong outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleRead {
    /// The register that was read too early.
    pub register: Register,
    /// Cycle at which the premature read happened.
    pub cycle: u64,
    /// Cycle at which the value would have become ready.
    pub ready_at: u64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    /// Value visible once `ready_at` has passed.
    value: u64,
    /// Value visible before `ready_at` (the previous contents).
    stale: u64,
    /// Cycle at which `value` becomes architecturally visible.
    ready_at: u64,
}

impl Cell {
    /// True when reads of this cell at any cycle `>= cycle` behave exactly
    /// like reads of `other`: either the cells are identical, or both
    /// in-flight writes have already landed (`ready_at <= cycle`, so the
    /// stale value and the exact landing time can never be observed again)
    /// and the visible values agree.
    fn equivalent_at(self, other: Cell, cycle: u64) -> bool {
        self.value == other.value
            && (self == other || (self.ready_at <= cycle && other.ready_at <= cycle))
    }
}

/// The register file of one warp.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    gpr: Vec<Cell>,
    ur: Vec<Cell>,
    pred: Vec<Cell>,
    hazards: Vec<StaleRead>,
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterFile {
    /// Creates a register file with all registers zero and ready.
    #[must_use]
    pub fn new() -> Self {
        RegisterFile {
            gpr: vec![Cell::default(); NUM_GPR],
            ur: vec![Cell::default(); NUM_UR],
            pred: vec![Cell::default(); NUM_PRED],
            hazards: Vec::new(),
        }
    }

    fn cell(&self, reg: Register) -> Option<&Cell> {
        match reg {
            Register::Gpr(n) => self.gpr.get(n as usize),
            Register::Ur(n) => self.ur.get(n as usize),
            Register::Pred(n) | Register::UPred(n) => self.pred.get(n as usize),
            Register::Rz | Register::Urz | Register::Pt => None,
        }
    }

    fn cell_mut(&mut self, reg: Register) -> Option<&mut Cell> {
        match reg {
            Register::Gpr(n) => self.gpr.get_mut(n as usize),
            Register::Ur(n) => self.ur.get_mut(n as usize),
            Register::Pred(n) | Register::UPred(n) => self.pred.get_mut(n as usize),
            Register::Rz | Register::Urz | Register::Pt => None,
        }
    }

    /// Reads `reg` at `cycle`, honouring readiness: if the latest write has
    /// not completed yet the *stale* (previous) value is returned and a
    /// hazard is recorded.
    ///
    /// `RZ`/`URZ` read as zero and `PT` reads as one.
    pub fn read(&mut self, reg: Register, cycle: u64) -> u64 {
        match reg {
            Register::Rz | Register::Urz => return 0,
            Register::Pt => return 1,
            _ => {}
        }
        let Some(cell) = self.cell(reg) else { return 0 };
        if cycle < cell.ready_at {
            let event = StaleRead {
                register: reg,
                cycle,
                ready_at: cell.ready_at,
            };
            let stale = cell.stale;
            self.hazards.push(event);
            stale
        } else {
            cell.value
        }
    }

    /// Reads a register without any hazard bookkeeping (used by the in-order
    /// reference executor, which by construction never reads early).
    #[must_use]
    pub fn peek(&self, reg: Register) -> u64 {
        match reg {
            Register::Rz | Register::Urz => 0,
            Register::Pt => 1,
            _ => self.cell(reg).map_or(0, |c| c.value),
        }
    }

    /// Writes `value` to `reg`; the value becomes visible at `ready_at`.
    /// Writes to `RZ`/`URZ`/`PT` are discarded.
    pub fn write(&mut self, reg: Register, value: u64, ready_at: u64) {
        if let Some(cell) = self.cell_mut(reg) {
            cell.stale = cell.value;
            cell.value = value;
            cell.ready_at = ready_at;
        }
    }

    /// The cycle at which the most recent write to `reg` becomes visible.
    #[must_use]
    pub fn ready_at(&self, reg: Register) -> u64 {
        self.cell(reg).map_or(0, |c| c.ready_at)
    }

    /// Stale-read hazards recorded so far.
    #[must_use]
    pub fn hazards(&self) -> &[StaleRead] {
        &self.hazards
    }

    /// Number of stale-read hazards recorded so far.
    #[must_use]
    pub fn hazard_count(&self) -> usize {
        self.hazards.len()
    }

    /// Allocation-reusing copy of `other` into `self` (the register tables
    /// are fixed-size, so this is three `memcpy`s plus the hazard list).
    pub(crate) fn assign_from(&mut self, other: &RegisterFile) {
        self.gpr.clone_from(&other.gpr);
        self.ur.clone_from(&other.ur);
        self.pred.clone_from(&other.pred);
        self.hazards.clone_from(&other.hazards);
    }

    /// True when every future read (at cycles `>= cycle`) of `self` returns
    /// exactly what the same read of `other` would. The hazard *list* is a
    /// monotone tally and is deliberately not compared (see
    /// [`Cell::equivalent_at`] for the per-register rule).
    pub(crate) fn equivalent_at(&self, other: &RegisterFile, cycle: u64) -> bool {
        let files_eq = |a: &[Cell], b: &[Cell]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.equivalent_at(*y, cycle))
        };
        files_eq(&self.gpr, &other.gpr)
            && files_eq(&self.ur, &other.ur)
            && files_eq(&self.pred, &other.pred)
    }
}

/// The operand-reuse cache of one warp scheduler slot.
///
/// NVIDIA register files are banked; an instruction whose source operands
/// collide on a bank pays extra issue cycles unless the colliding operand
/// was kept in the operand-reuse cache by the *previous* instruction of the
/// same warp (the `.reuse` flag). Crucially, the cached operand is lost when
/// the scheduler switches warps in between — this is the interaction the
/// paper's Figure 9 optimization exploits.
///
/// The bank count, the per-conflict penalty and whether the reuse cache
/// exists at all are architecture parameters ([`BankModel`]).
#[derive(Debug, Clone, Default)]
pub struct ReuseCache {
    /// One slot per register bank: the register currently held, if any.
    slots: Vec<Option<Register>>,
    /// The warp that issued most recently on this scheduler.
    last_warp: Option<usize>,
    /// Extra issue cycles charged per conflicting operand.
    conflict_penalty: u64,
    /// When false, `.reuse` hints have no timing effect.
    reuse_enabled: bool,
}

impl ReuseCache {
    /// Creates a reuse cache with one slot per register bank under the
    /// Ampere policy (one-cycle conflict penalty, reuse cache enabled).
    /// Prefer [`ReuseCache::for_model`] with the architecture's
    /// [`BankModel`] so the selected backend's policy is honoured.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        ReuseCache::for_model(&BankModel {
            banks,
            conflict_penalty: 1,
            reuse_cache: true,
        })
    }

    /// Creates a reuse cache following an architecture's [`BankModel`].
    #[must_use]
    pub fn for_model(model: &BankModel) -> Self {
        ReuseCache {
            slots: vec![None; model.banks.max(1)],
            last_warp: None,
            conflict_penalty: model.conflict_penalty,
            reuse_enabled: model.reuse_cache,
        }
    }

    fn bank_of(&self, reg: Register) -> Option<usize> {
        match reg {
            Register::Gpr(n) => Some(n as usize % self.slots.len()),
            _ => None,
        }
    }

    /// Computes the extra issue cycles due to register-bank conflicts for an
    /// instruction of `warp` reading `sources`, where `reuse_flagged` lists
    /// the sources carrying the `.reuse` hint. Updates the cache state.
    ///
    /// Returns the number of conflict cycles (0 or more): the conflict count
    /// scaled by the architecture's per-conflict penalty.
    pub fn issue(&mut self, warp: usize, sources: &[Register], reuse_flagged: &[Register]) -> u64 {
        let same_warp = self.last_warp == Some(warp);
        if !same_warp {
            // A warp switch invalidates the operand cache.
            for slot in &mut self.slots {
                *slot = None;
            }
        }
        // Count bank conflicts among the *distinct* general-purpose sources,
        // forgiving collisions satisfied by the reuse cache. Source lists
        // are tiny (operand-bounded), so the dedup and seen-bank scratch
        // live in fixed stack arrays — this runs once per issued
        // instruction and must not allocate.
        const SCRATCH: usize = 16;
        let mut seen_banks = [0usize; SCRATCH];
        let mut seen_count = 0usize;
        let mut distinct = [Register::Rz; SCRATCH];
        let mut distinct_count = 0usize;
        let mut overflow: Vec<Register> = Vec::new();
        for &reg in sources {
            let stack = &distinct[..distinct_count];
            if !stack.contains(&reg) && !overflow.contains(&reg) {
                if distinct_count < SCRATCH {
                    distinct[distinct_count] = reg;
                    distinct_count += 1;
                } else {
                    overflow.push(reg);
                }
            }
        }
        let mut conflicts = 0u64;
        for &reg in distinct[..distinct_count].iter().chain(&overflow) {
            let Some(bank) = self.bank_of(reg) else {
                continue;
            };
            let cached = same_warp && self.slots[bank] == Some(reg);
            if seen_banks[..seen_count].contains(&bank) && !cached {
                conflicts += 1;
            } else if seen_count < SCRATCH {
                seen_banks[seen_count] = bank;
                seen_count += 1;
            }
        }
        // Populate the cache with the operands flagged `.reuse` for the next
        // instruction of this warp (on architectures that have the cache).
        for slot in &mut self.slots {
            *slot = None;
        }
        if self.reuse_enabled {
            for &reg in reuse_flagged {
                if let Some(bank) = self.bank_of(reg) {
                    self.slots[bank] = Some(reg);
                }
            }
        }
        self.last_warp = Some(warp);
        conflicts * self.conflict_penalty
    }

    /// True when `self` and `other` (built for the same [`BankModel`]) will
    /// charge identical conflicts to every future issue: same cached
    /// operands and same last-issuing warp.
    pub(crate) fn state_eq(&self, other: &ReuseCache) -> bool {
        self.slots == other.slots && self.last_warp == other.last_warp
    }

    /// Allocation-reusing copy of `other` into `self`.
    pub(crate) fn assign_from(&mut self, other: &ReuseCache) {
        self.slots.clone_from(&other.slots);
        self.last_warp = other.last_warp;
        self.conflict_penalty = other.conflict_penalty;
        self.reuse_enabled = other.reuse_enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_before_ready_returns_stale_value_and_records_hazard() {
        let mut rf = RegisterFile::new();
        rf.write(Register::Gpr(4), 111, 10);
        assert_eq!(
            rf.read(Register::Gpr(4), 5),
            0,
            "stale value is the old contents"
        );
        assert_eq!(rf.hazard_count(), 1);
        assert_eq!(rf.read(Register::Gpr(4), 10), 111);
        assert_eq!(rf.hazard_count(), 1);
    }

    #[test]
    fn zero_registers_read_constant_values() {
        let mut rf = RegisterFile::new();
        rf.write(Register::Rz, 99, 0);
        assert_eq!(rf.read(Register::Rz, 100), 0);
        assert_eq!(rf.read(Register::Pt, 100), 1);
        assert_eq!(rf.hazard_count(), 0);
    }

    #[test]
    fn predicates_and_uniform_registers_are_separate_files() {
        let mut rf = RegisterFile::new();
        rf.write(Register::Pred(2), 1, 0);
        rf.write(Register::Ur(2), 77, 0);
        rf.write(Register::Gpr(2), 55, 0);
        assert_eq!(rf.peek(Register::Pred(2)), 1);
        assert_eq!(rf.peek(Register::Ur(2)), 77);
        assert_eq!(rf.peek(Register::Gpr(2)), 55);
    }

    #[test]
    fn bank_conflict_costs_a_cycle() {
        let mut cache = ReuseCache::new(4);
        // R4 and R8 are both in bank 0 of a 4-bank file.
        let conflicts = cache.issue(0, &[Register::Gpr(4), Register::Gpr(8)], &[]);
        assert_eq!(conflicts, 1);
        // Distinct banks: no conflict.
        let conflicts = cache.issue(0, &[Register::Gpr(4), Register::Gpr(5)], &[]);
        assert_eq!(conflicts, 0);
    }

    #[test]
    fn reuse_hint_removes_conflict_when_same_warp_issues_back_to_back() {
        let mut cache = ReuseCache::new(4);
        // First instruction caches R4 (bank 0) for reuse.
        let _ = cache.issue(
            0,
            &[Register::Gpr(4), Register::Gpr(5)],
            &[Register::Gpr(4)],
        );
        // Next instruction of the same warp reads R4 and R8 (both bank 0):
        // the cached copy of R4 absorbs the conflict.
        let conflicts = cache.issue(0, &[Register::Gpr(8), Register::Gpr(4)], &[]);
        assert_eq!(conflicts, 0);
    }

    #[test]
    fn warp_switch_invalidates_reuse_cache() {
        let mut cache = ReuseCache::new(4);
        let _ = cache.issue(
            0,
            &[Register::Gpr(4), Register::Gpr(5)],
            &[Register::Gpr(4)],
        );
        // Another warp issues in between.
        let _ = cache.issue(1, &[Register::Gpr(12)], &[]);
        // Back to warp 0: the cached R4 is gone, so the conflict is paid.
        let conflicts = cache.issue(0, &[Register::Gpr(8), Register::Gpr(4)], &[]);
        assert_eq!(conflicts, 1);
    }

    #[test]
    fn bank_model_controls_penalty_and_reuse_policy() {
        let model = BankModel {
            banks: 4,
            conflict_penalty: 2,
            reuse_cache: false,
        };
        let mut cache = ReuseCache::for_model(&model);
        // Conflicts cost the architecture's penalty, not a fixed cycle.
        let conflicts = cache.issue(
            0,
            &[Register::Gpr(4), Register::Gpr(8)],
            &[Register::Gpr(4)],
        );
        assert_eq!(conflicts, 2);
        // With the reuse cache disabled the `.reuse` hint above is inert, so
        // the same-warp collision is paid again.
        let conflicts = cache.issue(0, &[Register::Gpr(8), Register::Gpr(4)], &[]);
        assert_eq!(conflicts, 2);
        // The Ampere-policy constructor matches `new`.
        let mut ampere = ReuseCache::for_model(&BankModel {
            banks: 4,
            conflict_penalty: 1,
            reuse_cache: true,
        });
        let conflicts = ampere.issue(0, &[Register::Gpr(4), Register::Gpr(8)], &[]);
        assert_eq!(conflicts, 1);
    }

    #[test]
    fn duplicate_source_registers_do_not_conflict_with_themselves() {
        let mut cache = ReuseCache::new(4);
        let conflicts = cache.issue(0, &[Register::Gpr(4), Register::Gpr(4)], &[]);
        assert_eq!(conflicts, 0);
    }
}
