//! Nsight-Compute-style derived counters.
//!
//! The paper's Table 3 and the Appendix-B memory charts are produced with
//! NVIDIA Nsight Compute. The simulator tracks the underlying events
//! directly; this module turns a [`KernelRun`] into the same derived
//! quantities so that the reproduction harness can print the same rows.

use serde::{Deserialize, Serialize};

use crate::config::GpuConfig;
use crate::launch::KernelRun;

/// The "Compute Workload Analysis" / "Memory Workload Analysis" rows of
/// Nsight Compute used in Table 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadAnalysis {
    /// Executed instructions per cycle over active cycles.
    pub ipc_active: f64,
    /// Executed instructions per cycle over elapsed cycles.
    pub ipc_elapsed: f64,
    /// Fraction of cycles the SM issued at least one instruction, in percent.
    pub sm_busy_pct: f64,
    /// Achieved device memory throughput in GB/s.
    pub memory_throughput_gbs: f64,
    /// Fraction of cycles the memory pipelines were busy, in percent.
    pub mem_busy_pct: f64,
    /// Achieved fraction of peak DRAM bandwidth, in percent.
    pub max_bandwidth_pct: f64,
}

impl WorkloadAnalysis {
    /// Derives the analysis from a kernel run on a given device.
    #[must_use]
    pub fn from_run(config: &GpuConfig, run: &KernelRun) -> Self {
        WorkloadAnalysis {
            ipc_active: run.sm.ipc_active(),
            ipc_elapsed: run.sm.ipc_elapsed(),
            sm_busy_pct: run.sm.sm_busy() * 100.0,
            memory_throughput_gbs: run.memory_throughput_gbs,
            mem_busy_pct: run.sm.mem_busy() * 100.0,
            max_bandwidth_pct: (run.memory_throughput_gbs / config.dram_bandwidth_gbs) * 100.0,
        }
    }
}

/// The memory chart of Nsight Compute (Figures 10 and 11 of the paper):
/// bytes moved between the kernel, the caches, shared memory and DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryChart {
    /// Bytes loaded from global memory into registers.
    pub global_load_bytes: u64,
    /// Bytes stored from registers to global memory.
    pub global_store_bytes: u64,
    /// Bytes copied asynchronously from global to shared memory (`LDGSTS`).
    pub global_to_shared_bytes: u64,
    /// Bytes loaded from shared memory.
    pub shared_load_bytes: u64,
    /// Bytes stored to shared memory (excluding the asynchronous copy path).
    pub shared_store_bytes: u64,
    /// L1 hit rate over global accesses, in percent.
    pub l1_hit_rate_pct: f64,
    /// L2 hit rate over L1 misses, in percent.
    pub l2_hit_rate_pct: f64,
    /// Global-to-shared-memory throughput in GB/s (the quantity the paper
    /// highlights as significantly improved by CuAsmRL).
    pub global_to_shared_gbs: f64,
}

impl MemoryChart {
    /// Derives the chart from a kernel run.
    #[must_use]
    pub fn from_run(run: &KernelRun) -> Self {
        let seconds = run.runtime_us * 1e-6;
        let per_block = run.sm.mem;
        let grid_scale = run.waves as f64;
        let gts_bytes_total = per_block.global_to_shared_bytes as f64 * grid_scale;
        MemoryChart {
            global_load_bytes: per_block.global_load_bytes,
            global_store_bytes: per_block.global_store_bytes,
            global_to_shared_bytes: per_block.global_to_shared_bytes,
            shared_load_bytes: per_block.shared_load_bytes,
            shared_store_bytes: per_block.shared_store_bytes,
            l1_hit_rate_pct: per_block.l1_hit_rate() * 100.0,
            l2_hit_rate_pct: per_block.l2_hit_rate() * 100.0,
            global_to_shared_gbs: if seconds > 0.0 {
                gts_bytes_total / seconds / 1e9
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{simulate_launch, LaunchConfig};

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W-:-:S04] MOV R74, 0x100 ;
[B------:R0:W-:-:S02] LDGSTS.E.128 [R74], desc[UR18][R4.64] ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn run() -> (GpuConfig, KernelRun) {
        let cfg = GpuConfig::small();
        let program: sass::Program = SAMPLE.parse().unwrap();
        let launch = LaunchConfig {
            grid_blocks: 64,
            warps_per_block: 4,
            blocks_per_sm: 1,
            work_per_block: 100.0,
            ..LaunchConfig::default()
        };
        let run = simulate_launch(&cfg, &program, &launch);
        (cfg, run)
    }

    #[test]
    fn workload_analysis_is_derived_consistently() {
        let (cfg, run) = run();
        let analysis = WorkloadAnalysis::from_run(&cfg, &run);
        assert!(analysis.ipc_active >= analysis.ipc_elapsed);
        assert!(analysis.sm_busy_pct > 0.0 && analysis.sm_busy_pct <= 100.0);
        assert!(analysis.mem_busy_pct > 0.0 && analysis.mem_busy_pct <= 100.0);
        assert!(analysis.max_bandwidth_pct >= 0.0);
    }

    #[test]
    fn memory_chart_reports_traffic_by_path() {
        let (_cfg, run) = run();
        let chart = MemoryChart::from_run(&run);
        assert_eq!(chart.global_to_shared_bytes, 16 * 4);
        assert!(chart.global_load_bytes > 0);
        assert!(chart.global_store_bytes > 0);
        assert!(chart.global_to_shared_gbs > 0.0);
        assert!(chart.l1_hit_rate_pct <= 100.0);
    }
}
