//! A deterministic, cycle-level simulator of an NVIDIA streaming
//! multiprocessor, used as the execution substrate of the CuAsmRL
//! reproduction.
//!
//! The paper obtains its reward signal by running candidate SASS schedules
//! on a real A100 GPU. This crate replaces that hardware with a simulator
//! that models the first-order mechanisms the paper's optimizations exploit:
//!
//! * warp scheduling and thread-level parallelism,
//! * scoreboard wait barriers and stall-count hazards of the SASS control
//!   codes,
//! * a memory hierarchy (L1/L2/DRAM, shared memory, asynchronous `LDGSTS`
//!   copies) whose latencies make interleaving loads with compute pay off,
//! * register-bank conflicts and the operand-reuse cache (`.reuse` flag),
//! * Nsight-Compute-style performance counters.
//!
//! Functional execution is precise for integer/address arithmetic and memory
//! operations and deterministic (value-mixing) for floating-point/tensor
//! instructions, so an incorrectly reordered schedule produces observably
//! wrong outputs — exactly what the paper's probabilistic testing checks.
//!
//! The microarchitecture is **pluggable**: every per-SM parameter (opcode
//! latency tables, issue/stall rules, register-bank model, scoreboard
//! semantics, SM resource limits) lives in an [`ArchSpec`] carried by the
//! [`GpuConfig`], with built-in Ampere-, Turing- and Hopper-like profiles
//! selected by name ([`GpuConfig::by_name`]). The Ampere profile reproduces
//! the original hard-coded simulator bit for bit.
//!
//! # Example
//!
//! ```
//! use gpusim::{GpuConfig, LaunchConfig, simulate_launch};
//!
//! let program: sass::Program = "\
//! [B------:R-:W-:-:S04] MOV R4, 0x1000 ;
//! [B------:R-:W0:-:S02] LDG.E R2, [R4] ;
//! [B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
//! [B------:R-:W-:-:S04] STG.E [R4], R6 ;
//! [B------:R-:W-:-:S05] EXIT ;".parse()?;
//! let run = simulate_launch(&GpuConfig::a100(), &program, &LaunchConfig::default());
//! assert!(run.sm.hazards == 0);
//! assert!(run.runtime_us > 0.0);
//! # Ok::<(), sass::SassError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod compiled;
mod config;
mod counters;
mod delta;
mod exec;
mod launch;
mod memory;
mod regfile;
mod sm;

pub use arch::{ArchSpec, BankModel};
pub use compiled::{CompiledEdit, CompiledProgram};
pub use config::{CacheConfig, GpuConfig, LatencyModel};
pub use counters::{MemoryChart, WorkloadAnalysis};
pub use delta::{DeltaBaseline, DeltaConfig, DeltaEngine, DeltaOutcome};
pub use exec::{execute, ConstantBank, ExecContext, MemAccess, Outcome};
pub use launch::{
    kernel_run_from_report, measure, measurement_from_run, resident_warps, simulate_launch,
    KernelRun, LaunchConfig, MeasureOptions, Measurement,
};
pub use memory::{default_global_word, splitmix64, MemCounters, MemorySubsystem, ServicePoint};
pub use regfile::{RegisterFile, ReuseCache, StaleRead};
pub use sm::{SimOutput, SmReport, SmSimulator};
