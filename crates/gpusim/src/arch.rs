//! Pluggable GPU architecture backends.
//!
//! The simulator used to hard-code one Ampere-like microarchitecture. This
//! module turns every per-SM microarchitectural parameter into data — an
//! [`ArchSpec`] — so that the same cycle loop can model different GPU
//! generations:
//!
//! * the **opcode latency table** ([`LatencyModel`] plus per-opcode
//!   overrides),
//! * the **issue and stall rules** (issue width, minimum stall, tensor-pipe
//!   issue gap),
//! * the **register-bank model** ([`BankModel`]: bank count, conflict
//!   penalty, operand-reuse cache),
//! * the **scoreboard-barrier semantics** (via [`sass::ArchClass`]),
//! * the **SM resource limits** (resident warps, LSU queue depth,
//!   LSU bytes per cycle).
//!
//! Three built-in profiles are provided: [`ArchSpec::ampere`] (bit-identical
//! to the pre-refactor hard-coded behaviour, enforced by golden tests),
//! [`ArchSpec::turing`] and [`ArchSpec::hopper`]. Profiles are selected by
//! name through [`ArchSpec::by_name`] / [`crate::GpuConfig::by_name`] and
//! travel inside [`crate::GpuConfig`], so every consumer — program lowering,
//! both simulator loops, the stall-table micro-benchmarks, action masking
//! and the schedule-evaluation cache keys — sees the same profile.

use sass::{ArchClass, Mnemonic, Opcode};
use serde::{Deserialize, Serialize};

use crate::config::LatencyModel;

/// The register-file bank model of one architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankModel {
    /// Number of register banks (operand collectors). Register `Rn` lives in
    /// bank `n % banks`.
    pub banks: usize,
    /// Extra issue cycles paid per conflicting source operand.
    pub conflict_penalty: u64,
    /// Whether the operand-reuse cache (`.reuse` flag) exists. When false,
    /// reuse hints are accepted but have no timing effect.
    pub reuse_cache: bool,
}

/// A complete per-SM microarchitecture description.
///
/// The chip-level parameters (SM count, clock, memory system) stay in
/// [`crate::GpuConfig`]; everything the warp scheduler and the execution
/// pipelines decide per cycle lives here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Profile name (`"ampere"`, `"turing"`, `"hopper"`); part of the
    /// schedule-evaluation cache key.
    pub name: String,
    /// The architecture generation (control-code interpretation).
    pub class: ArchClass,
    /// Instructions the warp scheduler can issue per cycle per SM. A value
    /// above 1 models dual-issue schedulers.
    pub issue_width: usize,
    /// Maximum warps resident on one SM.
    pub max_warps_per_sm: usize,
    /// Maximum outstanding off-SM memory requests per SM.
    pub lsu_queue_depth: usize,
    /// Register-file bank model.
    pub banks: BankModel,
    /// Pipeline latencies by instruction class.
    pub latency: LatencyModel,
    /// Per-opcode latency overrides consulted before the class table. Keys
    /// are full dotted opcode names (`"MUFU.RSQ"`) or base mnemonics.
    pub op_latency_overrides: Vec<(String, u64)>,
    /// Minimum effective stall count (a stall of 0 in the listing still
    /// stalls this many cycles).
    pub min_stall: u64,
    /// An MMA may not issue while the tensor pipe is busy beyond
    /// `cycle + mma_issue_gap`.
    pub mma_issue_gap: u64,
    /// Cycles after a request leaves the LSU before its read barrier clears.
    pub read_barrier_drain: u64,
    /// Warp-wide bytes the LSU accepts per cycle.
    pub lsu_bytes_per_cycle: u64,
    /// Tensor-pipe occupancy per MMA instruction.
    pub mma_busy: u64,
}

impl ArchSpec {
    /// The Ampere-like baseline profile. Its parameters are exactly the
    /// constants the simulator hard-coded before architectures became
    /// pluggable; the `arch_golden` workspace test pins this bit for bit.
    #[must_use]
    pub fn ampere() -> Self {
        let latency = LatencyModel::default();
        ArchSpec {
            name: "ampere".to_string(),
            class: ArchClass::Ampere,
            issue_width: 1,
            max_warps_per_sm: 64,
            lsu_queue_depth: 64,
            banks: BankModel {
                banks: 4,
                conflict_penalty: 1,
                reuse_cache: true,
            },
            mma_busy: latency.mma / 2,
            latency,
            op_latency_overrides: Vec::new(),
            min_stall: 1,
            mma_issue_gap: 4,
            read_barrier_drain: 4,
            lsu_bytes_per_cycle: 128,
        }
    }

    /// A Turing-like profile (sm_75): a two-bank register file, a slower
    /// first-generation tensor pipe, a narrower LSU and higher memory
    /// latencies.
    ///
    /// Like every built-in profile, its *unprotected* fixed latencies stay
    /// within the stall budget the `kernels` generators emit (ALU ≤ 4,
    /// `IMAD.WIDE` ≤ 6, `S2R` ≤ 13): the generators model Ampere-era
    /// `ptxas -O3` output, and a real compiler targeting each architecture
    /// would emit arch-appropriate stall counts. Barrier-protected classes
    /// (memory, `MUFU`, MMA accumulators) are free to differ arbitrarily.
    #[must_use]
    pub fn turing() -> Self {
        let latency = LatencyModel {
            alu: 4,
            imad_wide: 6,
            mma: 32,
            sfu: 20,
            s2r: 13,
            shared: 26,
            l1_hit: 38,
            l2_hit: 216,
            dram: 560,
        };
        ArchSpec {
            name: "turing".to_string(),
            class: ArchClass::Turing,
            issue_width: 1,
            max_warps_per_sm: 32,
            lsu_queue_depth: 32,
            banks: BankModel {
                banks: 2,
                conflict_penalty: 1,
                reuse_cache: true,
            },
            mma_busy: latency.mma / 2,
            latency,
            op_latency_overrides: vec![("MUFU.RSQ".to_string(), 24)],
            min_stall: 1,
            mma_issue_gap: 8,
            read_barrier_drain: 4,
            lsu_bytes_per_cycle: 64,
        }
    }

    /// A Hopper-like profile (sm_90): more register banks, a faster tensor
    /// pipe with a tighter re-issue window, a wider LSU and lower memory
    /// latencies.
    #[must_use]
    pub fn hopper() -> Self {
        let latency = LatencyModel {
            alu: 4,
            imad_wide: 5,
            mma: 8,
            sfu: 14,
            s2r: 10,
            shared: 19,
            l1_hit: 29,
            l2_hit: 170,
            dram: 410,
        };
        ArchSpec {
            name: "hopper".to_string(),
            class: ArchClass::Hopper,
            issue_width: 1,
            max_warps_per_sm: 64,
            lsu_queue_depth: 128,
            banks: BankModel {
                banks: 8,
                conflict_penalty: 1,
                reuse_cache: true,
            },
            mma_busy: latency.mma / 2,
            latency,
            op_latency_overrides: Vec::new(),
            min_stall: 1,
            mma_issue_gap: 2,
            read_barrier_drain: 4,
            lsu_bytes_per_cycle: 256,
        }
    }

    /// Looks a built-in profile up by name (case-insensitive). Accepts the
    /// generation names and the marketing aliases (`"a100"`, `"t4"`,
    /// `"h100"`, `"sm75"`, `"sm80"`, `"sm90"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ampere" | "a100" | "sm80" | "sm_80" => Some(ArchSpec::ampere()),
            "turing" | "t4" | "sm75" | "sm_75" => Some(ArchSpec::turing()),
            "hopper" | "h100" | "sm90" | "sm_90" => Some(ArchSpec::hopper()),
            _ => None,
        }
    }

    /// Names of the built-in profiles, in `by_name` canonical form.
    #[must_use]
    pub fn builtin_names() -> [&'static str; 3] {
        ["ampere", "turing", "hopper"]
    }

    /// Fixed pipeline latency of a (non-memory) instruction: the per-opcode
    /// override table first (full dotted name, then base mnemonic), then the
    /// latency class of the mnemonic.
    #[must_use]
    pub fn fixed_latency(&self, opcode: &Opcode) -> u64 {
        // The override scan formats the opcode name; skip it entirely for
        // profiles without overrides — this runs once per instruction in
        // program lowering and per issue in the reference interpreter.
        if !self.op_latency_overrides.is_empty() {
            let full = opcode.full_name();
            let base = full.split('.').next().unwrap_or(&full);
            for (name, latency) in &self.op_latency_overrides {
                if name == &full || name == base {
                    return *latency;
                }
            }
        }
        match opcode.base() {
            Mnemonic::Imad if opcode.has_modifier("WIDE") => self.latency.imad_wide,
            Mnemonic::Hmma | Mnemonic::Imma => self.latency.mma,
            Mnemonic::Mufu => self.latency.sfu,
            Mnemonic::S2r => self.latency.s2r,
            _ => self.latency.alu,
        }
    }

    /// The opcode → minimum-stall entries of this architecture's Table-1
    /// analogue: the common fixed-latency opcodes at the ALU latency, wide
    /// multiply-adds at theirs and tensor MMAs at theirs. `cuasmrl`'s
    /// `StallTable::for_arch` is built from exactly this list.
    #[must_use]
    pub fn stall_entries(&self) -> Vec<(&'static str, u8)> {
        let clamp = |v: u64| u8::try_from(v).unwrap_or(u8::MAX);
        let alu = clamp(self.latency.alu);
        let mut entries: Vec<(&'static str, u8)> = [
            "IADD3",
            "IMAD.IADD",
            "IADD3.X",
            "MOV",
            "IABS",
            "IMAD",
            "FADD",
            "HADD2",
            "IMNMX",
            "SEL",
            "LEA",
            "FMUL",
            "FSETP",
            "ISETP",
            "LOP3",
            "SHF",
        ]
        .into_iter()
        .map(|op| (op, alu))
        .collect();
        let wide = clamp(self.latency.imad_wide);
        entries.push(("IMAD.WIDE", wide));
        entries.push(("IMAD.WIDE.U32", wide));
        let mma = clamp(self.latency.mma);
        entries.push(("HMMA", mma));
        entries.push(("HMMA.16816.F32", mma));
        entries
    }

    /// Number of scoreboard wait barriers one warp owns on this
    /// architecture.
    #[must_use]
    pub fn scoreboard_count(&self) -> usize {
        self.class.scoreboard_barriers() as usize
    }
}

impl Default for ArchSpec {
    fn default() -> Self {
        ArchSpec::ampere()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ampere_matches_the_pre_refactor_constants() {
        let arch = ArchSpec::ampere();
        assert_eq!(arch.latency, LatencyModel::default());
        assert_eq!(arch.issue_width, 1);
        assert_eq!(arch.max_warps_per_sm, 64);
        assert_eq!(arch.lsu_queue_depth, 64);
        assert_eq!(arch.banks.banks, 4);
        assert_eq!(arch.banks.conflict_penalty, 1);
        assert!(arch.banks.reuse_cache);
        assert_eq!(arch.min_stall, 1);
        assert_eq!(arch.mma_issue_gap, 4);
        assert_eq!(arch.read_barrier_drain, 4);
        assert_eq!(arch.lsu_bytes_per_cycle, 128);
        assert_eq!(arch.mma_busy, 8);
        assert!(arch.op_latency_overrides.is_empty());
        assert_eq!(arch.scoreboard_count(), 6);
    }

    #[test]
    fn profiles_resolve_by_name_and_alias() {
        assert_eq!(ArchSpec::by_name("ampere").unwrap().name, "ampere");
        assert_eq!(ArchSpec::by_name("A100").unwrap().name, "ampere");
        assert_eq!(ArchSpec::by_name("sm75").unwrap().name, "turing");
        assert_eq!(ArchSpec::by_name("H100").unwrap().name, "hopper");
        assert!(ArchSpec::by_name("pascal").is_none());
        for name in ArchSpec::builtin_names() {
            assert_eq!(ArchSpec::by_name(name).unwrap().name, name);
        }
    }

    #[test]
    fn profiles_differ_in_observable_parameters() {
        let a = ArchSpec::ampere();
        let t = ArchSpec::turing();
        let h = ArchSpec::hopper();
        assert_ne!(a.latency.mma, t.latency.mma);
        assert_ne!(a.latency.mma, h.latency.mma);
        assert_ne!(a.banks.banks, t.banks.banks);
        assert_ne!(a.banks.banks, h.banks.banks);
        assert_ne!(a.lsu_bytes_per_cycle, t.lsu_bytes_per_cycle);
        assert!(t.class.sm_version() < a.class.sm_version());
        assert!(a.class.sm_version() < h.class.sm_version());
        assert!(!t.class.has_async_copy());
        assert!(h.class.has_async_copy());
    }

    #[test]
    fn opcode_latency_overrides_win_over_the_class_table() {
        let turing = ArchSpec::turing();
        let rsq: Opcode = "MUFU.RSQ".parse().unwrap();
        let rcp: Opcode = "MUFU.RCP".parse().unwrap();
        assert_eq!(turing.fixed_latency(&rsq), 24, "override by full name");
        assert_eq!(turing.fixed_latency(&rcp), turing.latency.sfu);
        let mut custom = ArchSpec::ampere();
        custom.op_latency_overrides.push(("MUFU".to_string(), 99));
        assert_eq!(custom.fixed_latency(&rcp), 99, "override by base name");
    }

    #[test]
    fn stall_entries_follow_the_latency_model() {
        let ampere = ArchSpec::ampere();
        let entries = ampere.stall_entries();
        let get = |name: &str| entries.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        assert_eq!(get("IADD3"), Some(4));
        assert_eq!(get("IMAD.WIDE"), Some(5));
        assert_eq!(get("HMMA"), Some(16));
        let turing = ArchSpec::turing();
        let entries = turing.stall_entries();
        let get = |name: &str| entries.iter().find(|(n, _)| *n == name).map(|(_, v)| *v);
        assert_eq!(get("IMAD.WIDE"), Some(6));
        assert_eq!(get("HMMA"), Some(32));
    }
}
