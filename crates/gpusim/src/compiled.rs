//! One-time lowering of a SASS program into a dense, pre-decoded IR.
//!
//! The reward signal of the assembly game re-simulates the whole kernel
//! cycle by cycle after every single move, and the interpretive executor
//! ([`crate::execute`]) re-decodes each [`sass::Instruction`] on every issue:
//! it re-derives destination counts, re-reads opcode modifiers, allocates
//! operand and register vectors, and formats opcode names just to seed the
//! value-mixing hash. [`CompiledProgram::compile`] performs all of that
//! exactly once per schedule:
//!
//! * operands are lowered into [`LoweredOperand`]s with immediates,
//!   special-register dispatch and constant-bank fallbacks pre-resolved,
//! * branch labels are resolved to instruction indices,
//! * per-instruction scheduling metadata (stall, barriers, latency class,
//!   fixed latency, LDGSTS group key, register-bank source/reuse lists) is
//!   captured into plain fields the cycle loop reads without touching
//!   `sass` structs or allocating,
//! * the value-mixing tags of the generic floating-point/tensor semantics
//!   are precomputed so the hot loop never formats a string.
//!
//! The lowering is semantics-preserving by construction: for any program,
//! warp count and constant bank, [`crate::SmSimulator::run`] (which
//! interprets the compiled form) produces reports and memory images
//! bit-identical to [`crate::SmSimulator::run_reference`] (the original
//! instruction-at-a-time interpreter, kept as the executable specification).
//! The `compiled_matches_reference` tests and the workspace-level
//! `compiled_equivalence` suite enforce this.

use sass::{Instruction, Item, LatencyClass, MemorySpace, Mnemonic, Operand, Program, Register};

use crate::config::GpuConfig;
use crate::exec::{
    access_bytes, const_fallback, mix_values, Cmp, ExecContext, MemAccess, SpecialReg,
};
use crate::memory::{splitmix64, MemorySubsystem};
use crate::regfile::RegisterFile;

/// A source operand lowered to its pre-resolved evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum LoweredOperand {
    /// Non-predicate register read with its arithmetic modifiers.
    Gpr {
        /// The register to read.
        reg: Register,
        /// Arithmetic negation (`-R4`).
        negated: bool,
        /// Absolute value (`|R4|`).
        absolute: bool,
    },
    /// Predicate register read, optionally logically inverted (`!P0`).
    Pred {
        /// The predicate register to read.
        reg: Register,
        /// Logical not prefix.
        not: bool,
    },
    /// A value known at compile time: immediates, float bit patterns,
    /// labels/memory placeholders (0) and hashed unknown special registers.
    Value(u64),
    /// A constant-bank read with its miss fallback precomputed.
    Const {
        /// Constant bank index.
        bank: u32,
        /// Byte offset within the bank.
        offset: u32,
        /// Deterministic value used when the launch did not bind the slot.
        fallback: u64,
    },
    /// A special register, classified once through the shared `SR_*` table.
    Special(SpecialReg),
}

impl LoweredOperand {
    fn lower(operand: &Operand) -> Self {
        match operand {
            Operand::Reg(r) if r.reg.is_predicate() => LoweredOperand::Pred {
                reg: r.reg,
                not: r.not,
            },
            Operand::Reg(r) => LoweredOperand::Gpr {
                reg: r.reg,
                negated: r.negated,
                absolute: r.absolute,
            },
            Operand::Imm(v) => LoweredOperand::Value(*v as u64),
            Operand::FImm(v) => LoweredOperand::Value(v.to_bits()),
            Operand::Const { bank, offset } => LoweredOperand::Const {
                bank: *bank,
                offset: *offset,
                fallback: const_fallback(*bank, *offset),
            },
            // Memory references among value sources evaluate to zero (their
            // registers are read during address formation instead).
            Operand::Mem(_) => LoweredOperand::Value(0),
            Operand::Special(name) => LoweredOperand::Special(SpecialReg::classify(name)),
            Operand::Label(_) => LoweredOperand::Value(0),
        }
    }

    #[inline]
    fn eval(&self, regs: &mut RegisterFile, ctx: &ExecContext<'_>) -> u64 {
        match *self {
            LoweredOperand::Gpr {
                reg,
                negated,
                absolute,
            } => {
                let mut v = regs.read(reg, ctx.cycle);
                if negated {
                    v = v.wrapping_neg();
                }
                if absolute {
                    v = (v as i64).unsigned_abs();
                }
                v
            }
            LoweredOperand::Pred { reg, not } => {
                let v = regs.read(reg, ctx.cycle);
                if not {
                    u64::from(v == 0)
                } else {
                    v
                }
            }
            LoweredOperand::Value(v) => v,
            LoweredOperand::Const {
                bank,
                offset,
                fallback,
            } => ctx.constants.get(bank, offset).unwrap_or(fallback),
            LoweredOperand::Special(sr) => sr.value(ctx),
        }
    }
}

/// A memory-reference operand lowered for address formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LoweredMemRef {
    descriptor: Option<Register>,
    base: Option<Register>,
    offset: i64,
}

impl LoweredMemRef {
    fn lower(operand: &Operand) -> Option<Self> {
        let m = operand.as_mem()?;
        Some(LoweredMemRef {
            descriptor: m.descriptor,
            base: m.base.as_ref().map(|b| b.reg),
            offset: m.offset,
        })
    }

    #[inline]
    fn address(&self, regs: &mut RegisterFile, cycle: u64) -> u64 {
        let mut addr = 0u64;
        if let Some(desc) = self.descriptor {
            addr = addr.wrapping_add(regs.read(desc, cycle));
        }
        if let Some(base) = self.base {
            addr = addr.wrapping_add(regs.read(base, cycle));
        }
        addr.wrapping_add(self.offset as u64)
    }
}

/// Resolved control transfer of a branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BranchTarget {
    /// No label operand: the branch falls through.
    None,
    /// The label resolved to this instruction index.
    Index(usize),
    /// The label does not exist in the program: the warp finishes.
    Invalid,
}

/// Functional dispatch class, mirroring the mnemonic match of
/// [`crate::execute`] with all static decisions pre-resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecKind {
    /// `MOV`.
    Mov,
    /// `IADD3` / `LEA`: sum of every source, zeroed carry-out predicates.
    Sum,
    /// `IMAD`: multiply-accumulate.
    Mad,
    /// `SEL` / `FSEL`.
    Select,
    /// `IABS`.
    Abs,
    /// `SHF` (direction pre-resolved).
    Shift { right: bool },
    /// `IMNMX`.
    Min,
    /// `ISETP` / `FSETP` / `HSETP2` (comparison pre-resolved).
    Setp(Cmp),
    /// `CS2R` / `S2R`.
    MoveSpecial,
    /// `LDG` / `LD` / `LDC`.
    LoadGlobal,
    /// `LDS` / `LDSM`.
    LoadShared,
    /// `LDL`.
    LoadLocal,
    /// `STG` / `ST` / `RED` / `ATOMG` / `ATOM`.
    StoreGlobal,
    /// `STS` / `STL` / `ATOMS`.
    StoreShared,
    /// `LDGSTS`.
    GlobalToShared,
    /// `BRA` / `BRX` / `JMP`.
    Branch,
    /// `EXIT` / `RET`.
    Exit,
    /// Barriers, fences and other architecturally silent instructions.
    Quiet,
    /// Everything else: deterministic value mixing.
    Mix,
}

/// Control transfer produced by one compiled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Fall through to the next instruction.
    Next,
    /// Jump to the given instruction index.
    Jump(usize),
    /// The warp finishes (EXIT, or a branch to an unknown label).
    Finish,
}

/// Architectural effects of one compiled execution. Register writes are
/// returned through the caller-provided scratch buffer so the hot loop
/// performs no per-issue allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ExecEffects {
    pub(crate) access: Option<MemAccess>,
    pub(crate) flow: Flow,
    pub(crate) predicated_off: bool,
}

/// One fully decoded instruction: the functional recipe plus every piece of
/// scheduling metadata the cycle loop needs, in dense pre-computed fields.
#[derive(Debug, Clone)]
pub(crate) struct CompiledInst {
    // --- functional ---
    guard: Option<(Register, bool)>,
    kind: ExecKind,
    sources: Vec<LoweredOperand>,
    first_dest: Option<Register>,
    /// Carry-out destinations of `Sum` (written zero), or every predicate
    /// destination of `Setp` (all written with the comparison result).
    extra_dests: Vec<Register>,
    /// `(destination, mixing tag)` pairs of the generic `Mix` semantics.
    mix_dests: Vec<(Register, u64)>,
    /// Load address / store address / LDGSTS shared destination.
    mem: Option<LoweredMemRef>,
    /// LDGSTS global source.
    mem2: Option<LoweredMemRef>,
    /// Store data operand (re-evaluated after address formation, exactly as
    /// the interpretive executor does).
    store_data: Option<LoweredOperand>,
    access_bytes: u64,
    bypass_l1: bool,
    branch: BranchTarget,
    // --- scheduling ---
    pub(crate) stall: u64,
    pub(crate) yield_flag: bool,
    pub(crate) wait_mask: u8,
    pub(crate) read_barrier: Option<u8>,
    pub(crate) write_barrier: Option<u8>,
    pub(crate) fixed_latency: u64,
    pub(crate) is_memory: bool,
    pub(crate) is_mma: bool,
    pub(crate) is_bar: bool,
    pub(crate) is_depbar: bool,
    pub(crate) is_ldgsts: bool,
    pub(crate) variable_latency: bool,
    pub(crate) mma_busy: u64,
    /// General-purpose source registers (for register-bank conflicts).
    pub(crate) bank_sources: Vec<Register>,
    /// Registers flagged `.reuse` (for the operand-reuse cache).
    pub(crate) reuse_regs: Vec<Register>,
    /// LDGSTS ascending-group key (shared base register, offset).
    pub(crate) ldgsts_key: Option<(Register, i64)>,
}

impl CompiledInst {
    #[allow(clippy::too_many_lines)] // one arm per mnemonic class, like the interpreter
    fn compile(inst: &Instruction, config: &GpuConfig) -> Self {
        let opcode = inst.opcode();
        let n_dest = inst.dest_operand_count();
        let dests: Vec<&Operand> = inst.operands().iter().take(n_dest).collect();
        let source_ops: Vec<&Operand> = inst.operands().iter().skip(n_dest).collect();
        let sources: Vec<LoweredOperand> = source_ops
            .iter()
            .map(|o| LoweredOperand::lower(o))
            .collect();
        let opcode_tag = splitmix64(opcode.full_name().len() as u64 ^ 0xC0DE);
        let live = |reg: Register| (!reg.is_zero_or_true()).then_some(reg);
        let first_dest = dests
            .first()
            .and_then(|o| o.as_reg())
            .map(|r| r.reg)
            .and_then(live);

        let mut extra_dests = Vec::new();
        let mut mix_dests = Vec::new();
        let mut mem = None;
        let mut mem2 = None;
        let mut store_data = None;
        let mut branch = BranchTarget::None;

        let kind = match opcode.base() {
            Mnemonic::Mov => ExecKind::Mov,
            Mnemonic::Iadd3 | Mnemonic::Lea => {
                extra_dests = dests
                    .iter()
                    .skip(1)
                    .filter_map(|o| o.as_reg())
                    .filter_map(|r| live(r.reg))
                    .collect();
                ExecKind::Sum
            }
            Mnemonic::Imad => ExecKind::Mad,
            Mnemonic::Sel | Mnemonic::Fsel => ExecKind::Select,
            Mnemonic::Iabs => ExecKind::Abs,
            Mnemonic::Shf => ExecKind::Shift {
                right: opcode.has_modifier("R"),
            },
            Mnemonic::Imnmx => ExecKind::Min,
            Mnemonic::Isetp | Mnemonic::Fsetp | Mnemonic::Hsetp2 => {
                extra_dests = dests
                    .iter()
                    .filter_map(|o| o.as_reg())
                    .filter_map(|r| live(r.reg))
                    .collect();
                ExecKind::Setp(Cmp::lower(opcode.modifiers().first()))
            }
            Mnemonic::Cs2r | Mnemonic::S2r => ExecKind::MoveSpecial,
            Mnemonic::Ldg | Mnemonic::Ld | Mnemonic::Ldc => {
                mem = source_ops.iter().find_map(|o| LoweredMemRef::lower(o));
                ExecKind::LoadGlobal
            }
            Mnemonic::Lds | Mnemonic::Ldsm => {
                mem = source_ops.iter().find_map(|o| LoweredMemRef::lower(o));
                ExecKind::LoadShared
            }
            Mnemonic::Ldl => {
                mem = source_ops.iter().find_map(|o| LoweredMemRef::lower(o));
                ExecKind::LoadLocal
            }
            Mnemonic::Stg | Mnemonic::St | Mnemonic::Red | Mnemonic::Atomg | Mnemonic::Atom => {
                mem = inst.operands().iter().find_map(LoweredMemRef::lower);
                store_data = inst
                    .operands()
                    .iter()
                    .rfind(|o| o.as_mem().is_none())
                    .map(LoweredOperand::lower);
                ExecKind::StoreGlobal
            }
            Mnemonic::Sts | Mnemonic::Stl | Mnemonic::Atoms => {
                mem = inst.operands().iter().find_map(LoweredMemRef::lower);
                store_data = inst
                    .operands()
                    .iter()
                    .rfind(|o| o.as_mem().is_none())
                    .map(LoweredOperand::lower);
                ExecKind::StoreShared
            }
            Mnemonic::Ldgsts => {
                let mut mems = inst.operands().iter().filter_map(LoweredMemRef::lower);
                mem = mems.next();
                mem2 = mems.next();
                ExecKind::GlobalToShared
            }
            Mnemonic::Bra | Mnemonic::Brx | Mnemonic::Jmp => ExecKind::Branch,
            Mnemonic::Exit | Mnemonic::Ret => ExecKind::Exit,
            Mnemonic::Nop
            | Mnemonic::Bar
            | Mnemonic::Depbar
            | Mnemonic::Ldgdepbar
            | Mnemonic::Membar
            | Mnemonic::Errbar
            | Mnemonic::Cctl
            | Mnemonic::Fence
            | Mnemonic::Bssy
            | Mnemonic::Bsync
            | Mnemonic::Warpsync
            | Mnemonic::Yield
            | Mnemonic::Nanosleep => ExecKind::Quiet,
            _ => {
                mix_dests = dests
                    .iter()
                    .filter_map(|o| o.as_reg())
                    .filter(|r| !r.reg.is_zero_or_true())
                    .map(|r| (r.reg, opcode_tag ^ r.reg.to_string().len() as u64))
                    .collect();
                ExecKind::Mix
            }
        };
        if matches!(kind, ExecKind::Branch) {
            branch = match inst
                .operands()
                .iter()
                .find(|o| matches!(o, Operand::Label(_)))
            {
                Some(Operand::Label(_)) => BranchTarget::Invalid, // resolved later
                _ => BranchTarget::None,
            };
        }

        let control = inst.control();
        let arch = &config.arch;
        let fixed_latency = arch.fixed_latency(opcode);
        CompiledInst {
            guard: inst.guard().map(|g| (g.pred, g.negated)),
            kind,
            sources,
            first_dest,
            extra_dests,
            mix_dests,
            mem,
            mem2,
            store_data,
            access_bytes: access_bytes(inst),
            bypass_l1: opcode.has_modifier("BYPASS"),
            branch,
            stall: u64::from(control.stall()).max(arch.min_stall),
            yield_flag: control.yield_flag(),
            wait_mask: control.wait_mask(),
            read_barrier: control.read_barrier(),
            write_barrier: control.write_barrier(),
            fixed_latency,
            is_memory: opcode.is_memory(),
            is_mma: opcode.is_mma(),
            is_bar: matches!(opcode.base(), Mnemonic::Bar),
            is_depbar: matches!(opcode.base(), Mnemonic::Depbar | Mnemonic::Ldgdepbar),
            is_ldgsts: matches!(opcode.base(), Mnemonic::Ldgsts),
            variable_latency: opcode.latency_class() == LatencyClass::Variable,
            mma_busy: arch.mma_busy,
            bank_sources: inst.uses().into_iter().filter(|r| r.is_gpr()).collect(),
            reuse_regs: inst
                .operands()
                .iter()
                .filter(|o| o.has_reuse())
                .flat_map(Operand::registers)
                .filter(|r| r.is_gpr())
                .collect(),
            ldgsts_key: inst
                .operands()
                .iter()
                .find_map(Operand::as_mem)
                .and_then(|m| m.base.map(|b| (b.reg, m.offset))),
        }
    }

    /// Executes this instruction: evaluates operands against the register
    /// file and memory, appends register writes to `writes` (whose
    /// visibility time the caller decides) and returns the remaining
    /// effects. Bit-for-bit equivalent to [`crate::execute`].
    #[inline]
    pub(crate) fn execute(
        &self,
        regs: &mut RegisterFile,
        mem: &mut MemorySubsystem,
        ctx: &ExecContext<'_>,
        writes: &mut Vec<(Register, u64)>,
        values: &mut Vec<u64>,
    ) -> ExecEffects {
        writes.clear();
        let mut effects = ExecEffects {
            access: None,
            flow: Flow::Next,
            predicated_off: false,
        };
        if let Some((pred, negated)) = self.guard {
            let v = regs.read(pred, ctx.cycle) != 0;
            if v == negated {
                effects.predicated_off = true;
                return effects;
            }
        }
        values.clear();
        values.extend(self.sources.iter().map(|s| s.eval(regs, ctx)));

        match self.kind {
            ExecKind::Mov | ExecKind::MoveSpecial => {
                if let Some(reg) = self.first_dest {
                    writes.push((reg, values.first().copied().unwrap_or(0)));
                }
            }
            ExecKind::Sum => {
                if let Some(reg) = self.first_dest {
                    let sum = values.iter().fold(0u64, |acc, v| acc.wrapping_add(*v));
                    writes.push((reg, sum));
                }
                for &reg in &self.extra_dests {
                    writes.push((reg, 0));
                }
            }
            ExecKind::Mad => {
                if let Some(reg) = self.first_dest {
                    let a = values.first().copied().unwrap_or(0);
                    let b = values.get(1).copied().unwrap_or(0);
                    let c = values.get(2).copied().unwrap_or(0);
                    writes.push((reg, a.wrapping_mul(b).wrapping_add(c)));
                }
            }
            ExecKind::Select => {
                if let Some(reg) = self.first_dest {
                    let pred = values.last().copied().unwrap_or(1);
                    let a = values.first().copied().unwrap_or(0);
                    let b = values.get(1).copied().unwrap_or(0);
                    writes.push((reg, if pred != 0 { a } else { b }));
                }
            }
            ExecKind::Abs => {
                if let Some(reg) = self.first_dest {
                    let v = values.first().copied().unwrap_or(0) as i64;
                    writes.push((reg, v.unsigned_abs()));
                }
            }
            ExecKind::Shift { right } => {
                if let Some(reg) = self.first_dest {
                    let a = values.first().copied().unwrap_or(0);
                    let sh = values.get(1).copied().unwrap_or(0) & 63;
                    writes.push((reg, if right { a >> sh } else { a << sh }));
                }
            }
            ExecKind::Min => {
                if let Some(reg) = self.first_dest {
                    let a = values.first().copied().unwrap_or(0) as i64;
                    let b = values.get(1).copied().unwrap_or(0) as i64;
                    writes.push((reg, a.min(b) as u64));
                }
            }
            ExecKind::Setp(cmp) => {
                let a = values.first().copied().unwrap_or(0) as i64;
                let b = values.get(1).copied().unwrap_or(0) as i64;
                let result = u64::from(cmp.apply(a, b));
                for &reg in &self.extra_dests {
                    writes.push((reg, result));
                }
            }
            ExecKind::LoadGlobal => {
                let addr = self.mem.map_or(0, |m| m.address(regs, ctx.cycle));
                let value = mem.load_global(addr);
                mem.record_global_load(self.access_bytes);
                if let Some(reg) = self.first_dest {
                    writes.push((reg, value));
                }
                effects.access = Some(MemAccess {
                    space: MemorySpace::Global,
                    addr,
                    bytes: self.access_bytes,
                    is_load: true,
                    bypass_l1: false,
                });
            }
            ExecKind::LoadShared => {
                let addr = self.mem.map_or(0, |m| m.address(regs, ctx.cycle));
                let value = mem.load_shared(addr);
                mem.record_shared_load(self.access_bytes);
                if let Some(reg) = self.first_dest {
                    writes.push((reg, value));
                }
                effects.access = Some(MemAccess {
                    space: MemorySpace::Shared,
                    addr,
                    bytes: self.access_bytes,
                    is_load: true,
                    bypass_l1: false,
                });
            }
            ExecKind::LoadLocal => {
                let addr = self.mem.map_or(0, |m| m.address(regs, ctx.cycle));
                let value = mem.load_global(addr ^ 0x4c4f43414c); // distinct local window
                if let Some(reg) = self.first_dest {
                    writes.push((reg, value));
                }
                effects.access = Some(MemAccess {
                    space: MemorySpace::Local,
                    addr,
                    bytes: self.access_bytes,
                    is_load: true,
                    bypass_l1: false,
                });
            }
            ExecKind::StoreGlobal => {
                let addr = self.mem.map_or(0, |m| m.address(regs, ctx.cycle));
                let data = self.store_data.map_or(0, |d| d.eval(regs, ctx));
                mem.store_global(addr, data, self.access_bytes);
                effects.access = Some(MemAccess {
                    space: MemorySpace::Global,
                    addr,
                    bytes: self.access_bytes,
                    is_load: false,
                    bypass_l1: false,
                });
            }
            ExecKind::StoreShared => {
                let addr = self.mem.map_or(0, |m| m.address(regs, ctx.cycle));
                let data = self.store_data.map_or(0, |d| d.eval(regs, ctx));
                mem.store_shared(addr, data, self.access_bytes);
                effects.access = Some(MemAccess {
                    space: MemorySpace::Shared,
                    addr,
                    bytes: self.access_bytes,
                    is_load: false,
                    bypass_l1: false,
                });
            }
            ExecKind::GlobalToShared => {
                let shared_dst = self.mem.map_or(0, |m| m.address(regs, ctx.cycle));
                let global_src = self.mem2.map_or(0, |m| m.address(regs, ctx.cycle));
                let value = mem.load_global(global_src);
                mem.store_shared(shared_dst, value, self.access_bytes);
                mem.record_global_to_shared(self.access_bytes);
                effects.access = Some(MemAccess {
                    space: MemorySpace::GlobalToShared,
                    addr: global_src,
                    bytes: self.access_bytes,
                    is_load: true,
                    bypass_l1: self.bypass_l1,
                });
            }
            ExecKind::Branch => {
                effects.flow = match self.branch {
                    BranchTarget::None => Flow::Next,
                    BranchTarget::Index(idx) => Flow::Jump(idx),
                    BranchTarget::Invalid => Flow::Finish,
                };
            }
            ExecKind::Exit => {
                effects.flow = Flow::Finish;
            }
            ExecKind::Quiet => {}
            ExecKind::Mix => {
                for &(reg, tag) in &self.mix_dests {
                    writes.push((reg, mix_values(tag, values)));
                }
            }
        }
        effects
    }
}

/// A SASS program lowered into the dense pre-decoded form the cycle loop
/// interprets. The lowering captures the opcode latency table and stall
/// rules of one [`GpuConfig`]'s architecture backend
/// ([`crate::ArchSpec`]); compile once per (schedule, device) pair — a
/// program compiled for one architecture must not be run under another.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) insts: Vec<CompiledInst>,
}

impl CompiledProgram {
    /// Lowers `program` for the given device. Labels are resolved to
    /// instruction indices; unknown branch labels terminate their warp at
    /// run time (matching the interpretive executor).
    #[must_use]
    pub fn compile(program: &Program, config: &GpuConfig) -> Self {
        let mut insts = Vec::with_capacity(program.instruction_count());
        let mut labels: Vec<(&str, usize)> = Vec::new();
        let mut index = 0usize;
        for item in program.items() {
            match item {
                Item::Label(name) => labels.push((name, index)),
                Item::Instr(inst) => {
                    insts.push(CompiledInst::compile(inst, config));
                    index += 1;
                }
            }
        }
        // Resolve branch labels in a second pass.
        index = 0;
        for item in program.items() {
            let Item::Instr(inst) = item else { continue };
            if matches!(insts[index].branch, BranchTarget::Invalid) {
                if let Some(Operand::Label(name)) = inst
                    .operands()
                    .iter()
                    .find(|o| matches!(o, Operand::Label(_)))
                {
                    if let Some(&(_, target)) =
                        labels.iter().find(|(label, _)| label == &name.as_str())
                    {
                        insts[index].branch = BranchTarget::Index(target);
                    }
                }
            }
            index += 1;
        }
        CompiledProgram { insts }
    }

    /// Swaps the instructions at positions `a` and `b`, mirroring
    /// [`sass::Program::swap_instructions`] on the lowered form. Labels sit
    /// *between* instructions and branch targets are stored as absolute
    /// instruction indices, so swapping two lowered instructions yields
    /// exactly what recompiling the swapped source program would — the
    /// `compiled_equivalence` suite pins this. Out-of-range indices are
    /// ignored.
    pub fn swap_insts(&mut self, a: usize, b: usize) {
        if a < self.insts.len() && b < self.insts.len() {
            self.insts.swap(a, b);
        }
    }

    /// Re-lowers the instruction at `index` from `inst`, mirroring an
    /// in-place edit of the source program (control-code retuning, reuse-flag
    /// toggling, ...). The replacement must not change which label the
    /// instruction branches to: labels are resolved during whole-program
    /// compilation, so a fresh single-instruction lowering inherits the old
    /// slot's resolved branch target when its own is still unresolved.
    /// Out-of-range indices are ignored.
    pub fn replace_inst(&mut self, index: usize, inst: &Instruction, config: &GpuConfig) {
        let Some(slot) = self.insts.get_mut(index) else {
            return;
        };
        let mut fresh = CompiledInst::compile(inst, config);
        if matches!(fresh.branch, BranchTarget::Invalid) {
            fresh.branch = slot.branch;
        }
        *slot = fresh;
    }

    /// Applies a small batch of edits, each O(1) in program length. This is
    /// the multi-edit generalisation of [`CompiledProgram::swap_insts`] used
    /// by the richer action space: a [`CompiledEdit::Swap`] transposes two
    /// lowered slots and a [`CompiledEdit::Replace`] re-lowers one slot in
    /// place (see [`CompiledProgram::replace_inst`] for the branch-target
    /// contract). Edits apply in order; out-of-range indices are ignored.
    pub fn apply_edits(&mut self, edits: &[CompiledEdit<'_>], config: &GpuConfig) {
        for edit in edits {
            match *edit {
                CompiledEdit::Swap { a, b } => self.swap_insts(a, b),
                CompiledEdit::Replace { index, inst } => self.replace_inst(index, inst, config),
            }
        }
    }

    /// Number of instructions in the compiled program.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns true for an empty program.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// One O(1) mutation of a [`CompiledProgram`], applied by
/// [`CompiledProgram::apply_edits`].
#[derive(Debug, Clone, Copy)]
pub enum CompiledEdit<'a> {
    /// Transpose the lowered instructions at positions `a` and `b`.
    Swap {
        /// First position.
        a: usize,
        /// Second position.
        b: usize,
    },
    /// Re-lower position `index` from the (edited) source instruction.
    Replace {
        /// Position to re-lower.
        index: usize,
        /// The edited source instruction.
        inst: &'a Instruction,
    },
}
