//! State embedding (§3.4).
//!
//! Each SASS instruction is embedded into a fixed-width vector: the control
//! code fields (wait mask, read/write barrier, yield, stall), a memory /
//! non-memory opcode flag, the operand register indices normalized by the
//! size of the register table (padded with `-1` to the maximum operand count
//! of the kernel), and a trailing block of **architecture features** — a
//! normalized description of the GPU backend the schedule is being timed on
//! (compute capability, ALU/MMA latency, register banks), so one policy can
//! condition on which architecture it is optimizing for. The whole schedule
//! becomes a matrix with one row per instruction — the observation consumed
//! by the RL agent.

use gpusim::ArchSpec;
use nn::Matrix;
use sass::Program;

use crate::analysis::Analysis;

/// Number of fixed (non-operand) features per instruction.
pub const FIXED_FEATURES: usize = 11;

/// Number of architecture features appended to every instruction row.
pub const ARCH_FEATURES: usize = 4;

/// The normalized architecture-feature block shared by every row of an
/// observation: compute capability, ALU latency, MMA latency and register
/// bank count, each scaled into roughly `[0, 1]`.
#[must_use]
pub fn arch_features(arch: &ArchSpec) -> [f32; ARCH_FEATURES] {
    [
        arch.class.sm_version() as f32 / 100.0,
        arch.latency.alu as f32 / 16.0,
        arch.latency.mma as f32 / 64.0,
        arch.banks.banks as f32 / 8.0,
    ]
}

/// Embeds one instruction into `features` values.
fn embed_instruction(
    inst: &sass::Instruction,
    analysis: &Analysis,
    features: usize,
    arch: &[f32; ARCH_FEATURES],
) -> Vec<f32> {
    let mut row = Vec::with_capacity(features);
    let cc = inst.control();
    for b in 0..6u8 {
        row.push(if cc.waits_on(b) { 1.0 } else { -1.0 });
    }
    row.push(cc.read_barrier().map_or(-1.0, f32::from));
    row.push(cc.write_barrier().map_or(-1.0, f32::from));
    row.push(if cc.yield_flag() { 1.0 } else { -1.0 });
    row.push(f32::from(cc.stall()) / 15.0);
    row.push(if inst.opcode().is_memory() { 1.0 } else { -1.0 });
    let table_len = analysis.register_table.len().max(1) as f32;
    for operand in inst.operands().iter().take(analysis.max_operands) {
        let value = operand
            .registers()
            .first()
            .and_then(|r| analysis.register_table.get(r))
            .map_or(-1.0, |idx| *idx as f32 / table_len);
        row.push(value);
    }
    while row.len() < features - ARCH_FEATURES {
        row.push(-1.0);
    }
    row.extend_from_slice(arch);
    row
}

/// Embeds the whole schedule as a `[instructions x features]` matrix, with
/// the given architecture-feature block appended to every row.
#[must_use]
pub fn embed_program(program: &Program, analysis: &Analysis, arch: &ArchSpec) -> Matrix {
    let features = feature_count(analysis);
    let arch_row = arch_features(arch);
    let rows: Vec<Vec<f32>> = program
        .instructions()
        .map(|inst| embed_instruction(inst, analysis, features, &arch_row))
        .collect();
    let mut matrix = Matrix::zeros(rows.len(), features);
    for (r, row) in rows.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            matrix.set(r, c, *v);
        }
    }
    matrix
}

/// Re-embeds only the given instruction rows of an existing observation
/// matrix in place. A row's embedding depends solely on its own instruction
/// plus the analysis-wide register table, operand padding width and the
/// architecture block, so after an adjacent swap only the two moved rows
/// change — provided the register table and padding width are unchanged
/// (the caller checks this and falls back to [`embed_program`] otherwise).
/// Rows outside the matrix are ignored.
pub fn embed_rows_into(
    matrix: &mut Matrix,
    program: &Program,
    rows: &[usize],
    analysis: &Analysis,
    arch: &ArchSpec,
) {
    let features = feature_count(analysis);
    debug_assert_eq!(matrix.cols(), features);
    let arch_row = arch_features(arch);
    for &r in rows {
        let Some(inst) = program.instruction(r) else {
            continue;
        };
        if r >= matrix.rows() {
            continue;
        }
        let row = embed_instruction(inst, analysis, features, &arch_row);
        for (c, v) in row.iter().enumerate() {
            matrix.set(r, c, *v);
        }
    }
}

/// Number of embedding features for a program analysed with `analysis`.
#[must_use]
pub fn feature_count(analysis: &Analysis) -> usize {
    FIXED_FEATURES + analysis.max_operands + ARCH_FEATURES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::stall_table::StallTable;

    const SAMPLE: &str = "\
[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;
[B--2---:R-:W-:-:S04] IADD3 R4, R0, 0x1, RZ ;
[B------:R-:W-:-:S05] EXIT ;
";

    #[test]
    fn embedding_has_one_row_per_instruction_and_fixed_width() {
        let program: Program = SAMPLE.parse().unwrap();
        let analysis = analyze(&program, &StallTable::builtin_a100());
        let m = embed_program(&program, &analysis, &ArchSpec::ampere());
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), feature_count(&analysis));
        // First instruction: memory flag is +1, write barrier is 2, yield set.
        let row = m.row(0);
        assert_eq!(row[7], 2.0);
        assert_eq!(row[8], 1.0);
        assert_eq!(row[10], 1.0);
        // Second instruction: non-memory flag is -1 and it waits on barrier 2.
        assert_eq!(m.row(1)[10], -1.0);
        assert_eq!(m.row(1)[2], 1.0);
    }

    #[test]
    fn missing_operands_are_padded_with_minus_one() {
        let program: Program = SAMPLE.parse().unwrap();
        let analysis = analyze(&program, &StallTable::builtin_a100());
        let m = embed_program(&program, &analysis, &ArchSpec::ampere());
        let exit_row = m.row(2);
        let operand_cols = FIXED_FEATURES..FIXED_FEATURES + analysis.max_operands;
        assert!(exit_row[operand_cols].iter().all(|&v| v == -1.0));
    }

    #[test]
    fn operand_indices_are_normalized() {
        let program: Program = SAMPLE.parse().unwrap();
        let analysis = analyze(&program, &StallTable::builtin_a100());
        let m = embed_program(&program, &analysis, &ArchSpec::ampere());
        for r in 0..m.rows() {
            for &v in &m.row(r)[FIXED_FEATURES..FIXED_FEATURES + analysis.max_operands] {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn arch_features_distinguish_backends_and_fill_the_tail_columns() {
        let program: Program = SAMPLE.parse().unwrap();
        let analysis = analyze(&program, &StallTable::builtin_a100());
        let ampere = embed_program(&program, &analysis, &ArchSpec::ampere());
        let hopper = embed_program(&program, &analysis, &ArchSpec::hopper());
        assert_eq!(ampere.cols(), hopper.cols());
        let tail = ampere.cols() - ARCH_FEATURES;
        // Every row carries its backend's feature block...
        for r in 0..ampere.rows() {
            assert_eq!(ampere.row(r)[tail..], arch_features(&ArchSpec::ampere()));
            assert_eq!(hopper.row(r)[tail..], arch_features(&ArchSpec::hopper()));
        }
        // ...and the blocks differ across backends.
        assert_ne!(
            arch_features(&ArchSpec::ampere()),
            arch_features(&ArchSpec::hopper())
        );
        assert_ne!(
            arch_features(&ArchSpec::ampere()),
            arch_features(&ArchSpec::turing())
        );
    }
}
