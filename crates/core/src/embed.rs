//! State embedding (§3.4).
//!
//! Each SASS instruction is embedded into a fixed-width vector: the control
//! code fields (wait mask, read/write barrier, yield, stall), a memory /
//! non-memory opcode flag, and the operand register indices normalized by
//! the size of the register table, padded with `-1` to the maximum operand
//! count of the kernel. The whole schedule becomes a matrix with one row per
//! instruction — the observation consumed by the RL agent.

use nn::Matrix;
use sass::Program;

use crate::analysis::Analysis;

/// Number of fixed (non-operand) features per instruction.
pub const FIXED_FEATURES: usize = 11;

/// Embeds one instruction into `features` values.
fn embed_instruction(inst: &sass::Instruction, analysis: &Analysis, features: usize) -> Vec<f32> {
    let mut row = Vec::with_capacity(features);
    let cc = inst.control();
    for b in 0..6u8 {
        row.push(if cc.waits_on(b) { 1.0 } else { -1.0 });
    }
    row.push(cc.read_barrier().map_or(-1.0, f32::from));
    row.push(cc.write_barrier().map_or(-1.0, f32::from));
    row.push(if cc.yield_flag() { 1.0 } else { -1.0 });
    row.push(f32::from(cc.stall()) / 15.0);
    row.push(if inst.opcode().is_memory() { 1.0 } else { -1.0 });
    let table_len = analysis.register_table.len().max(1) as f32;
    for operand in inst.operands().iter().take(analysis.max_operands) {
        let value = operand
            .registers()
            .first()
            .and_then(|r| analysis.register_table.get(r))
            .map_or(-1.0, |idx| *idx as f32 / table_len);
        row.push(value);
    }
    while row.len() < features {
        row.push(-1.0);
    }
    row
}

/// Embeds the whole schedule as a `[instructions x features]` matrix.
#[must_use]
pub fn embed_program(program: &Program, analysis: &Analysis) -> Matrix {
    let features = FIXED_FEATURES + analysis.max_operands;
    let rows: Vec<Vec<f32>> = program
        .instructions()
        .map(|inst| embed_instruction(inst, analysis, features))
        .collect();
    let mut matrix = Matrix::zeros(rows.len(), features);
    for (r, row) in rows.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            matrix.set(r, c, *v);
        }
    }
    matrix
}

/// Number of embedding features for a program analysed with `analysis`.
#[must_use]
pub fn feature_count(analysis: &Analysis) -> usize {
    FIXED_FEATURES + analysis.max_operands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::stall_table::StallTable;

    const SAMPLE: &str = "\
[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;
[B--2---:R-:W-:-:S04] IADD3 R4, R0, 0x1, RZ ;
[B------:R-:W-:-:S05] EXIT ;
";

    #[test]
    fn embedding_has_one_row_per_instruction_and_fixed_width() {
        let program: Program = SAMPLE.parse().unwrap();
        let analysis = analyze(&program, &StallTable::builtin_a100());
        let m = embed_program(&program, &analysis);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), feature_count(&analysis));
        // First instruction: memory flag is +1, write barrier is 2, yield set.
        let row = m.row(0);
        assert_eq!(row[7], 2.0);
        assert_eq!(row[8], 1.0);
        assert_eq!(row[10], 1.0);
        // Second instruction: non-memory flag is -1 and it waits on barrier 2.
        assert_eq!(m.row(1)[10], -1.0);
        assert_eq!(m.row(1)[2], 1.0);
    }

    #[test]
    fn missing_operands_are_padded_with_minus_one() {
        let program: Program = SAMPLE.parse().unwrap();
        let analysis = analyze(&program, &StallTable::builtin_a100());
        let m = embed_program(&program, &analysis);
        let exit_row = m.row(2);
        assert!(exit_row[FIXED_FEATURES..].iter().all(|&v| v == -1.0));
    }

    #[test]
    fn operand_indices_are_normalized() {
        let program: Program = SAMPLE.parse().unwrap();
        let analysis = analyze(&program, &StallTable::builtin_a100());
        let m = embed_program(&program, &analysis);
        for r in 0..m.rows() {
            for &v in &m.row(r)[FIXED_FEATURES..] {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }
}
