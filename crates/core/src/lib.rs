//! CuAsmRL: optimizing GPU SASS schedules via deep reinforcement learning.
//!
//! This crate is the top of the reproduction stack: it implements the
//! paper's contribution — formulating SASS rescheduling as an *assembly
//! game* and solving it with PPO — on top of the [`sass`] instruction model,
//! the [`gpusim`] execution substrate, the [`kernels`] workload generators
//! and the [`nn`]/[`rl`] learning stack.
//!
//! The main entry point is [`CuAsmRl`]: give it a kernel specification and a
//! configuration space and it performs the paper's hierarchical search
//! (autotune → compile → intercept the cubin → play the assembly game →
//! write the optimized kernel section back), returning an
//! [`OptimizationReport`] and the optimized [`sass::Cubin`].
//!
//! ```no_run
//! use cuasmrl::{CuAsmRl, Strategy};
//! use gpusim::{GpuConfig, MeasureOptions};
//! use kernels::{ConfigSpace, KernelKind, KernelSpec};
//!
//! let optimizer = CuAsmRl::new(GpuConfig::a100(), Strategy::Rl(rl::PpoConfig::default()));
//! let spec = KernelSpec::paper(KernelKind::MatmulLeakyRelu);
//! let (report, cubin) = optimizer.optimize_spec(
//!     &spec,
//!     &ConfigSpace::gemm_default(),
//!     &MeasureOptions::default(),
//! );
//! println!("{}: {:.2}x speedup", report.kernel, report.speedup);
//! assert!(!cubin.kernel_names().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod analysis;
pub mod cli;
mod delta_session;
mod embed;
mod eval_cache;
mod game;
mod optimizer;
mod session;
mod stall_table;
mod suite_optimizer;
mod telemetry;

pub use action::{
    action_mask, schedule_edits, Action, ActionSpace, Direction, EditKind, IncrementalMasker,
    ScheduleEdit,
};
pub use analysis::{analyze, Analysis, Resolution, ResolutionBreakdown};
pub use delta_session::DeltaSession;
pub use embed::{
    arch_features, embed_program, embed_rows_into, feature_count, ARCH_FEATURES, FIXED_FEATURES,
};
pub use eval_cache::{
    arch_key, combine_item_keys, combine_keys, context_key, eval_key, item_key, program_key,
    EvalCache, EvalCacheStats,
};
pub use game::{AssemblyGame, GameConfig, Move};
pub use optimizer::{CuAsmRl, OptimizationReport, Strategy, StrategyComparison};
pub use session::SearchSession;
pub use stall_table::{
    clock_based_iadd3, dependency_based_stall, microbenchmark_table, ClockBenchResult, StallTable,
};
pub use suite_optimizer::{
    load_suite_report, persist_suite_report, suite_report_path, SuiteOptimizer, SuiteReport,
};
pub use telemetry::{
    duration_ms, load_run_manifest, load_run_manifest_checked, persist_run_manifest,
    telemetry_path, CacheTelemetry, KernelTelemetry, ManifestError, PhaseTimings, RunManifest,
    TrainingTelemetry, MANIFEST_SEAL_VERSION, TELEMETRY_SCHEMA_VERSION,
};
