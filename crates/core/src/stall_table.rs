//! The fixed-latency stall-count table (§4.3, Table 1) and the
//! micro-benchmarks that derive it.
//!
//! The paper determines the minimum stall count of common fixed-latency
//! instructions by *dependency-based* micro-benchmarking: a producer is
//! followed by a store of its result, the stall count of the producer is
//! lowered until the stored value no longer matches the expected value, and
//! the smallest passing stall count is the instruction's latency. The same
//! experiment runs here against the simulated GPU. A *clock-based*
//! micro-benchmark (`CS2R SR_CLOCKLO` around an instruction sequence) is
//! also provided to reproduce the paper's observation that it underestimates
//! the latency.

use std::collections::HashMap;

use gpusim::{ArchSpec, ConstantBank, GpuConfig, SmSimulator};
use sass::Program;
use serde::{Deserialize, Serialize};

/// A table mapping full opcode names (including modifiers such as
/// `IMAD.WIDE`) to their minimum stall count in cycles.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallTable {
    entries: HashMap<String, u8>,
}

impl StallTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        StallTable::default()
    }

    /// The built-in table of Table 1 of the paper: common integer (and
    /// simple floating-point) operations take 4 cycles on the A100, wide
    /// integer multiply-adds take 5. Equivalent to
    /// [`StallTable::for_arch`] over the Ampere profile.
    #[must_use]
    pub fn builtin_a100() -> Self {
        StallTable::for_arch(&ArchSpec::ampere())
    }

    /// The Table-1 analogue for an arbitrary architecture backend: one entry
    /// per fixed-latency opcode class, at that architecture's ground-truth
    /// latency (exactly what the dependency-based micro-benchmarks of §4.3
    /// recover when run against the corresponding simulated device).
    #[must_use]
    pub fn for_arch(arch: &ArchSpec) -> Self {
        let entries: HashMap<String, u8> = arch
            .stall_entries()
            .into_iter()
            .map(|(op, stall)| (op.to_string(), stall))
            .collect();
        StallTable { entries }
    }

    /// Looks up an opcode, trying the full dotted name first and then the
    /// base mnemonic.
    #[must_use]
    pub fn lookup(&self, full_name: &str) -> Option<u8> {
        if let Some(v) = self.entries.get(full_name) {
            return Some(*v);
        }
        let base = full_name.split('.').next().unwrap_or(full_name);
        self.entries.get(base).copied()
    }

    /// Inserts or tightens an entry (the smaller value wins, matching the
    /// "take the minimum" rule of §3.2).
    pub fn insert_min(&mut self, opcode: impl Into<String>, stall: u8) {
        let key = opcode.into();
        let entry = self.entries.entry(key).or_insert(stall);
        *entry = (*entry).min(stall);
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the table has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Builds the dependency-based micro-benchmark for one producer opcode: the
/// producer writes `R15`, which is stored to `[0x100]` after `stall` cycles.
fn dependency_microbench(producer: &str, stall: u8) -> Program {
    let text = format!(
        "\
[B------:R-:W-:-:S08] MOV R4, 0x100 ;
[B------:R-:W-:-:S08] MOV R2, 0x3 ;
[B------:R-:W-:-:S08] MOV R3, 0x2 ;
[B------:R-:W-:-:S{stall:02}] {producer} ;
[B------:R-:W-:-:S02] STG.E [R4], R15 ;
[B------:R-:W-:-:S05] EXIT ;
"
    );
    text.parse().expect("microbenchmark must parse")
}

fn producer_template(opcode: &str) -> Option<(&'static str, u64)> {
    // (instruction text writing R15 from R2=3 / R3=2, expected stored value)
    Some(match opcode {
        "MOV" => ("MOV R15, 0x1", 1),
        "IADD3" => ("IADD3 R15, R2, R3, RZ", 5),
        "IMAD" => ("IMAD R15, R2, R3, RZ", 6),
        "IMAD.WIDE" => ("IMAD.WIDE R15, R2, R3, RZ", 6),
        "IMAD.WIDE.U32" => ("IMAD.WIDE.U32 R15, R2, R3, RZ", 6),
        "IMAD.IADD" => ("IMAD.IADD R15, R2, 0x1, R3", 5),
        "IADD3.X" => ("IADD3.X R15, R2, R3, RZ", 5),
        "IABS" => ("IABS R15, R2", 3),
        "IMNMX" => ("IMNMX R15, R2, R3, PT", 2),
        "SEL" => ("SEL R15, R2, R3, PT", 3),
        "LEA" => ("LEA R15, R2, R3", 5),
        _ => return None,
    })
}

/// Runs the dependency-based micro-benchmark (§4.3) for one opcode on the
/// simulated device and returns its minimum stall count, or `None` when no
/// template exists for the opcode.
#[must_use]
pub fn dependency_based_stall(gpu: &GpuConfig, opcode: &str) -> Option<u8> {
    let (producer, expected) = producer_template(opcode)?;
    let simulator = SmSimulator::new(gpu.clone());
    let constants = ConstantBank::new();
    // Gradually lower the stall count until the stored value no longer
    // matches; the minimum valid stall count is one above the first failure.
    let mut minimum = 15u8;
    for stall in (0..=15u8).rev() {
        let program = dependency_microbench(producer, stall);
        let out = simulator.run(&program, 1, 0, &constants, 100_000);
        if out.memory.load_global(0x100) == expected {
            minimum = stall;
        } else {
            break;
        }
    }
    Some(minimum)
}

/// Builds the stall table by micro-benchmarking every opcode of Table 1
/// against the simulated device.
#[must_use]
pub fn microbenchmark_table(gpu: &GpuConfig) -> StallTable {
    let mut table = StallTable::new();
    for opcode in [
        "MOV",
        "IADD3",
        "IADD3.X",
        "IMAD",
        "IMAD.IADD",
        "IMAD.WIDE",
        "IMAD.WIDE.U32",
        "IABS",
        "IMNMX",
        "SEL",
        "LEA",
    ] {
        if let Some(stall) = dependency_based_stall(gpu, opcode) {
            table.insert_min(opcode, stall);
        }
    }
    table
}

/// Result of the clock-based micro-benchmark (Listing 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockBenchResult {
    /// Number of instructions in the timed sequence.
    pub instructions: usize,
    /// Average cycles per instruction as measured by the clock.
    pub cycles_per_instruction: f64,
}

/// Runs the clock-based micro-benchmark for a sequence of independent
/// `IADD3` instructions. As the paper observes, this *underestimates* the
/// latency because nothing guarantees the sequence has completed when the
/// second clock is read.
#[must_use]
pub fn clock_based_iadd3(gpu: &GpuConfig, count: usize) -> ClockBenchResult {
    let mut lines = String::new();
    lines.push_str("[B------:R-:W-:-:S08] MOV R4, 0x100 ;\n");
    lines.push_str("[B------:R-:W-:-:S08] CS2R R2, SR_CLOCKLO ;\n");
    for i in 0..count {
        // Independent adds: the issue pipeline accepts one every 2 cycles.
        lines.push_str(&format!(
            "[B------:R-:W-:-:S02] IADD3 R{}, R{}, 0x1, RZ ;\n",
            20 + (i % 8),
            20 + (i % 8),
        ));
    }
    lines.push_str("[B------:R-:W-:-:S04] CS2R R6, SR_CLOCKLO ;\n");
    lines.push_str("[B------:R-:W-:-:S04] IADD3 R6, P0, -R2, R6, RZ ;\n");
    lines.push_str("[B------:R-:W-:-:S02] STG.E [R4], R6 ;\n");
    lines.push_str("[B------:R-:W-:-:S05] EXIT ;\n");
    let program: Program = lines.parse().expect("clock benchmark must parse");
    let simulator = SmSimulator::new(gpu.clone());
    let out = simulator.run(&program, 1, 0, &ConstantBank::new(), 100_000);
    let elapsed = out.memory.load_global(0x100) as f64;
    ClockBenchResult {
        instructions: count,
        cycles_per_instruction: elapsed / count.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_table_matches_table_1() {
        let table = StallTable::builtin_a100();
        assert_eq!(table.lookup("IADD3"), Some(4));
        assert_eq!(table.lookup("MOV"), Some(4));
        assert_eq!(table.lookup("IMAD.WIDE"), Some(5));
        assert_eq!(table.lookup("IMAD.WIDE.U32"), Some(5));
        // Base-mnemonic fallback: a modifier not listed explicitly falls
        // back to the base entry.
        assert_eq!(table.lookup("IADD3.X"), Some(4));
        assert_eq!(table.lookup("LDG"), None);
        assert!(!table.is_empty());
    }

    #[test]
    fn per_arch_tables_recover_each_backends_ground_truth() {
        // The built-in A100 table is exactly the Ampere-profile table.
        assert_eq!(
            StallTable::builtin_a100(),
            StallTable::for_arch(&ArchSpec::ampere())
        );
        // Other backends get their own numbers...
        let turing = StallTable::for_arch(&ArchSpec::turing());
        assert_eq!(turing.lookup("IMAD.WIDE"), Some(6));
        assert_eq!(turing.lookup("HMMA"), Some(32));
        let hopper = StallTable::for_arch(&ArchSpec::hopper());
        assert_eq!(hopper.lookup("HMMA"), Some(8));
        // ...and the dependency-based micro-benchmark, run against the
        // corresponding simulated device, recovers them.
        assert_eq!(
            dependency_based_stall(&GpuConfig::turing(), "IMAD.WIDE"),
            Some(6)
        );
        assert_eq!(
            dependency_based_stall(&GpuConfig::hopper(), "IADD3"),
            Some(4)
        );
    }

    #[test]
    fn insert_min_keeps_the_tightest_bound() {
        let mut table = StallTable::new();
        table.insert_min("IADD3", 6);
        table.insert_min("IADD3", 5);
        table.insert_min("IADD3", 7);
        assert_eq!(table.lookup("IADD3"), Some(5));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn dependency_microbenchmark_recovers_the_ground_truth_latencies() {
        // On the simulated A100 the ALU latency is 4 and IMAD.WIDE is 5
        // (gpusim::LatencyModel); the dependency-based methodology must
        // recover exactly those numbers, as Table 1 does on real hardware.
        let gpu = GpuConfig::a100();
        assert_eq!(dependency_based_stall(&gpu, "MOV"), Some(4));
        assert_eq!(dependency_based_stall(&gpu, "IADD3"), Some(4));
        assert_eq!(dependency_based_stall(&gpu, "IMAD.WIDE"), Some(5));
    }

    #[test]
    fn microbenchmarked_table_agrees_with_the_builtin_table() {
        let gpu = GpuConfig::a100();
        let measured = microbenchmark_table(&gpu);
        let builtin = StallTable::builtin_a100();
        for op in ["MOV", "IADD3", "SEL", "LEA", "IMAD.WIDE"] {
            assert_eq!(measured.lookup(op), builtin.lookup(op), "{op}");
        }
    }

    #[test]
    fn clock_based_benchmark_underestimates_the_latency() {
        let gpu = GpuConfig::a100();
        let result = clock_based_iadd3(&gpu, 16);
        let dependency = dependency_based_stall(&gpu, "IADD3").unwrap() as f64;
        assert!(
            result.cycles_per_instruction < dependency,
            "clock-based ({:.1}) should underestimate the dependency-based latency ({dependency})",
            result.cycles_per_instruction
        );
        assert!(result.cycles_per_instruction > 0.0);
    }
}
