//! The schedule-evaluation cache: a sharded, digest-keyed memo of kernel
//! measurements.
//!
//! The reward signal re-simulates the whole kernel after every move, and the
//! search strategies revisit schedules constantly: episode resets replay the
//! initial schedule, undo moves walk back to states already measured, greedy
//! probes fan out from one state, evolutionary search replays its best move
//! sequence every generation, and PPO re-walks converged trajectories. All
//! of those revisits are cache hits here — a hash of the schedule text
//! instead of a cycle-by-cycle simulation.
//!
//! The cache is transparent by construction: the simulator is deterministic,
//! so a hit returns exactly (bit for bit) what the miss path would have
//! computed. Sharing one cache across episodes, cloned games and `VecEnv`
//! worker threads therefore cannot change any observable result — the
//! `jobs = N ≡ jobs = 1` determinism contract survives, as enforced by
//! `tests/parallel_determinism.rs` and the `eval_cache` test suite.
//!
//! Keys combine the digest of the schedule listing with a context digest of
//! the launch configuration, device model and measurement protocol
//! (including the measurement seed), so distinct contexts never collide on
//! purpose. The map is sharded `SHARDS` ways behind independent mutexes so
//! parallel workers rarely contend, and misses are simulated *outside* the
//! shard lock so a long simulation never blocks other shards' traffic.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gpusim::{
    splitmix64, ArchSpec, DeltaOutcome, GpuConfig, LaunchConfig, MeasureOptions, Measurement,
};
use sass::Program;

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// Cache effectiveness counters, for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate (fully or incrementally).
    pub misses: u64,
    /// Cache misses the delta engine answered without a full re-simulation:
    /// spliced, provably unchanged, or resumed past the shared prefix.
    pub delta_hits: u64,
    /// Delta evaluations that fell back to a full re-simulation from cycle
    /// zero (no prefix reused, no reconvergence detected).
    pub delta_fallbacks: u64,
}

impl EvalCacheStats {
    /// `delta_fallbacks / (delta_hits + delta_fallbacks)`, 0 when the delta
    /// engine never ran. The perf-regression gate keeps this under 20% on
    /// the smoke matrix.
    #[must_use]
    pub fn delta_fallback_rate(&self) -> f64 {
        let attempts = self.delta_hits + self.delta_fallbacks;
        if attempts == 0 {
            0.0
        } else {
            self.delta_fallbacks as f64 / attempts as f64
        }
    }
}

/// One shard: the memo map plus its own hit/miss tallies. Keeping the
/// counters under the same lock as the map makes a lookup and its counter
/// update one consistent operation, and lets [`EvalCache::stats`] aggregate
/// everything in a single pass over the shards instead of reading counters
/// that can drift from the maps they describe.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Measurement>,
    hits: u64,
    misses: u64,
}

/// A sharded digest → [`Measurement`] memo (see the module docs).
#[derive(Debug, Default)]
pub struct EvalCache {
    shards: Vec<Mutex<Shard>>,
    delta_hits: AtomicU64,
    delta_fallbacks: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            delta_hits: AtomicU64::new(0),
            delta_fallbacks: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Returns the cached measurement for `key`, or computes it with
    /// `simulate` (outside the shard lock) and caches it. Because the
    /// simulator is deterministic for a fixed key, a racing duplicate
    /// computation inserts an identical value — the cache never changes an
    /// observable result.
    pub fn get_or_insert_with<F>(&self, key: u64, simulate: F) -> Measurement
    where
        F: FnOnce() -> Measurement,
    {
        if let Some(hit) = self.lookup(key) {
            return hit;
        }
        let value = simulate();
        self.insert_computed(key, value.clone());
        value
    }

    /// Looks `key` up, counting a hit when present. A `None` result is not
    /// counted — the caller is expected to simulate and call
    /// [`EvalCache::insert_computed`], which records the miss.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<Measurement> {
        let mut shard = self.shard(key).lock().expect("eval-cache shard");
        let hit = shard.map.get(&key).cloned();
        if hit.is_some() {
            shard.hits += 1;
        }
        hit
    }

    /// Records a freshly simulated measurement (one miss). A racing
    /// duplicate insert stores an identical value, so last-write-wins is
    /// harmless.
    pub fn insert_computed(&self, key: u64, value: Measurement) {
        let mut shard = self.shard(key).lock().expect("eval-cache shard");
        shard.misses += 1;
        shard.map.insert(key, value);
    }

    /// Attributes one simulated miss to the delta engine: an incremental
    /// evaluation (spliced, provably unchanged or prefix-reusing) counts as
    /// a `delta_hit`, the full re-simulation from cycle zero as a
    /// `delta_fallback`.
    pub fn record_delta_outcome(&self, outcome: &DeltaOutcome) {
        if outcome.is_fallback() {
            self.delta_fallbacks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.delta_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of cached measurements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("eval-cache shard").map.len())
            .sum()
    }

    /// Returns true if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregates the per-shard counters in one pass (each shard is locked
    /// exactly once, so the totals are a consistent snapshot of every
    /// shard), plus the delta-engine tallies.
    #[must_use]
    pub fn stats(&self) -> EvalCacheStats {
        let mut stats = EvalCacheStats {
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            delta_fallbacks: self.delta_fallbacks.load(Ordering::Relaxed),
            ..EvalCacheStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("eval-cache shard");
            stats.hits += shard.hits;
            stats.misses += shard.misses;
        }
        stats
    }
}

/// Feeds `Display` output straight into a hasher, so digesting a schedule
/// listing never materializes the listing string.
struct HashWriter<'a>(&'a mut DefaultHasher);

impl fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// Digest of one listing item (a label or an instruction line) in its
/// canonical `Display` round-trip form. Item digests are position-free —
/// [`combine_item_keys`] folds the listing order in — so a game that only
/// ever *reorders* instructions computes each line's digest exactly once
/// and re-derives [`program_key`] from the cached digests in a handful of
/// integer operations per schedule change.
#[must_use]
pub fn item_key(item: &sass::Item) -> u64 {
    let mut hasher = DefaultHasher::new();
    match item {
        sass::Item::Label(name) => {
            hasher.write_u8(b'L');
            hasher.write(name.as_bytes());
        }
        sass::Item::Instr(inst) => {
            hasher.write_u8(b'I');
            write!(HashWriter(&mut hasher), "{inst}").expect("hashing never fails");
        }
    }
    hasher.finish()
}

/// Order-sensitively folds per-item digests into one schedule digest.
#[must_use]
pub fn combine_item_keys(items: impl IntoIterator<Item = u64>) -> u64 {
    items
        .into_iter()
        .fold(0x05ca_1ab1_e0dd_ba11_u64, |acc, item| {
            splitmix64(acc.rotate_left(17) ^ item)
        })
}

/// Digest of a schedule: every label, instruction, operand and control code
/// in listing order — the fold of [`item_key`] over the listing via
/// [`combine_item_keys`].
#[must_use]
pub fn program_key(program: &Program) -> u64 {
    combine_item_keys(program.items().iter().map(item_key))
}

/// Digest of one GPU architecture profile: every field of the
/// [`ArchSpec`] (latency tables, overrides, issue/stall rules, bank model,
/// resource limits). Folded into every [`context_key`] so schedules
/// measured under different architecture backends can never answer each
/// other's lookups, even if the chip-level configuration matches.
#[must_use]
pub fn arch_key(arch: &ArchSpec) -> u64 {
    let mut hasher = DefaultHasher::new();
    hasher.write(serde_json::to_string(arch).unwrap_or_default().as_bytes());
    hasher.finish()
}

/// Digest of the evaluation context: the architecture profile, the device
/// model, the launch configuration and the measurement protocol
/// (warmup/repeats/noise/seed). Computed once per game; combined with
/// [`program_key`] per evaluation.
#[must_use]
pub fn context_key(gpu: &GpuConfig, launch: &LaunchConfig, options: &MeasureOptions) -> u64 {
    let mut hasher = DefaultHasher::new();
    // The arch digest is folded in explicitly (in addition to being part of
    // the device JSON below) so the separation survives even if GpuConfig
    // serialization ever stops embedding the arch.
    hasher.write_u64(arch_key(&gpu.arch));
    for json in [
        serde_json::to_string(gpu).unwrap_or_default(),
        serde_json::to_string(launch).unwrap_or_default(),
        serde_json::to_string(options).unwrap_or_default(),
    ] {
        hasher.write(json.as_bytes());
        hasher.write_u8(0x1f); // field separator
    }
    hasher.finish()
}

/// Combines a context digest with a program digest into one cache key.
#[must_use]
pub fn combine_keys(context: u64, program: u64) -> u64 {
    splitmix64(context ^ program.rotate_left(23))
}

/// The full cache key of one (schedule, launch, device, protocol) tuple.
#[must_use]
pub fn eval_key(
    program: &Program,
    launch: &LaunchConfig,
    gpu: &GpuConfig,
    options: &MeasureOptions,
) -> u64 {
    combine_keys(context_key(gpu, launch, options), program_key(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::measure;

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x1000 ;
[B------:R-:W0:-:S02] LDG.E R2, [R4] ;
[B0-----:R-:W-:-:S04] IADD3 R6, R2, 0x1, RZ ;
[B------:R-:W-:-:S04] STG.E [R4], R6 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn options() -> MeasureOptions {
        MeasureOptions {
            warmup: 0,
            repeats: 3,
            noise_std: 0.0,
            seed: 0,
        }
    }

    #[test]
    fn hits_return_the_cached_measurement_bit_for_bit() {
        let cache = EvalCache::new();
        let gpu = GpuConfig::small();
        let launch = LaunchConfig::default();
        let program: Program = SAMPLE.parse().unwrap();
        let key = eval_key(&program, &launch, &gpu, &options());
        let first = cache.get_or_insert_with(key, || measure(&gpu, &program, &launch, &options()));
        let second = cache.get_or_insert_with(key, || unreachable!("second lookup must hit"));
        assert_eq!(first, second);
        assert_eq!(
            cache.stats(),
            EvalCacheStats {
                hits: 1,
                misses: 1,
                ..EvalCacheStats::default()
            }
        );
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn lookup_then_insert_computed_count_like_get_or_insert() {
        let cache = EvalCache::new();
        let gpu = GpuConfig::small();
        let launch = LaunchConfig::default();
        let program: Program = SAMPLE.parse().unwrap();
        let key = eval_key(&program, &launch, &gpu, &options());
        assert!(cache.lookup(key).is_none());
        let value = measure(&gpu, &program, &launch, &options());
        cache.insert_computed(key, value.clone());
        assert_eq!(cache.lookup(key), Some(value));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn delta_outcomes_are_tallied_and_rated() {
        use gpusim::DeltaOutcome;
        let cache = EvalCache::new();
        assert_eq!(cache.stats().delta_fallback_rate(), 0.0);
        cache.record_delta_outcome(&DeltaOutcome::Unchanged);
        cache.record_delta_outcome(&DeltaOutcome::Spliced {
            resumed_cycle: 10,
            spliced_cycle: 90,
        });
        cache.record_delta_outcome(&DeltaOutcome::Spliced {
            resumed_cycle: 0,
            spliced_cycle: 50,
        });
        // Resuming past the shared prefix is a delta win; re-simulating from
        // cycle zero is the fallback.
        cache.record_delta_outcome(&DeltaOutcome::Resimulated { resumed_cycle: 5 });
        cache.record_delta_outcome(&DeltaOutcome::Resimulated { resumed_cycle: 0 });
        let stats = cache.stats();
        assert_eq!(stats.delta_hits, 4);
        assert_eq!(stats.delta_fallbacks, 1);
        assert_eq!(stats.delta_fallback_rate(), 0.2);
    }

    #[test]
    fn keys_separate_programs_launches_devices_and_seeds() {
        let gpu = GpuConfig::small();
        let launch = LaunchConfig::default();
        let program: Program = SAMPLE.parse().unwrap();
        let base = eval_key(&program, &launch, &gpu, &options());

        // Different schedule (swap two instructions).
        let mut swapped = program.clone();
        swapped.swap_instructions(0, 1).unwrap();
        assert_ne!(base, eval_key(&swapped, &launch, &gpu, &options()));

        // Different launch.
        let other_launch = LaunchConfig {
            grid_blocks: 99,
            ..launch.clone()
        };
        assert_ne!(base, eval_key(&program, &other_launch, &gpu, &options()));

        // Different device.
        assert_ne!(
            base,
            eval_key(&program, &launch, &GpuConfig::a100(), &options())
        );

        // Different measurement seed / protocol.
        let other_options = MeasureOptions {
            seed: 7,
            ..options()
        };
        assert_ne!(base, eval_key(&program, &launch, &gpu, &other_options));
    }

    #[test]
    fn identical_listings_under_different_archs_get_distinct_entries() {
        // Two devices identical in every chip-level parameter, differing
        // only in the architecture backend: the same schedule listing must
        // occupy two distinct cache entries.
        let ampere = GpuConfig::small();
        let hopper = gpusim::GpuConfig::small_with_arch(gpusim::ArchSpec::hopper());
        let mut hopper_same_chip = hopper.clone();
        hopper_same_chip.name = ampere.name.clone();
        let program: Program = SAMPLE.parse().unwrap();
        let launch = LaunchConfig::default();
        assert_ne!(
            arch_key(&ampere.arch),
            arch_key(&hopper_same_chip.arch),
            "arch profiles must digest differently"
        );
        let key_a = eval_key(&program, &launch, &ampere, &options());
        let key_h = eval_key(&program, &launch, &hopper_same_chip, &options());
        assert_ne!(key_a, key_h);
        let cache = EvalCache::new();
        let a = cache.get_or_insert_with(key_a, || measure(&ampere, &program, &launch, &options()));
        let h = cache.get_or_insert_with(key_h, || {
            measure(&hopper_same_chip, &program, &launch, &options())
        });
        assert_eq!(cache.len(), 2, "one entry per architecture");
        assert_ne!(
            a.run.sm.cycles, h.run.sm.cycles,
            "the two backends time the schedule differently"
        );
    }

    #[test]
    fn program_key_is_stable_across_reparses() {
        let a: Program = SAMPLE.parse().unwrap();
        let b: Program = a.to_string().parse().unwrap();
        assert_eq!(program_key(&a), program_key(&b));
    }

    #[test]
    fn shards_spread_keys() {
        let cache = EvalCache::new();
        let gpu = GpuConfig::small();
        let launch = LaunchConfig::default();
        let program: Program = SAMPLE.parse().unwrap();
        for seed in 0..64u64 {
            let opts = MeasureOptions { seed, ..options() };
            let key = eval_key(&program, &launch, &gpu, &opts);
            let _ = cache.get_or_insert_with(key, || measure(&gpu, &program, &launch, &opts));
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.stats().misses, 64);
    }
}
