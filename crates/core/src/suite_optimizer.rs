//! Parallel suite optimization: the offline-search half of the paper's
//! offline-search / deploy-time-lookup workflow (§4.2), batched across a
//! kernel suite and a thread pool.
//!
//! The paper amortizes CuAsmRL's search cost by optimizing a whole kernel
//! suite offline and looking schedules up at deploy time. [`SuiteOptimizer`]
//! makes that practical at scale: it shards the suite across `jobs` worker
//! threads, runs one full hierarchical [`CuAsmRl`] search per kernel with a
//! per-kernel seed derived from the base seed, aggregates the
//! [`OptimizationReport`]s **in suite order**, and persists both the
//! per-kernel reports and an aggregate [`SuiteReport`] into the schedule
//! cache directory so later runs (and deploy-time lookup) hit the cache.
//!
//! Determinism contract: each kernel's search depends only on its spec, its
//! derived seed and the shared configuration — never on which worker picked
//! it up — so for a fixed seed, `jobs = 4` produces reports bit-identical to
//! `jobs = 1`. The workspace-level `parallel_determinism` test enforces
//! this.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;

use gpusim::{GpuConfig, MeasureOptions};
use kernels::{find_suite, ConfigSpace, KernelSpec, WorkloadSuite};
use serde::{Deserialize, Serialize};

use crate::game::GameConfig;
use crate::optimizer::{CuAsmRl, OptimizationReport, Strategy};
use crate::telemetry::{persist_run_manifest, KernelTelemetry, RunManifest};

/// Aggregated result of optimizing a kernel suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteReport {
    /// GPU the suite was optimized for.
    pub gpu: String,
    /// Workload-registry suite name (`"custom"` for ad-hoc spec lists);
    /// part of the persisted report's file name, so different suites never
    /// overwrite each other in one cache directory.
    pub suite: String,
    /// Base seed the per-kernel seeds were derived from.
    pub seed: u64,
    /// Per-kernel reports, in suite order.
    pub reports: Vec<OptimizationReport>,
    /// Geometric-mean speedup across the suite (the Figure 6 headline).
    pub geomean_speedup: f64,
    /// Number of kernels whose optimized schedule passed probabilistic
    /// verification.
    pub verified: usize,
}

impl SuiteReport {
    /// Renders a fixed-width per-kernel summary table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>9} {:>9}\n",
            "kernel", "baseline_us", "optimized_us", "speedup", "verified"
        ));
        for report in &self.reports {
            out.push_str(&format!(
                "{:<24} {:>12.2} {:>12.2} {:>8.3}x {:>9}\n",
                report.kernel,
                report.baseline_us,
                report.optimized_us,
                report.speedup,
                report.verified
            ));
        }
        out.push_str(&format!(
            "geomean speedup: {:.3}x ({}/{} verified)\n",
            self.geomean_speedup,
            self.verified,
            self.reports.len()
        ));
        out
    }
}

/// Optimizes a suite of kernels across a configurable thread pool.
#[derive(Debug, Clone)]
pub struct SuiteOptimizer {
    gpu: GpuConfig,
    strategy: Strategy,
    game_config: GameConfig,
    tune_options: MeasureOptions,
    space: Option<ConfigSpace>,
    jobs: usize,
    seed: u64,
    cache_dir: Option<PathBuf>,
}

impl SuiteOptimizer {
    /// Creates a single-threaded suite optimizer; scale up with
    /// [`SuiteOptimizer::with_jobs`].
    #[must_use]
    pub fn new(gpu: GpuConfig, strategy: Strategy) -> Self {
        SuiteOptimizer {
            gpu,
            strategy,
            game_config: GameConfig::default(),
            tune_options: MeasureOptions::default(),
            space: None,
            jobs: 1,
            seed: 0,
            cache_dir: None,
        }
    }

    /// The device profile the suite is optimized for.
    #[must_use]
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The configured search strategy.
    #[must_use]
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The base seed (see [`SuiteOptimizer::kernel_seed`]).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The measurement protocol used while autotuning.
    #[must_use]
    pub fn tune_options(&self) -> &MeasureOptions {
        &self.tune_options
    }

    /// The autotuning space used for `spec`: the forced override when one
    /// was set with [`SuiteOptimizer::with_config_space`], otherwise the
    /// kernel kind's own default space — exactly what the worker pool would
    /// search for this spec.
    #[must_use]
    pub fn config_space_for(&self, spec: &KernelSpec) -> ConfigSpace {
        self.space
            .clone()
            .unwrap_or_else(|| spec.kind.config_space())
    }

    /// Sets the number of worker threads (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Sets the base seed from which per-kernel seeds are derived.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the assembly-game configuration.
    #[must_use]
    pub fn with_game_config(mut self, config: GameConfig) -> Self {
        self.game_config = config;
        self
    }

    /// Overrides the measurement protocol used while autotuning.
    #[must_use]
    pub fn with_tune_options(mut self, options: MeasureOptions) -> Self {
        self.tune_options = options;
        self
    }

    /// Forces one autotuning space for every kernel (defaults to each
    /// kernel kind's own space).
    #[must_use]
    pub fn with_config_space(mut self, space: ConfigSpace) -> Self {
        self.space = Some(space);
        self
    }

    /// Enables the deploy-time schedule cache (§4.2): per-kernel reports and
    /// the aggregate suite report are persisted under `dir`.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The per-kernel seed for a spec: a SplitMix64 mix of the base seed,
    /// the kernel name and the problem shape, so every distinct kernel gets
    /// an independent, reproducible stream no matter how the suite is
    /// sharded. Deriving from the *spec* (not the suite position) keeps the
    /// jobs=N ≡ jobs=1 contract even when a suite lists the same spec twice:
    /// duplicates run the identical search and produce identical reports,
    /// with or without a cache hit in between.
    #[must_use]
    pub fn kernel_seed(&self, spec: &KernelSpec) -> u64 {
        let mut state = self.seed;
        for byte in spec.kind.name().bytes() {
            state = state
                .wrapping_add(u64::from(byte))
                .wrapping_mul(0x100_0000_01B3);
        }
        for dim in [spec.shape.batch, spec.shape.m, spec.shape.n, spec.shape.k] {
            state = state.wrapping_add(dim as u64).wrapping_mul(0x100_0000_01B3);
        }
        let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn seeded_strategy(&self, seed: u64) -> Strategy {
        match self.strategy.clone() {
            Strategy::Rl(mut config) => {
                config.seed = seed;
                Strategy::Rl(config)
            }
            greedy @ Strategy::Greedy { .. } => greedy,
            Strategy::Random { steps, .. } => Strategy::Random { steps, seed },
            Strategy::Evolutionary {
                generations,
                mutation_length,
                ..
            } => Strategy::Evolutionary {
                generations,
                mutation_length,
                seed,
            },
        }
    }

    /// Builds the per-kernel [`CuAsmRl`] optimizer for one spec: the same
    /// seeded construction the worker pool uses, exported so other callers
    /// — the optimization service's request handlers, tests proving
    /// byte-identity with a direct suite run — execute the identical
    /// search for a given spec regardless of which surface asked for it.
    #[must_use]
    pub fn optimizer_for(&self, spec: &KernelSpec) -> CuAsmRl {
        let strategy = self.seeded_strategy(self.kernel_seed(spec));
        let mut optimizer =
            CuAsmRl::new(self.gpu.clone(), strategy).with_game_config(self.game_config.clone());
        if let Some(dir) = &self.cache_dir {
            optimizer = optimizer.with_cache_dir(dir.clone());
        }
        optimizer
    }

    /// Runs the full hierarchical search for one spec under a cancel token —
    /// the serving path's preemptible entry point. Equivalent to
    /// [`SuiteOptimizer::optimizer_for`] followed by
    /// [`CuAsmRl::optimize_spec_instrumented_with`] on the suite's
    /// per-kernel space and tune options; the returned flag says whether the
    /// search was preempted (see the optimizer method for the semantics of a
    /// preempted, degraded report).
    #[must_use = "the flag says whether the report is a degraded partial answer"]
    pub fn optimize_spec_preemptible(
        &self,
        spec: &KernelSpec,
        cancel: &rl::CancelToken,
    ) -> (OptimizationReport, KernelTelemetry, bool) {
        let optimizer = self.optimizer_for(spec);
        let space = self.config_space_for(spec);
        let (report, _cubin, telemetry, preempted) =
            optimizer.optimize_spec_instrumented_with(spec, &space, self.tune_options(), cancel);
        (report, telemetry, preempted)
    }

    /// Optimizes the default `table2` workload suite (the paper's Table-2
    /// kernels) at problem scale `1/scale`.
    #[must_use]
    pub fn optimize_all(&self, scale: usize) -> SuiteReport {
        let suite = find_suite("table2").expect("table2 is a built-in suite");
        self.optimize_workload(&suite, scale)
    }

    /// Optimizes a registry workload suite (see [`kernels::workload_suites`])
    /// at problem scale `1/scale`.
    #[must_use]
    pub fn optimize_workload(&self, suite: &WorkloadSuite, scale: usize) -> SuiteReport {
        self.optimize_labeled(&suite.specs(scale), suite.name)
    }

    /// [`SuiteOptimizer::optimize_workload`] plus the aggregated
    /// [`RunManifest`] telemetry of the run.
    #[must_use]
    pub fn optimize_workload_instrumented(
        &self,
        suite: &WorkloadSuite,
        scale: usize,
    ) -> (SuiteReport, RunManifest) {
        self.optimize_labeled_instrumented(&suite.specs(scale), suite.name)
    }

    /// Optimizes `specs`, sharding the suite across the configured thread
    /// pool and aggregating the reports in suite order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    #[must_use]
    pub fn optimize(&self, specs: &[KernelSpec]) -> SuiteReport {
        self.optimize_labeled(specs, "custom")
    }

    /// [`SuiteOptimizer::optimize`] with an explicit suite label for the
    /// persisted report.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    #[must_use]
    pub fn optimize_labeled(&self, specs: &[KernelSpec], label: &str) -> SuiteReport {
        self.optimize_labeled_instrumented(specs, label).0
    }

    /// [`SuiteOptimizer::optimize_labeled`] plus the aggregated
    /// [`RunManifest`] telemetry of the run (per-kernel reward curves and
    /// phase timings, eval-cache hit rates, PPO training series). When a
    /// cache directory is configured, the manifest is persisted next to the
    /// suite report (see [`crate::telemetry_path`]).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    #[must_use]
    pub fn optimize_labeled_instrumented(
        &self,
        specs: &[KernelSpec],
        label: &str,
    ) -> (SuiteReport, RunManifest) {
        let next = AtomicUsize::new(0);
        let (result_tx, result_rx) = channel::<(usize, OptimizationReport, KernelTelemetry)>();
        let jobs = self.jobs.min(specs.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let next = &next;
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(index) else {
                        return;
                    };
                    let optimizer = self.optimizer_for(spec);
                    let space = self.config_space_for(spec);
                    let (report, _cubin, telemetry) =
                        optimizer.optimize_spec_instrumented(spec, &space, &self.tune_options);
                    if result_tx.send((index, report, telemetry)).is_err() {
                        return;
                    }
                });
            }
        });
        drop(result_tx);

        let mut slots: Vec<Option<(OptimizationReport, KernelTelemetry)>> = vec![None; specs.len()];
        for (index, report, telemetry) in result_rx {
            slots[index] = Some((report, telemetry));
        }
        let (reports, kernel_telemetry): (Vec<OptimizationReport>, Vec<KernelTelemetry>) = slots
            .into_iter()
            .map(|slot| slot.expect("every kernel must produce a report"))
            .unzip();

        let verified = reports.iter().filter(|r| r.verified).count();
        let geomean_speedup = if reports.is_empty() {
            1.0
        } else {
            let log_sum: f64 = reports.iter().map(|r| r.speedup.max(1e-12).ln()).sum();
            (log_sum / reports.len() as f64).exp()
        };
        let suite = SuiteReport {
            gpu: self.gpu.name.clone(),
            suite: label.to_string(),
            seed: self.seed,
            reports,
            geomean_speedup,
            verified,
        };
        let manifest = RunManifest::new(
            self.gpu.name.clone(),
            label,
            self.strategy.name(),
            self.seed,
            self.jobs,
            kernel_telemetry,
            geomean_speedup,
        );
        if let Some(dir) = &self.cache_dir {
            let _ = persist_suite_report(dir, &suite);
            let _ = persist_run_manifest(dir, &manifest);
        }
        (suite, manifest)
    }
}

/// Path of the aggregate suite report inside a cache directory. Keyed on
/// both the device and the suite name so different `--suite` runs against
/// one cache directory never overwrite each other.
#[must_use]
pub fn suite_report_path(dir: &Path, gpu: &str, suite: &str) -> PathBuf {
    dir.join(format!("{gpu}_{suite}_suite.json"))
}

/// Writes the aggregate suite report into the cache directory.
///
/// # Errors
///
/// Returns an IO error if the directory cannot be created or written.
pub fn persist_suite_report(dir: &Path, suite: &SuiteReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let text = serde_json::to_string_pretty(suite)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(suite_report_path(dir, &suite.gpu, &suite.suite), text)
}

/// Loads a previously persisted aggregate suite report.
#[must_use]
pub fn load_suite_report(dir: &Path, gpu: &str, suite: &str) -> Option<SuiteReport> {
    let text = std::fs::read_to_string(suite_report_path(dir, gpu, suite)).ok()?;
    serde_json::from_str(&text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::KernelKind;

    fn fast_measure() -> MeasureOptions {
        MeasureOptions {
            warmup: 0,
            repeats: 2,
            noise_std: 0.0,
            seed: 0,
        }
    }

    fn small_suite() -> Vec<KernelSpec> {
        vec![
            KernelSpec::scaled(KernelKind::MatmulLeakyRelu, 16),
            KernelSpec::scaled(KernelKind::Softmax, 16),
        ]
    }

    fn optimizer(jobs: usize) -> SuiteOptimizer {
        SuiteOptimizer::new(GpuConfig::small(), Strategy::Greedy { max_moves: 4 })
            .with_jobs(jobs)
            .with_seed(7)
            .with_tune_options(fast_measure())
            .with_config_space(ConfigSpace::small())
            .with_game_config(GameConfig {
                episode_length: 8,
                measure: fast_measure(),
                ..GameConfig::default()
            })
    }

    #[test]
    fn suite_reports_arrive_in_suite_order_and_verify() {
        let suite = optimizer(2).optimize(&small_suite());
        assert_eq!(suite.reports.len(), 2);
        assert_eq!(suite.verified, 2);
        assert!(suite.geomean_speedup >= 1.0);
        assert!(suite.reports[0].kernel.contains("mmLeakyReLu"));
        assert!(suite.reports[1].kernel.contains("softmax"));
        assert!(suite.table().contains("geomean"));
    }

    #[test]
    fn per_kernel_seeds_are_independent_of_sharding() {
        let a = optimizer(1);
        let b = optimizer(4);
        for kind in [KernelKind::Softmax, KernelKind::BatchMatmul] {
            let spec = KernelSpec::scaled(kind, 16);
            assert_eq!(a.kernel_seed(&spec), b.kernel_seed(&spec));
        }
        // Distinct kinds and distinct shapes get distinct seeds.
        assert_ne!(
            a.kernel_seed(&KernelSpec::scaled(KernelKind::Softmax, 16)),
            a.kernel_seed(&KernelSpec::scaled(KernelKind::BatchMatmul, 16))
        );
        assert_ne!(
            a.kernel_seed(&KernelSpec::scaled(KernelKind::Softmax, 16)),
            a.kernel_seed(&KernelSpec::scaled(KernelKind::Softmax, 32))
        );
        // Identical specs get identical seeds, so duplicated suite entries
        // run identical searches (the jobs=N determinism contract).
        assert_eq!(
            a.kernel_seed(&KernelSpec::scaled(KernelKind::Rmsnorm, 16)),
            a.kernel_seed(&KernelSpec::scaled(KernelKind::Rmsnorm, 16))
        );
    }

    #[test]
    fn telemetry_manifest_is_aggregated_and_persisted() {
        let dir = std::env::temp_dir().join(format!(
            "cuasmrl-suite-telemetry-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let (suite, manifest) = optimizer(2)
            .with_cache_dir(&dir)
            .optimize_labeled_instrumented(&small_suite(), "custom");
        assert_eq!(manifest.schema_version, crate::TELEMETRY_SCHEMA_VERSION);
        assert_eq!(manifest.kernels.len(), suite.reports.len());
        assert_eq!(manifest.strategy, "greedy");
        assert_eq!(manifest.verified, suite.verified);
        assert_eq!(manifest.geomean_speedup, suite.geomean_speedup);
        for (kernel, report) in manifest.kernels.iter().zip(&suite.reports) {
            assert_eq!(kernel.kernel, report.kernel);
            assert_eq!(kernel.speedup, report.speedup);
            assert_eq!(kernel.reward_curve.len(), report.moves.len());
            assert!(kernel.cache.hits + kernel.cache.misses > 0);
            assert!(kernel.phases.total_ms >= 0.0);
        }
        // The search measures every candidate through the eval cache, so a
        // greedy probe suite must revisit schedules (hits > 0 overall).
        assert!(manifest.cache.hits > 0);
        let loaded = crate::load_run_manifest(&dir, &suite.gpu, &suite.suite)
            .expect("manifest persisted next to the suite report");
        assert_eq!(loaded, manifest);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn aggregate_report_round_trips_through_the_cache_dir() {
        let dir = std::env::temp_dir().join(format!(
            "cuasmrl-suite-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let suite = optimizer(2).with_cache_dir(&dir).optimize(&small_suite());
        let loaded =
            load_suite_report(&dir, &suite.gpu, &suite.suite).expect("aggregate report persisted");
        assert_eq!(loaded.suite, "custom");
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&suite).unwrap()
        );
        // Per-kernel reports are cached for deploy-time lookup as well.
        let per_kernel = CuAsmRl::new(GpuConfig::small(), Strategy::Greedy { max_moves: 4 })
            .with_cache_dir(&dir)
            .lookup(&suite.reports[0].kernel);
        assert!(per_kernel.is_some());
        let _ = std::fs::remove_dir_all(dir);
    }
}
