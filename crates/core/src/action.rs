//! The action space and dependence-preserving action masking (§3.5).
//!
//! An action selects one (movable) memory instruction and a direction: swap
//! it with the instruction directly above or below. Before an action is
//! offered to the agent it is checked against:
//!
//! * **register dependences** — the swap may not cross a def-use pair,
//! * **barrier dependences** — a waiter may not move above the setter of a
//!   barrier it waits on (and vice versa for downward moves),
//! * **stall-count dependences** — Algorithm 1 of the paper: after the swap,
//!   every consumer of a fixed-latency producer must still accumulate at
//!   least the producer's minimum stall count,
//! * **additional heuristic rules** — no moves across labels or
//!   barrier/synchronisation instructions, denylisted instructions never
//!   move, and two `LDGSTS` of the same ascending group never reorder.

use sass::{Instruction, Program};
use serde::{Deserialize, Serialize};

use crate::analysis::Analysis;
use crate::stall_table::StallTable;

/// The direction of a reordering action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Swap the selected instruction with the one above it.
    Up,
    /// Swap the selected instruction with the one below it.
    Down,
}

/// A decoded action: which movable-memory slot, and which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Index into the movable-memory-instruction list.
    pub slot: usize,
    /// Swap direction.
    pub direction: Direction,
}

impl Action {
    /// Decodes a flat action id (`slot * 2 + direction`).
    #[must_use]
    pub fn from_id(id: usize) -> Self {
        Action {
            slot: id / 2,
            direction: if id.is_multiple_of(2) {
                Direction::Up
            } else {
                Direction::Down
            },
        }
    }

    /// Encodes the action as a flat id.
    #[must_use]
    pub fn to_id(self) -> usize {
        self.slot * 2
            + match self.direction {
                Direction::Up => 0,
                Direction::Down => 1,
            }
    }
}

/// Per-instruction facts the legality checks read, decoded once per mask
/// computation instead of once per (candidate action x consumer x producer)
/// visit.
///
/// The masking rules are pure functions of the current schedule; this
/// context only changes *where* the decoding happens (hoisted out of the
/// inner loops), never *what* is checked, so the produced mask is identical
/// to checking each candidate against the raw `sass` structures. Swapped
/// candidate orders are evaluated through an index remap rather than by
/// deep-cloning the program per candidate.
#[derive(Debug, Clone)]
struct MaskContext {
    defs: Vec<Vec<sass::Register>>,
    uses: Vec<Vec<sass::Register>>,
    /// Issue stall of each instruction (`max(1)` applied).
    stall: Vec<u64>,
    /// Minimum required stall for fixed-latency producers (table, then
    /// inferred entries, then the conservative default of 4).
    required: Vec<Option<u64>>,
    fence: Vec<bool>,
    /// Barriers set by each instruction (read then write slot).
    sets: Vec<[Option<u8>; 2]>,
    wait_mask: Vec<u8>,
    /// Shared-memory base register of `LDGSTS` instructions (ascending-group
    /// rule).
    ldgsts_base: Vec<Option<sass::Register>>,
    blocks: Vec<sass::BasicBlock>,
}

impl MaskContext {
    fn new(program: &Program, analysis: &Analysis, stalls: &StallTable) -> Self {
        let instructions: Vec<&Instruction> = program.instructions().collect();
        let n = instructions.len();
        let mut ctx = MaskContext {
            defs: Vec::with_capacity(n),
            uses: Vec::with_capacity(n),
            stall: Vec::with_capacity(n),
            required: Vec::with_capacity(n),
            fence: Vec::with_capacity(n),
            sets: Vec::with_capacity(n),
            wait_mask: Vec::with_capacity(n),
            ldgsts_base: Vec::with_capacity(n),
            blocks: program.basic_blocks(),
        };
        for inst in &instructions {
            ctx.defs.push(inst.defs());
            ctx.uses.push(inst.uses());
            ctx.stall.push(u64::from(inst.control().stall()).max(1));
            let required =
                (inst.opcode().latency_class() == sass::LatencyClass::Fixed).then(|| {
                    let name = inst.opcode().full_name();
                    u64::from(
                        stalls
                            .lookup(&name)
                            .or_else(|| analysis.stalls.lookup(&name))
                            .unwrap_or(4),
                    )
                });
            ctx.required.push(required);
            ctx.fence.push(inst.opcode().is_scheduling_fence());
            ctx.sets.push([
                inst.control().read_barrier(),
                inst.control().write_barrier(),
            ]);
            ctx.wait_mask.push(inst.control().wait_mask());
            ctx.ldgsts_base.push(
                (*inst.opcode().base() == sass::Mnemonic::Ldgsts)
                    .then(|| {
                        inst.operands()
                            .iter()
                            .find_map(sass::Operand::as_mem)
                            .and_then(|m| m.base.map(|r| r.reg))
                    })
                    .flatten(),
            );
        }
        ctx
    }

    fn len(&self) -> usize {
        self.defs.len()
    }

    /// Checks whether swapping adjacent instructions `upper_idx` and
    /// `upper_idx + 1` preserves every dependence.
    fn swap_is_legal(&self, upper_idx: usize) -> bool {
        let lower_idx = upper_idx + 1;
        if lower_idx >= self.len() {
            return false;
        }
        // Never move across (or move) scheduling fences.
        if self.fence[upper_idx] || self.fence[lower_idx] {
            return false;
        }
        // Both instructions must be in the same basic block (no label
        // between them — guaranteed by adjacency and the fence check above,
        // but labels sit between items, so verify through block membership).
        let Some(block) = self.blocks.iter().find(|b| b.contains(upper_idx)).copied() else {
            return false;
        };
        if !block.contains(lower_idx) {
            return false;
        }
        // Register dependences (RAW, WAR, WAW).
        let upper_defs = &self.defs[upper_idx];
        let upper_uses = &self.uses[upper_idx];
        let lower_defs = &self.defs[lower_idx];
        let lower_uses = &self.uses[lower_idx];
        if lower_uses.iter().any(|r| upper_defs.contains(r))
            || lower_defs.iter().any(|r| upper_uses.contains(r))
            || lower_defs.iter().any(|r| upper_defs.contains(r))
        {
            return false;
        }
        // Barrier dependences: the lower instruction may not wait on a
        // barrier set by the upper one (it would move above its setter), and
        // symmetrically after the swap the waiter would precede the setter.
        let waits_on = |idx: usize, barrier: u8| self.wait_mask[idx] & (1 << barrier) != 0;
        if self.sets[upper_idx]
            .iter()
            .flatten()
            .any(|&b| waits_on(lower_idx, b))
        {
            return false;
        }
        if self.sets[lower_idx]
            .iter()
            .flatten()
            .any(|&b| waits_on(upper_idx, b))
        {
            return false;
        }
        // Heuristic rule: never reorder two LDGSTS of the same ascending
        // group.
        if let (Some(a), Some(b)) = (self.ldgsts_base[upper_idx], self.ldgsts_base[lower_idx]) {
            if a == b {
                return false;
            }
        }
        // Stall-count dependences (Algorithm 1), evaluated on the
        // hypothetical post-swap schedule for every consumer in the block at
        // or below the swap point. The swap is applied as an index remap.
        self.stall_counts_satisfied(block.start, block.end, upper_idx)
    }

    /// Verifies that every fixed-latency def-use pair whose distance may
    /// have been affected by a swap at `swap_at` still accumulates enough
    /// stall cycles (Algorithm 1 of the paper, applied to the affected
    /// window).
    fn stall_counts_satisfied(&self, block_start: usize, block_end: usize, swap_at: usize) -> bool {
        // The hypothetical schedule: positions swap_at and swap_at + 1 hold
        // each other's instructions.
        let map = |i: usize| {
            if i == swap_at {
                swap_at + 1
            } else if i == swap_at + 1 {
                swap_at
            } else {
                i
            }
        };
        for consumer_idx in swap_at..block_end {
            let consumer = map(consumer_idx);
            for reg in &self.uses[consumer] {
                let mut accumulated: u64 = 0;
                for producer_idx in (block_start..consumer_idx).rev() {
                    let producer = map(producer_idx);
                    accumulated += self.stall[producer];
                    if self.defs[producer].contains(reg) {
                        if let Some(required) = self.required[producer] {
                            if accumulated < required {
                                return false;
                            }
                        }
                        break;
                    }
                }
            }
        }
        true
    }
}

/// Computes the mask over the flat action space: `mask[slot * 2 + dir]` is
/// true when the corresponding swap preserves all dependences.
#[must_use]
pub fn action_mask(
    program: &Program,
    movable: &[usize],
    analysis: &Analysis,
    stalls: &StallTable,
) -> Vec<bool> {
    IncrementalMasker::new(program, analysis, stalls).full_mask(movable, analysis)
}

/// A retained legality context that survives schedule mutations.
///
/// Recomputing a mask from scratch re-decodes every instruction's defs,
/// uses, control codes and latency lookups. After an adjacent swap, though,
/// only two context entries change places and only candidates inside the
/// swap's basic block can change legality — every stall-count walk is
/// confined to one block, and cross-block candidates are rejected by block
/// membership alone. [`IncrementalMasker::apply_swap`] therefore permutes
/// the per-index arrays in O(1) and
/// [`IncrementalMasker::mask_after_swap`] re-evaluates only the slots whose
/// instruction lies in the affected block, copying every other slot from
/// the previous mask.
///
/// The incremental path is only valid when the swap did not change the
/// *global* inputs of the context — the (possibly schedule-inferred) stall
/// table, the denylist and the block structure. The game checks those
/// preconditions after re-analysis and falls back to a full rebuild when
/// any of them moved; `masking_properties` proptests pin incremental ≡ full
/// recompute over random legal swap sequences.
#[derive(Debug, Clone)]
pub struct IncrementalMasker {
    ctx: MaskContext,
}

impl IncrementalMasker {
    /// Decodes the legality context of `program`.
    #[must_use]
    pub fn new(program: &Program, analysis: &Analysis, stalls: &StallTable) -> Self {
        IncrementalMasker {
            ctx: MaskContext::new(program, analysis, stalls),
        }
    }

    /// The full mask over `movable` (exactly [`action_mask`]).
    #[must_use]
    pub fn full_mask(&self, movable: &[usize], analysis: &Analysis) -> Vec<bool> {
        let count = self.ctx.len();
        let mut mask = vec![false; movable.len() * 2];
        for (slot, &index) in movable.iter().enumerate() {
            if analysis.denylist.contains(&index) {
                continue;
            }
            if index > 0 {
                mask[slot * 2] = self.ctx.swap_is_legal(index - 1);
            }
            if index + 1 < count {
                mask[slot * 2 + 1] = self.ctx.swap_is_legal(index);
            }
        }
        mask
    }

    /// True when the swap of `upper` and `upper + 1` keeps the context
    /// incrementally updatable: both instructions live in one basic block
    /// and neither is a scheduling fence (so the block structure cannot
    /// move). Accepted game actions always satisfy this — the mask itself
    /// forbids the rest — but the caller must fall back to a rebuild when
    /// it does not hold.
    #[must_use]
    pub fn swap_stays_incremental(&self, upper: usize) -> bool {
        let lower = upper + 1;
        lower < self.ctx.len()
            && !self.ctx.fence[upper]
            && !self.ctx.fence[lower]
            && self
                .ctx
                .blocks
                .iter()
                .any(|b| b.contains(upper) && b.contains(lower))
    }

    /// Applies an adjacent swap to the per-index context arrays. Blocks are
    /// untouched (guarded by [`IncrementalMasker::swap_stays_incremental`]).
    pub fn apply_swap(&mut self, upper: usize) {
        let lower = upper + 1;
        if lower >= self.ctx.len() {
            return;
        }
        self.ctx.defs.swap(upper, lower);
        self.ctx.uses.swap(upper, lower);
        self.ctx.stall.swap(upper, lower);
        self.ctx.required.swap(upper, lower);
        self.ctx.fence.swap(upper, lower);
        self.ctx.sets.swap(upper, lower);
        self.ctx.wait_mask.swap(upper, lower);
        self.ctx.ldgsts_base.swap(upper, lower);
    }

    /// The mask after a swap at `upper` was applied with
    /// [`IncrementalMasker::apply_swap`]: slots whose instruction lies in
    /// the swap's basic block are re-evaluated, every other slot is copied
    /// from `prev_mask` (indexed through `prev_movable`, which is sorted).
    #[must_use]
    pub fn mask_after_swap(
        &self,
        upper: usize,
        movable: &[usize],
        analysis: &Analysis,
        prev_movable: &[usize],
        prev_mask: &[bool],
    ) -> Vec<bool> {
        let count = self.ctx.len();
        let swap_block = self.ctx.blocks.iter().find(|b| b.contains(upper)).copied();
        let mut mask = vec![false; movable.len() * 2];
        for (slot, &index) in movable.iter().enumerate() {
            if analysis.denylist.contains(&index) {
                continue;
            }
            let affected = swap_block.is_none_or(|b| b.contains(index));
            if !affected {
                if let Ok(prev_slot) = prev_movable.binary_search(&index) {
                    mask[slot * 2] = prev_mask.get(prev_slot * 2).copied().unwrap_or(false);
                    mask[slot * 2 + 1] = prev_mask.get(prev_slot * 2 + 1).copied().unwrap_or(false);
                    continue;
                }
            }
            if index > 0 {
                mask[slot * 2] = self.ctx.swap_is_legal(index - 1);
            }
            if index + 1 < count {
                mask[slot * 2 + 1] = self.ctx.swap_is_legal(index);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x100 ;
[B------:R-:W-:-:S04] MOV R8, 0x200 ;
[B------:R-:W-:-:S04] IADD3 R6, R4, 0x1, RZ ;
[B------:R-:W0:-:S02] LDG.E R2, [R8] ;
[B0-----:R-:W-:-:S04] IADD3 R7, R2, 0x1, RZ ;
[B------:R-:W-:-:S02] STG.E [R4], R7 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn setup() -> (Program, Analysis, StallTable) {
        let program: Program = SAMPLE.parse().unwrap();
        let table = StallTable::builtin_a100();
        let analysis = analyze(&program, &table);
        (program, analysis, table)
    }

    #[test]
    fn action_encoding_round_trips() {
        for id in 0..10 {
            assert_eq!(Action::from_id(id).to_id(), id);
        }
        assert_eq!(Action::from_id(3).direction, Direction::Down);
        assert_eq!(Action::from_id(4).slot, 2);
    }

    #[test]
    fn register_dependences_are_masked() {
        let (program, analysis, table) = setup();
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        // The LDG (index 3) cannot move down: the IADD3 below consumes R2.
        let ldg_slot = movable.iter().position(|&i| i == 3).unwrap();
        assert!(!mask[ldg_slot * 2 + 1]);
        // It can move up past the unrelated IADD3 R6 (no shared registers).
        assert!(mask[ldg_slot * 2]);
    }

    #[test]
    fn stall_count_violations_are_masked() {
        // Moving the STG up right below its producer chain would shrink the
        // accumulated stall below the IADD3 latency.
        let text = "\
[B------:R-:W-:-:S04] MOV R4, 0x100 ;
[B------:R-:W-:-:S02] IADD3 R7, R4, 0x1, RZ ;
[B------:R-:W-:-:S01] NOP ;
[B------:R-:W-:-:S01] NOP ;
[B------:R-:W-:-:S02] STG.E [R4], R7 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let program: Program = text.parse().unwrap();
        let table = StallTable::builtin_a100();
        let analysis = analyze(&program, &table);
        let movable = analysis.movable_memory_indices();
        let stg_slot = movable.iter().position(|&i| i == 4).unwrap();
        let mask = action_mask(&program, &movable, &analysis, &table);
        // Moving up once (above one NOP) leaves accumulated 2+1 = 3 < 4.
        assert!(!mask[stg_slot * 2], "stall-count violation must be masked");
    }

    #[test]
    fn fences_and_boundaries_are_masked() {
        let (program, analysis, table) = setup();
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        // The STG (last memory instruction) cannot move down into EXIT.
        let stg_slot = movable.iter().position(|&i| i == 5).unwrap();
        assert!(!mask[stg_slot * 2 + 1]);
    }

    #[test]
    fn ldgsts_group_members_never_reorder() {
        let text = "\
[B------:R-:W-:-:S04] MOV R74, 0x0 ;
[B------:R-:W-:-:S04] MOV R10, 0x1000 ;
[B------:R-:W0:-:S02] LDGSTS.E.128 [R74+0x0], desc[UR16][R10.64] ;
[B------:R-:W0:-:S02] LDGSTS.E.128 [R74+0x100], desc[UR16][R10.64+0x200] ;
[B------:R-:W-:-:S05] EXIT ;
";
        let program: Program = text.parse().unwrap();
        let table = StallTable::builtin_a100();
        let analysis = analyze(&program, &table);
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        let second_slot = movable.iter().position(|&i| i == 3).unwrap();
        assert!(!mask[second_slot * 2], "group members must not reorder");
    }

    #[test]
    fn masked_actions_keep_the_simulation_hazard_free() {
        // Apply every legal action once and verify the simulator agrees.
        use gpusim::{simulate_launch, GpuConfig, LaunchConfig};
        let (program, analysis, table) = setup();
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        let launch = LaunchConfig::default();
        let baseline = simulate_launch(&GpuConfig::small(), &program, &launch);
        for (id, allowed) in mask.iter().enumerate() {
            if !allowed {
                continue;
            }
            let action = Action::from_id(id);
            let index = movable[action.slot];
            let mut mutated = program.clone();
            let (a, b) = match action.direction {
                Direction::Up => (index - 1, index),
                Direction::Down => (index, index + 1),
            };
            mutated.swap_instructions(a, b).unwrap();
            let run = simulate_launch(&GpuConfig::small(), &mutated, &launch);
            assert_eq!(run.sm.hazards, 0, "legal action {id} must stay hazard-free");
            assert_eq!(run.sm.output_digest, baseline.sm.output_digest);
        }
    }
}
