//! The action space and dependence-preserving action masking (§3.5).
//!
//! An action selects one (movable) memory instruction and a direction: swap
//! it with the instruction directly above or below. Before an action is
//! offered to the agent it is checked against:
//!
//! * **register dependences** — the swap may not cross a def-use pair,
//! * **barrier dependences** — a waiter may not move above the setter of a
//!   barrier it waits on (and vice versa for downward moves),
//! * **stall-count dependences** — Algorithm 1 of the paper: after the swap,
//!   every consumer of a fixed-latency producer must still accumulate at
//!   least the producer's minimum stall count,
//! * **additional heuristic rules** — no moves across labels or
//!   barrier/synchronisation instructions, denylisted instructions never
//!   move, and two `LDGSTS` of the same ascending group never reorder.

use sass::{Instruction, Program};
use serde::{Deserialize, Serialize};

use crate::analysis::Analysis;
use crate::stall_table::StallTable;

/// The direction of a reordering action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Swap the selected instruction with the one above it.
    Up,
    /// Swap the selected instruction with the one below it.
    Down,
}

/// A decoded action: which movable-memory slot, and which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Index into the movable-memory-instruction list.
    pub slot: usize,
    /// Swap direction.
    pub direction: Direction,
}

impl Action {
    /// Decodes a flat action id (`slot * 2 + direction`).
    #[must_use]
    pub fn from_id(id: usize) -> Self {
        Action {
            slot: id / 2,
            direction: if id.is_multiple_of(2) {
                Direction::Up
            } else {
                Direction::Down
            },
        }
    }

    /// Encodes the action as a flat id.
    #[must_use]
    pub fn to_id(self) -> usize {
        self.slot * 2
            + match self.direction {
                Direction::Up => 0,
                Direction::Down => 1,
            }
    }
}

/// One family of schedule transforms the agent can request on a movable
/// slot. The swap kinds reproduce the paper's action space; the remaining
/// kinds are the richer transforms of [`ActionSpace::Rich`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EditKind {
    /// Swap the selected instruction with the one above it.
    #[default]
    SwapUp,
    /// Swap the selected instruction with the one below it.
    SwapDown,
    /// Move the selected instruction two positions up (a block move).
    MoveUp,
    /// Move the selected instruction two positions down (a block move).
    MoveDown,
    /// Toggle the `.reuse` operand-cache hint on the first eligible source
    /// register operand.
    ToggleReuse,
    /// Increase the issue-stall count by one cycle.
    StallInc,
    /// Decrease the issue-stall count by one cycle.
    StallDec,
    /// Add a wait on one more scoreboard barrier that some instruction sets.
    WaitWiden,
    /// Drop a provably redundant scoreboard wait (an earlier instruction in
    /// the same block already waited on the barrier and nothing re-armed it).
    WaitTighten,
}

/// Which edit families the flat action space offers per movable slot.
///
/// The default reproduces the paper exactly: two actions per slot (swap up /
/// swap down), byte-identical masks, ids and schedules. [`ActionSpace::Rich`]
/// widens each slot to the full [`EditKind`] table; the swap kinds keep the
/// first two positions so `id % kinds_per_slot()` stays aligned with the
/// legacy encoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionSpace {
    /// Adjacent pairwise reorders only (the paper's §3.4 action space).
    #[default]
    AdjacentSwap,
    /// The full typed [`ScheduleEdit`] set: swaps, distance-2 block moves,
    /// reuse-flag toggles, stall retuning and barrier wait widening /
    /// tightening.
    Rich,
}

impl ActionSpace {
    const SWAP_KINDS: [EditKind; 2] = [EditKind::SwapUp, EditKind::SwapDown];
    const RICH_KINDS: [EditKind; 9] = [
        EditKind::SwapUp,
        EditKind::SwapDown,
        EditKind::MoveUp,
        EditKind::MoveDown,
        EditKind::ToggleReuse,
        EditKind::StallInc,
        EditKind::StallDec,
        EditKind::WaitWiden,
        EditKind::WaitTighten,
    ];

    /// The edit kinds offered per movable slot, in flat-id order.
    #[must_use]
    pub fn kinds(self) -> &'static [EditKind] {
        match self {
            ActionSpace::AdjacentSwap => &Self::SWAP_KINDS,
            ActionSpace::Rich => &Self::RICH_KINDS,
        }
    }

    /// Number of actions per movable slot.
    #[must_use]
    pub fn kinds_per_slot(self) -> usize {
        self.kinds().len()
    }

    /// Size of the flat action space over `slots` movable instructions
    /// (always at least 1 so policy heads stay well-formed).
    #[must_use]
    pub fn action_count(self, slots: usize) -> usize {
        (slots * self.kinds_per_slot()).max(1)
    }

    /// Decodes a flat action id into `(slot, kind)`.
    #[must_use]
    pub fn decode(self, id: usize) -> (usize, EditKind) {
        let kinds = self.kinds();
        (id / kinds.len(), kinds[id % kinds.len()])
    }

    /// Encodes `(slot, kind)` as a flat id; `None` when this space does not
    /// offer the kind.
    #[must_use]
    pub fn encode(self, slot: usize, kind: EditKind) -> Option<usize> {
        let kinds = self.kinds();
        kinds
            .iter()
            .position(|&k| k == kind)
            .map(|pos| slot * kinds.len() + pos)
    }
}

/// A fully-resolved, legality-checked schedule transform.
///
/// Where [`Action`] names a *request* (slot + kind), a `ScheduleEdit` names
/// the concrete mutation the mask resolved it to: absolute instruction
/// indices, the operand carrying the reuse flag, the exact stall transition
/// or the barrier bit being flipped. Every variant is invertible in O(1)
/// ([`ScheduleEdit::inverse`]), which is how the game reverts a transform the
/// simulator rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleEdit {
    /// Swap adjacent instructions `upper` and `upper + 1`.
    Swap {
        /// Index of the upper instruction of the pair.
        upper: usize,
    },
    /// Move the instruction at `index` by `distance` positions as a sequence
    /// of adjacent swaps (each stepwise mask-legal).
    BlockMove {
        /// Pre-move index of the instruction being moved.
        index: usize,
        /// Move direction.
        direction: Direction,
        /// Number of positions moved (currently always 2).
        distance: usize,
    },
    /// Toggle the `.reuse` hint on one operand of the instruction at `index`.
    ToggleReuse {
        /// Instruction index.
        index: usize,
        /// Operand position carrying the flag.
        operand: usize,
    },
    /// Retune the issue-stall count of the instruction at `index`.
    SetStall {
        /// Instruction index.
        index: usize,
        /// Stall count before the edit.
        from: u8,
        /// Stall count after the edit.
        to: u8,
    },
    /// Add (`on`) or remove (`!on`) a scoreboard-barrier wait on the
    /// instruction at `index`.
    SetWait {
        /// Instruction index.
        index: usize,
        /// Barrier number (`0..NUM_BARRIERS`).
        barrier: u8,
        /// True to add the wait, false to drop it.
        on: bool,
    },
}

impl ScheduleEdit {
    /// The primary instruction index the edit targets (its pre-edit
    /// position).
    #[must_use]
    pub fn index(&self) -> usize {
        match *self {
            ScheduleEdit::Swap { upper } => upper,
            ScheduleEdit::BlockMove { index, .. }
            | ScheduleEdit::ToggleReuse { index, .. }
            | ScheduleEdit::SetStall { index, .. }
            | ScheduleEdit::SetWait { index, .. } => index,
        }
    }

    /// Every instruction index whose content (or position) differs after the
    /// edit — exactly the `changed` set handed to
    /// [`gpusim::DeltaEngine::simulate_delta`].
    #[must_use]
    pub fn touched_indices(&self) -> Vec<usize> {
        match *self {
            ScheduleEdit::Swap { upper } => vec![upper, upper + 1],
            ScheduleEdit::BlockMove {
                index,
                direction,
                distance,
            } => match direction {
                Direction::Up => {
                    if index < distance {
                        return Vec::new();
                    }
                    ((index - distance)..=index).collect()
                }
                Direction::Down => (index..=(index + distance)).collect(),
            },
            ScheduleEdit::ToggleReuse { index, .. }
            | ScheduleEdit::SetStall { index, .. }
            | ScheduleEdit::SetWait { index, .. } => vec![index],
        }
    }

    /// The adjacent-swap sequence realising a positional edit (`upper`
    /// indices, in application order); empty for in-place content edits and
    /// for malformed moves that would run off the program start.
    #[must_use]
    pub fn swap_sequence(&self) -> Vec<usize> {
        match *self {
            ScheduleEdit::Swap { upper } => vec![upper],
            ScheduleEdit::BlockMove {
                index,
                direction,
                distance,
            } => match direction {
                Direction::Up => {
                    if index < distance {
                        return Vec::new();
                    }
                    (1..=distance).map(|k| index - k).collect()
                }
                Direction::Down => (0..distance).map(|k| index + k).collect(),
            },
            _ => Vec::new(),
        }
    }

    /// The edit that exactly undoes this one when applied to the post-edit
    /// schedule.
    #[must_use]
    pub fn inverse(&self) -> ScheduleEdit {
        match *self {
            ScheduleEdit::Swap { upper } => ScheduleEdit::Swap { upper },
            ScheduleEdit::BlockMove {
                index,
                direction,
                distance,
            } => match direction {
                Direction::Up => ScheduleEdit::BlockMove {
                    index: index.saturating_sub(distance),
                    direction: Direction::Down,
                    distance,
                },
                Direction::Down => ScheduleEdit::BlockMove {
                    index: index + distance,
                    direction: Direction::Up,
                    distance,
                },
            },
            ScheduleEdit::ToggleReuse { index, operand } => {
                ScheduleEdit::ToggleReuse { index, operand }
            }
            ScheduleEdit::SetStall { index, from, to } => ScheduleEdit::SetStall {
                index,
                from: to,
                to: from,
            },
            ScheduleEdit::SetWait { index, barrier, on } => ScheduleEdit::SetWait {
                index,
                barrier,
                on: !on,
            },
        }
    }

    /// Maps a post-edit instruction position to the pre-edit position of the
    /// instruction now occupying it (identity for content edits).
    #[must_use]
    pub fn old_position_of(&self, new: usize) -> usize {
        match *self {
            ScheduleEdit::Swap { upper } => {
                if new == upper {
                    upper + 1
                } else if new == upper + 1 {
                    upper
                } else {
                    new
                }
            }
            ScheduleEdit::BlockMove {
                index,
                direction,
                distance,
            } => match direction {
                // [a .. b m] rotated right by one: the moved instruction m
                // lands at index - distance, everything it passed shifts
                // down one position.
                Direction::Up => {
                    if index < distance {
                        new
                    } else if new == index - distance {
                        index
                    } else if new > index - distance && new <= index {
                        new - 1
                    } else {
                        new
                    }
                }
                // [m a .. b] rotated left by one.
                Direction::Down => {
                    if new == index + distance {
                        index
                    } else if new >= index && new < index + distance {
                        new + 1
                    } else {
                        new
                    }
                }
            },
            _ => new,
        }
    }

    /// Applies the edit to a source program. Returns false (program
    /// unchanged) when any index is out of range or the target operand
    /// cannot carry the flag.
    pub fn apply(&self, program: &mut Program) -> bool {
        match *self {
            ScheduleEdit::Swap { .. } | ScheduleEdit::BlockMove { .. } => {
                let swaps = self.swap_sequence();
                if swaps.is_empty() || swaps.iter().any(|&u| u + 1 >= program.instruction_count()) {
                    return false;
                }
                for &upper in &swaps {
                    if program.swap_instructions(upper, upper + 1).is_err() {
                        return false;
                    }
                }
                true
            }
            ScheduleEdit::ToggleReuse { index, operand } => {
                let Some(inst) = program.instruction_mut(index) else {
                    return false;
                };
                let reuse = inst
                    .operands()
                    .get(operand)
                    .is_some_and(sass::Operand::has_reuse);
                inst.set_operand_reuse(operand, !reuse)
            }
            ScheduleEdit::SetStall { index, to, .. } => {
                if to > 15 {
                    return false;
                }
                let Some(inst) = program.instruction_mut(index) else {
                    return false;
                };
                inst.control_mut().set_stall(to);
                true
            }
            ScheduleEdit::SetWait { index, barrier, on } => {
                if barrier >= sass::NUM_BARRIERS {
                    return false;
                }
                let Some(inst) = program.instruction_mut(index) else {
                    return false;
                };
                inst.control_mut().set_wait(barrier, on);
                true
            }
        }
    }

    /// Mirrors the edit onto the lowered form in O(edit): swaps transpose
    /// compiled slots, content edits re-lower the one touched instruction
    /// from `program_after` (the source program *with the edit already
    /// applied*).
    pub fn apply_to_compiled(
        &self,
        compiled: &mut gpusim::CompiledProgram,
        program_after: &Program,
        gpu: &gpusim::GpuConfig,
    ) {
        match *self {
            ScheduleEdit::Swap { .. } | ScheduleEdit::BlockMove { .. } => {
                for upper in self.swap_sequence() {
                    compiled.swap_insts(upper, upper + 1);
                }
            }
            ScheduleEdit::ToggleReuse { index, .. }
            | ScheduleEdit::SetStall { index, .. }
            | ScheduleEdit::SetWait { index, .. } => {
                if let Some(inst) = program_after.instruction(index) {
                    compiled.replace_inst(index, inst, gpu);
                }
            }
        }
    }
}

/// Per-instruction facts the legality checks read, decoded once per mask
/// computation instead of once per (candidate action x consumer x producer)
/// visit.
///
/// The masking rules are pure functions of the current schedule; this
/// context only changes *where* the decoding happens (hoisted out of the
/// inner loops), never *what* is checked, so the produced mask is identical
/// to checking each candidate against the raw `sass` structures. Swapped
/// candidate orders are evaluated through an index remap rather than by
/// deep-cloning the program per candidate.
#[derive(Debug, Clone)]
struct MaskContext {
    defs: Vec<Vec<sass::Register>>,
    uses: Vec<Vec<sass::Register>>,
    /// Issue stall of each instruction (`max(1)` applied).
    stall: Vec<u64>,
    /// Raw encoded stall of each instruction (no `max(1)` floor) — the value
    /// stall-retune edits read and write.
    raw_stall: Vec<u8>,
    /// Minimum required stall for fixed-latency producers (table, then
    /// inferred entries, then the conservative default of 4).
    required: Vec<Option<u64>>,
    fence: Vec<bool>,
    /// Barriers set by each instruction (read then write slot).
    sets: Vec<[Option<u8>; 2]>,
    wait_mask: Vec<u8>,
    /// The operand position reuse-toggle edits target: the first
    /// source-position plain-GPR register operand. Chosen by operand kind
    /// and position only, so it is invariant under every [`ScheduleEdit`]
    /// (toggles flip a flag, never reshape operands).
    reuse_target: Vec<Option<usize>>,
    /// Union of all barriers any instruction sets — the candidate pool for
    /// wait-widening. Edits never reassign read/write barriers, so this
    /// never changes incrementally.
    set_barriers: u8,
    /// Shared-memory base register of `LDGSTS` instructions (ascending-group
    /// rule).
    ldgsts_base: Vec<Option<sass::Register>>,
    blocks: Vec<sass::BasicBlock>,
}

/// The operand position a reuse-toggle on `inst` targets: the first
/// source-position operand that is a plain GPR register, or failing that a
/// memory reference whose base address register is one (predicates,
/// immediates, descriptors and specials cannot usefully carry the
/// operand-cache hint). The choice depends only on operand kinds, never on
/// the current flag value, so toggling never moves the target.
fn reuse_target_of(inst: &Instruction) -> Option<usize> {
    let dests = inst.dest_operand_count();
    let sources = || inst.operands().iter().enumerate().skip(dests);
    sources()
        .find_map(|(i, op)| match op {
            sass::Operand::Reg(r) if matches!(r.reg, sass::Register::Gpr(_)) => Some(i),
            _ => None,
        })
        .or_else(|| {
            sources().find_map(|(i, op)| match op {
                sass::Operand::Mem(m)
                    if m.base
                        .is_some_and(|b| matches!(b.reg, sass::Register::Gpr(_))) =>
                {
                    Some(i)
                }
                _ => None,
            })
        })
}

impl MaskContext {
    fn new(program: &Program, analysis: &Analysis, stalls: &StallTable) -> Self {
        let instructions: Vec<&Instruction> = program.instructions().collect();
        let n = instructions.len();
        let mut ctx = MaskContext {
            defs: Vec::with_capacity(n),
            uses: Vec::with_capacity(n),
            stall: Vec::with_capacity(n),
            raw_stall: Vec::with_capacity(n),
            required: Vec::with_capacity(n),
            fence: Vec::with_capacity(n),
            sets: Vec::with_capacity(n),
            wait_mask: Vec::with_capacity(n),
            reuse_target: Vec::with_capacity(n),
            set_barriers: 0,
            ldgsts_base: Vec::with_capacity(n),
            blocks: program.basic_blocks(),
        };
        for inst in &instructions {
            ctx.defs.push(inst.defs());
            ctx.uses.push(inst.uses());
            ctx.stall.push(u64::from(inst.control().stall()).max(1));
            ctx.raw_stall.push(inst.control().stall());
            ctx.reuse_target.push(reuse_target_of(inst));
            for barrier in [
                inst.control().read_barrier(),
                inst.control().write_barrier(),
            ]
            .into_iter()
            .flatten()
            {
                ctx.set_barriers |= 1 << barrier;
            }
            let required =
                (inst.opcode().latency_class() == sass::LatencyClass::Fixed).then(|| {
                    let name = inst.opcode().full_name();
                    u64::from(
                        stalls
                            .lookup(&name)
                            .or_else(|| analysis.stalls.lookup(&name))
                            .unwrap_or(4),
                    )
                });
            ctx.required.push(required);
            ctx.fence.push(inst.opcode().is_scheduling_fence());
            ctx.sets.push([
                inst.control().read_barrier(),
                inst.control().write_barrier(),
            ]);
            ctx.wait_mask.push(inst.control().wait_mask());
            ctx.ldgsts_base.push(
                (*inst.opcode().base() == sass::Mnemonic::Ldgsts)
                    .then(|| {
                        inst.operands()
                            .iter()
                            .find_map(sass::Operand::as_mem)
                            .and_then(|m| m.base.map(|r| r.reg))
                    })
                    .flatten(),
            );
        }
        ctx
    }

    fn len(&self) -> usize {
        self.defs.len()
    }

    /// Checks whether swapping adjacent instructions `upper_idx` and
    /// `upper_idx + 1` preserves every dependence.
    fn swap_is_legal(&self, upper_idx: usize) -> bool {
        let lower_idx = upper_idx + 1;
        if lower_idx >= self.len() {
            return false;
        }
        // Never move across (or move) scheduling fences.
        if self.fence[upper_idx] || self.fence[lower_idx] {
            return false;
        }
        // Both instructions must be in the same basic block (no label
        // between them — guaranteed by adjacency and the fence check above,
        // but labels sit between items, so verify through block membership).
        let Some(block) = self.blocks.iter().find(|b| b.contains(upper_idx)).copied() else {
            return false;
        };
        if !block.contains(lower_idx) {
            return false;
        }
        // Register dependences (RAW, WAR, WAW).
        let upper_defs = &self.defs[upper_idx];
        let upper_uses = &self.uses[upper_idx];
        let lower_defs = &self.defs[lower_idx];
        let lower_uses = &self.uses[lower_idx];
        if lower_uses.iter().any(|r| upper_defs.contains(r))
            || lower_defs.iter().any(|r| upper_uses.contains(r))
            || lower_defs.iter().any(|r| upper_defs.contains(r))
        {
            return false;
        }
        // Barrier dependences: the lower instruction may not wait on a
        // barrier set by the upper one (it would move above its setter), and
        // symmetrically after the swap the waiter would precede the setter.
        let waits_on = |idx: usize, barrier: u8| self.wait_mask[idx] & (1 << barrier) != 0;
        if self.sets[upper_idx]
            .iter()
            .flatten()
            .any(|&b| waits_on(lower_idx, b))
        {
            return false;
        }
        if self.sets[lower_idx]
            .iter()
            .flatten()
            .any(|&b| waits_on(upper_idx, b))
        {
            return false;
        }
        // Heuristic rule: never reorder two LDGSTS of the same ascending
        // group.
        if let (Some(a), Some(b)) = (self.ldgsts_base[upper_idx], self.ldgsts_base[lower_idx]) {
            if a == b {
                return false;
            }
        }
        // Stall-count dependences (Algorithm 1), evaluated on the
        // hypothetical post-swap schedule for every consumer in the block at
        // or below the swap point. The swap is applied as an index remap.
        self.stall_counts_satisfied(block.start, block.end, upper_idx)
    }

    /// Verifies that every fixed-latency def-use pair whose distance may
    /// have been affected by a swap at `swap_at` still accumulates enough
    /// stall cycles (Algorithm 1 of the paper, applied to the affected
    /// window).
    fn stall_counts_satisfied(&self, block_start: usize, block_end: usize, swap_at: usize) -> bool {
        // The hypothetical schedule: positions swap_at and swap_at + 1 hold
        // each other's instructions.
        let map = |i: usize| {
            if i == swap_at {
                swap_at + 1
            } else if i == swap_at + 1 {
                swap_at
            } else {
                i
            }
        };
        for consumer_idx in swap_at..block_end {
            let consumer = map(consumer_idx);
            for reg in &self.uses[consumer] {
                let mut accumulated: u64 = 0;
                for producer_idx in (block_start..consumer_idx).rev() {
                    let producer = map(producer_idx);
                    accumulated += self.stall[producer];
                    if self.defs[producer].contains(reg) {
                        if let Some(required) = self.required[producer] {
                            if accumulated < required {
                                return false;
                            }
                        }
                        break;
                    }
                }
            }
        }
        true
    }

    /// The basic block containing `index`, if any.
    fn block_of(&self, index: usize) -> Option<sass::BasicBlock> {
        self.blocks.iter().find(|b| b.contains(index)).copied()
    }

    /// Transposes the per-index context entries of `upper` and `upper + 1`.
    fn swap_entries(&mut self, upper: usize) {
        let lower = upper + 1;
        if lower >= self.len() {
            return;
        }
        self.defs.swap(upper, lower);
        self.uses.swap(upper, lower);
        self.stall.swap(upper, lower);
        self.raw_stall.swap(upper, lower);
        self.required.swap(upper, lower);
        self.fence.swap(upper, lower);
        self.sets.swap(upper, lower);
        self.wait_mask.swap(upper, lower);
        self.reuse_target.swap(upper, lower);
        self.ldgsts_base.swap(upper, lower);
    }

    /// Checks that retuning the stall of `index` to `new_stall` keeps every
    /// fixed-latency def-use distance satisfied. Two rules:
    ///
    /// 1. every in-block consumer below `index` still accumulates its
    ///    producer's required stall (the same walk as Algorithm 1, with the
    ///    retuned value substituted), and
    /// 2. every fixed-latency producer at or above `index` still fully
    ///    retires before control can leave the block — consumers in other
    ///    blocks (fall-through successors, loop back-edges) are invisible to
    ///    the walk above, so the accumulated stall from each such producer
    ///    to the block end must cover its latency on its own.
    fn stall_retune_is_legal(&self, block: sass::BasicBlock, index: usize, new_stall: u64) -> bool {
        let stall_at = |i: usize| {
            if i == index {
                new_stall.max(1)
            } else {
                self.stall[i]
            }
        };
        for consumer_idx in (index + 1)..block.end {
            for reg in &self.uses[consumer_idx] {
                let mut accumulated: u64 = 0;
                for producer_idx in (block.start..consumer_idx).rev() {
                    accumulated += stall_at(producer_idx);
                    if self.defs[producer_idx].contains(reg) {
                        if let Some(required) = self.required[producer_idx] {
                            if accumulated < required {
                                return false;
                            }
                        }
                        break;
                    }
                }
            }
        }
        for producer_idx in block.start..=index {
            let Some(required) = self.required[producer_idx] else {
                continue;
            };
            if self.defs[producer_idx].is_empty() {
                continue;
            }
            let accumulated: u64 = (producer_idx..block.end).map(stall_at).sum();
            if accumulated < required {
                return false;
            }
        }
        true
    }

    /// Resolves an `(index, kind)` request into a concrete legal
    /// [`ScheduleEdit`], or `None` when the transform is illegal here. Move
    /// kinds borrow mutably: the second hop of a block move is checked on
    /// the intermediate schedule by transposing the context entries and
    /// transposing them back (an O(1) involution).
    fn resolve_edit(&mut self, kind: EditKind, index: usize) -> Option<ScheduleEdit> {
        if index >= self.len() {
            return None;
        }
        match kind {
            EditKind::SwapUp => (index > 0 && self.swap_is_legal(index - 1))
                .then(|| ScheduleEdit::Swap { upper: index - 1 }),
            EditKind::SwapDown => (index + 1 < self.len() && self.swap_is_legal(index))
                .then_some(ScheduleEdit::Swap { upper: index }),
            EditKind::MoveUp => {
                if index < 2 || !self.swap_is_legal(index - 1) {
                    return None;
                }
                self.swap_entries(index - 1);
                let legal = self.swap_is_legal(index - 2);
                self.swap_entries(index - 1);
                legal.then_some(ScheduleEdit::BlockMove {
                    index,
                    direction: Direction::Up,
                    distance: 2,
                })
            }
            EditKind::MoveDown => {
                if index + 2 >= self.len() || !self.swap_is_legal(index) {
                    return None;
                }
                self.swap_entries(index);
                let legal = self.swap_is_legal(index + 1);
                self.swap_entries(index);
                legal.then_some(ScheduleEdit::BlockMove {
                    index,
                    direction: Direction::Down,
                    distance: 2,
                })
            }
            EditKind::ToggleReuse => {
                if self.fence[index] {
                    return None;
                }
                self.reuse_target[index].map(|operand| ScheduleEdit::ToggleReuse { index, operand })
            }
            EditKind::StallInc => {
                let from = self.raw_stall[index];
                (!self.fence[index] && from < 15).then(|| ScheduleEdit::SetStall {
                    index,
                    from,
                    to: from + 1,
                })
            }
            EditKind::StallDec => {
                let from = self.raw_stall[index];
                if self.fence[index] || from <= 1 {
                    return None;
                }
                let block = self.block_of(index)?;
                self.stall_retune_is_legal(block, index, u64::from(from - 1))
                    .then(|| ScheduleEdit::SetStall {
                        index,
                        from,
                        to: from - 1,
                    })
            }
            EditKind::WaitWiden => {
                if self.fence[index] {
                    return None;
                }
                let own: u8 = self.sets[index]
                    .iter()
                    .flatten()
                    .fold(0, |mask, &b| mask | (1 << b));
                (0..sass::NUM_BARRIERS)
                    .find(|&b| {
                        let bit = 1u8 << b;
                        self.wait_mask[index] & bit == 0
                            && self.set_barriers & bit != 0
                            && own & bit == 0
                    })
                    .map(|barrier| ScheduleEdit::SetWait {
                        index,
                        barrier,
                        on: true,
                    })
            }
            EditKind::WaitTighten => {
                if self.fence[index] {
                    return None;
                }
                let block = self.block_of(index)?;
                for barrier in 0..sass::NUM_BARRIERS {
                    let bit = 1u8 << barrier;
                    if self.wait_mask[index] & bit == 0 {
                        continue;
                    }
                    // Removable only when an earlier instruction in the same
                    // straight-line block already waited on the barrier and
                    // nothing between it and `index` re-armed it: by then
                    // the scoreboard is provably drained at `index`, so the
                    // wait is a timing no-op.
                    for j in (block.start..index).rev() {
                        if self.sets[j].iter().flatten().any(|&set| set == barrier) {
                            break;
                        }
                        if self.wait_mask[j] & bit != 0 {
                            return Some(ScheduleEdit::SetWait {
                                index,
                                barrier,
                                on: false,
                            });
                        }
                    }
                }
                None
            }
        }
    }
}

/// Computes the mask over the flat action space: `mask[slot * 2 + dir]` is
/// true when the corresponding swap preserves all dependences.
#[must_use]
pub fn action_mask(
    program: &Program,
    movable: &[usize],
    analysis: &Analysis,
    stalls: &StallTable,
) -> Vec<bool> {
    IncrementalMasker::new(program, analysis, stalls).full_mask(movable, analysis)
}

/// A retained legality context that survives schedule mutations.
///
/// Recomputing a mask from scratch re-decodes every instruction's defs,
/// uses, control codes and latency lookups. After an adjacent swap, though,
/// only two context entries change places and only candidates inside the
/// swap's basic block can change legality — every stall-count walk is
/// confined to one block, and cross-block candidates are rejected by block
/// membership alone. [`IncrementalMasker::apply_swap`] therefore permutes
/// the per-index arrays in O(1) and
/// [`IncrementalMasker::mask_after_swap`] re-evaluates only the slots whose
/// instruction lies in the affected block, copying every other slot from
/// the previous mask.
///
/// The incremental path is only valid when the swap did not change the
/// *global* inputs of the context — the (possibly schedule-inferred) stall
/// table, the denylist and the block structure. The game checks those
/// preconditions after re-analysis and falls back to a full rebuild when
/// any of them moved; `masking_properties` proptests pin incremental ≡ full
/// recompute over random legal swap sequences.
#[derive(Debug, Clone)]
pub struct IncrementalMasker {
    ctx: MaskContext,
}

impl IncrementalMasker {
    /// Decodes the legality context of `program`.
    #[must_use]
    pub fn new(program: &Program, analysis: &Analysis, stalls: &StallTable) -> Self {
        IncrementalMasker {
            ctx: MaskContext::new(program, analysis, stalls),
        }
    }

    /// The full mask over `movable` (exactly [`action_mask`]).
    #[must_use]
    pub fn full_mask(&self, movable: &[usize], analysis: &Analysis) -> Vec<bool> {
        let count = self.ctx.len();
        let mut mask = vec![false; movable.len() * 2];
        for (slot, &index) in movable.iter().enumerate() {
            if analysis.denylist.contains(&index) {
                continue;
            }
            if index > 0 {
                mask[slot * 2] = self.ctx.swap_is_legal(index - 1);
            }
            if index + 1 < count {
                mask[slot * 2 + 1] = self.ctx.swap_is_legal(index);
            }
        }
        mask
    }

    /// True when the swap of `upper` and `upper + 1` keeps the context
    /// incrementally updatable: both instructions live in one basic block
    /// and neither is a scheduling fence (so the block structure cannot
    /// move). Accepted game actions always satisfy this — the mask itself
    /// forbids the rest — but the caller must fall back to a rebuild when
    /// it does not hold.
    #[must_use]
    pub fn swap_stays_incremental(&self, upper: usize) -> bool {
        let lower = upper + 1;
        lower < self.ctx.len()
            && !self.ctx.fence[upper]
            && !self.ctx.fence[lower]
            && self
                .ctx
                .blocks
                .iter()
                .any(|b| b.contains(upper) && b.contains(lower))
    }

    /// Applies an adjacent swap to the per-index context arrays. Blocks are
    /// untouched (guarded by [`IncrementalMasker::swap_stays_incremental`]).
    pub fn apply_swap(&mut self, upper: usize) {
        self.ctx.swap_entries(upper);
    }

    /// The mask after a swap at `upper` was applied with
    /// [`IncrementalMasker::apply_swap`]: slots whose instruction lies in
    /// the swap's basic block are re-evaluated, every other slot is copied
    /// from `prev_mask` (indexed through `prev_movable`, which is sorted).
    #[must_use]
    pub fn mask_after_swap(
        &self,
        upper: usize,
        movable: &[usize],
        analysis: &Analysis,
        prev_movable: &[usize],
        prev_mask: &[bool],
    ) -> Vec<bool> {
        let count = self.ctx.len();
        let swap_block = self.ctx.blocks.iter().find(|b| b.contains(upper)).copied();
        let mut mask = vec![false; movable.len() * 2];
        for (slot, &index) in movable.iter().enumerate() {
            if analysis.denylist.contains(&index) {
                continue;
            }
            let affected = swap_block.is_none_or(|b| b.contains(index));
            if !affected {
                if let Ok(prev_slot) = prev_movable.binary_search(&index) {
                    mask[slot * 2] = prev_mask.get(prev_slot * 2).copied().unwrap_or(false);
                    mask[slot * 2 + 1] = prev_mask.get(prev_slot * 2 + 1).copied().unwrap_or(false);
                    continue;
                }
            }
            if index > 0 {
                mask[slot * 2] = self.ctx.swap_is_legal(index - 1);
            }
            if index + 1 < count {
                mask[slot * 2 + 1] = self.ctx.swap_is_legal(index);
            }
        }
        mask
    }

    /// Resolves the full edit table over `movable` for `space`:
    /// `edits[slot * K + k]` is the concrete legal [`ScheduleEdit`] for kind
    /// `space.kinds()[k]` on slot `slot`, or `None` when illegal. The action
    /// mask is exactly `edits[id].is_some()`, so legality and application
    /// can never disagree.
    pub fn full_edits(
        &mut self,
        movable: &[usize],
        analysis: &Analysis,
        space: ActionSpace,
    ) -> Vec<Option<ScheduleEdit>> {
        let kinds = space.kinds();
        let mut edits = vec![None; movable.len() * kinds.len()];
        for (slot, &index) in movable.iter().enumerate() {
            if analysis.denylist.contains(&index) {
                continue;
            }
            for (k, &kind) in kinds.iter().enumerate() {
                edits[slot * kinds.len() + k] = self.ctx.resolve_edit(kind, index);
            }
        }
        edits
    }

    /// True when `edit` keeps the context incrementally updatable: every
    /// touched index lives in one basic block and none is a scheduling
    /// fence, so the block structure cannot move. Mask-resolved edits always
    /// satisfy this; callers must rebuild when it does not hold.
    #[must_use]
    pub fn edit_stays_incremental(&self, edit: &ScheduleEdit) -> bool {
        let touched = edit.touched_indices();
        if touched.is_empty() || touched.iter().any(|&i| i >= self.ctx.len()) {
            return false;
        }
        if touched.iter().any(|&i| self.ctx.fence[i]) {
            return false;
        }
        self.ctx
            .blocks
            .iter()
            .any(|b| touched.iter().all(|&i| b.contains(i)))
    }

    /// Applies `edit` to the per-index context arrays in O(edit): swap
    /// sequences permute entries, stall and wait edits overwrite the one
    /// touched value, reuse toggles change nothing the legality rules read
    /// (the target operand choice is flag-invariant).
    pub fn apply_edit(&mut self, edit: &ScheduleEdit) {
        match *edit {
            ScheduleEdit::Swap { .. } | ScheduleEdit::BlockMove { .. } => {
                for upper in edit.swap_sequence() {
                    self.ctx.swap_entries(upper);
                }
            }
            ScheduleEdit::ToggleReuse { .. } => {}
            ScheduleEdit::SetStall { index, to, .. } => {
                if index < self.ctx.len() {
                    self.ctx.raw_stall[index] = to;
                    self.ctx.stall[index] = u64::from(to).max(1);
                }
            }
            ScheduleEdit::SetWait { index, barrier, on } => {
                if index < self.ctx.len() && barrier < sass::NUM_BARRIERS {
                    if on {
                        self.ctx.wait_mask[index] |= 1 << barrier;
                    } else {
                        self.ctx.wait_mask[index] &= !(1 << barrier);
                    }
                }
            }
        }
    }

    /// The edit table after `edit` was applied with
    /// [`IncrementalMasker::apply_edit`]: slots in the edit's basic block
    /// are re-resolved, every other slot is copied from `prev_edits`
    /// (indexed through `prev_movable`, which is sorted). All legality rules
    /// are block-local and the wait-widening candidate pool never changes,
    /// so out-of-block resolutions are unaffected — `masking_properties`
    /// pins this against the full recomputation.
    pub fn edits_after_edit(
        &mut self,
        edit: &ScheduleEdit,
        movable: &[usize],
        analysis: &Analysis,
        space: ActionSpace,
        prev_movable: &[usize],
        prev_edits: &[Option<ScheduleEdit>],
    ) -> Vec<Option<ScheduleEdit>> {
        let edit_block = self.ctx.block_of(edit.index());
        let kinds = space.kinds();
        let mut edits = vec![None; movable.len() * kinds.len()];
        for (slot, &index) in movable.iter().enumerate() {
            if analysis.denylist.contains(&index) {
                continue;
            }
            let affected = edit_block.is_none_or(|b| b.contains(index));
            if !affected {
                if let Ok(prev_slot) = prev_movable.binary_search(&index) {
                    for k in 0..kinds.len() {
                        edits[slot * kinds.len() + k] = prev_edits
                            .get(prev_slot * kinds.len() + k)
                            .copied()
                            .flatten();
                    }
                    continue;
                }
            }
            for (k, &kind) in kinds.iter().enumerate() {
                edits[slot * kinds.len() + k] = self.ctx.resolve_edit(kind, index);
            }
        }
        edits
    }
}

/// Resolves the legal-edit table over the flat `space` action ids (the
/// richer-space analogue of [`action_mask`]): entry `slot * K + k` holds the
/// concrete [`ScheduleEdit`] for kind `space.kinds()[k]` on `movable[slot]`,
/// or `None` when that transform is illegal in the current schedule.
#[must_use]
pub fn schedule_edits(
    program: &Program,
    movable: &[usize],
    analysis: &Analysis,
    stalls: &StallTable,
    space: ActionSpace,
) -> Vec<Option<ScheduleEdit>> {
    IncrementalMasker::new(program, analysis, stalls).full_edits(movable, analysis, space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    const SAMPLE: &str = "\
[B------:R-:W-:-:S04] MOV R4, 0x100 ;
[B------:R-:W-:-:S04] MOV R8, 0x200 ;
[B------:R-:W-:-:S04] IADD3 R6, R4, 0x1, RZ ;
[B------:R-:W0:-:S02] LDG.E R2, [R8] ;
[B0-----:R-:W-:-:S04] IADD3 R7, R2, 0x1, RZ ;
[B------:R-:W-:-:S02] STG.E [R4], R7 ;
[B------:R-:W-:-:S05] EXIT ;
";

    fn setup() -> (Program, Analysis, StallTable) {
        let program: Program = SAMPLE.parse().unwrap();
        let table = StallTable::builtin_a100();
        let analysis = analyze(&program, &table);
        (program, analysis, table)
    }

    #[test]
    fn action_encoding_round_trips() {
        for id in 0..10 {
            assert_eq!(Action::from_id(id).to_id(), id);
        }
        assert_eq!(Action::from_id(3).direction, Direction::Down);
        assert_eq!(Action::from_id(4).slot, 2);
    }

    #[test]
    fn rich_action_encoding_round_trips_and_aligns_with_swap_ids() {
        for space in [ActionSpace::AdjacentSwap, ActionSpace::Rich] {
            for slot in 0..7 {
                for &kind in space.kinds() {
                    let id = space.encode(slot, kind).expect("kind is in the space");
                    assert_eq!(space.decode(id), (slot, kind));
                }
            }
        }
        // The two swap kinds come first in the rich layout, so per-slot
        // swap ids keep their relative order across spaces.
        for slot in 0..7 {
            for (swap_offset, kind) in [EditKind::SwapUp, EditKind::SwapDown]
                .into_iter()
                .enumerate()
            {
                assert_eq!(
                    ActionSpace::AdjacentSwap.decode(slot * 2 + swap_offset),
                    (slot, kind)
                );
                assert_eq!(
                    ActionSpace::Rich
                        .decode(slot * ActionSpace::Rich.kinds_per_slot() + swap_offset),
                    (slot, kind)
                );
            }
        }
        // Kinds outside a space don't encode.
        assert_eq!(
            ActionSpace::AdjacentSwap.encode(0, EditKind::ToggleReuse),
            None
        );
    }

    #[test]
    fn schedule_edit_serde_round_trips_every_variant() {
        let edits = [
            ScheduleEdit::Swap { upper: 3 },
            ScheduleEdit::BlockMove {
                index: 5,
                direction: Direction::Up,
                distance: 2,
            },
            ScheduleEdit::BlockMove {
                index: 1,
                direction: Direction::Down,
                distance: 2,
            },
            ScheduleEdit::ToggleReuse {
                index: 4,
                operand: 1,
            },
            ScheduleEdit::SetStall {
                index: 2,
                from: 4,
                to: 2,
            },
            ScheduleEdit::SetWait {
                index: 6,
                barrier: 3,
                on: true,
            },
        ];
        for edit in edits {
            let json = serde_json::to_string(&edit).unwrap();
            let back: ScheduleEdit = serde_json::from_str(&json).unwrap();
            assert_eq!(back, edit, "{json}");
            // And the inverse of the inverse is the edit itself.
            assert_eq!(edit.inverse().inverse(), edit);
        }
    }

    #[test]
    fn malformed_edits_are_rejected_without_panics() {
        let (program, _, _) = setup();
        let n = program.instruction_count();
        let pristine = program.to_string();
        let rejected = [
            ScheduleEdit::Swap { upper: n - 1 },
            ScheduleEdit::Swap { upper: n + 10 },
            ScheduleEdit::BlockMove {
                index: 0,
                direction: Direction::Up,
                distance: 2,
            },
            ScheduleEdit::BlockMove {
                index: n - 1,
                direction: Direction::Down,
                distance: 2,
            },
            ScheduleEdit::ToggleReuse {
                index: n + 1,
                operand: 0,
            },
            // MOV's immediate operand cannot carry a reuse flag.
            ScheduleEdit::ToggleReuse {
                index: 0,
                operand: 1,
            },
            ScheduleEdit::SetStall {
                index: 0,
                from: 4,
                to: 16,
            },
            ScheduleEdit::SetWait {
                index: 0,
                barrier: sass::NUM_BARRIERS,
                on: true,
            },
            ScheduleEdit::SetWait {
                index: n,
                barrier: 0,
                on: true,
            },
        ];
        for edit in rejected {
            let mut mutated = program.clone();
            assert!(!edit.apply(&mut mutated), "{edit:?} must be rejected");
            assert_eq!(mutated.to_string(), pristine, "{edit:?} must be a no-op");
        }
    }

    #[test]
    fn register_dependences_are_masked() {
        let (program, analysis, table) = setup();
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        // The LDG (index 3) cannot move down: the IADD3 below consumes R2.
        let ldg_slot = movable.iter().position(|&i| i == 3).unwrap();
        assert!(!mask[ldg_slot * 2 + 1]);
        // It can move up past the unrelated IADD3 R6 (no shared registers).
        assert!(mask[ldg_slot * 2]);
    }

    #[test]
    fn stall_count_violations_are_masked() {
        // Moving the STG up right below its producer chain would shrink the
        // accumulated stall below the IADD3 latency.
        let text = "\
[B------:R-:W-:-:S04] MOV R4, 0x100 ;
[B------:R-:W-:-:S02] IADD3 R7, R4, 0x1, RZ ;
[B------:R-:W-:-:S01] NOP ;
[B------:R-:W-:-:S01] NOP ;
[B------:R-:W-:-:S02] STG.E [R4], R7 ;
[B------:R-:W-:-:S05] EXIT ;
";
        let program: Program = text.parse().unwrap();
        let table = StallTable::builtin_a100();
        let analysis = analyze(&program, &table);
        let movable = analysis.movable_memory_indices();
        let stg_slot = movable.iter().position(|&i| i == 4).unwrap();
        let mask = action_mask(&program, &movable, &analysis, &table);
        // Moving up once (above one NOP) leaves accumulated 2+1 = 3 < 4.
        assert!(!mask[stg_slot * 2], "stall-count violation must be masked");
    }

    #[test]
    fn fences_and_boundaries_are_masked() {
        let (program, analysis, table) = setup();
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        // The STG (last memory instruction) cannot move down into EXIT.
        let stg_slot = movable.iter().position(|&i| i == 5).unwrap();
        assert!(!mask[stg_slot * 2 + 1]);
    }

    #[test]
    fn ldgsts_group_members_never_reorder() {
        let text = "\
[B------:R-:W-:-:S04] MOV R74, 0x0 ;
[B------:R-:W-:-:S04] MOV R10, 0x1000 ;
[B------:R-:W0:-:S02] LDGSTS.E.128 [R74+0x0], desc[UR16][R10.64] ;
[B------:R-:W0:-:S02] LDGSTS.E.128 [R74+0x100], desc[UR16][R10.64+0x200] ;
[B------:R-:W-:-:S05] EXIT ;
";
        let program: Program = text.parse().unwrap();
        let table = StallTable::builtin_a100();
        let analysis = analyze(&program, &table);
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        let second_slot = movable.iter().position(|&i| i == 3).unwrap();
        assert!(!mask[second_slot * 2], "group members must not reorder");
    }

    #[test]
    fn masked_actions_keep_the_simulation_hazard_free() {
        // Apply every legal action once and verify the simulator agrees.
        use gpusim::{simulate_launch, GpuConfig, LaunchConfig};
        let (program, analysis, table) = setup();
        let movable = analysis.movable_memory_indices();
        let mask = action_mask(&program, &movable, &analysis, &table);
        let launch = LaunchConfig::default();
        let baseline = simulate_launch(&GpuConfig::small(), &program, &launch);
        for (id, allowed) in mask.iter().enumerate() {
            if !allowed {
                continue;
            }
            let action = Action::from_id(id);
            let index = movable[action.slot];
            let mut mutated = program.clone();
            let (a, b) = match action.direction {
                Direction::Up => (index - 1, index),
                Direction::Down => (index, index + 1),
            };
            mutated.swap_instructions(a, b).unwrap();
            let run = simulate_launch(&GpuConfig::small(), &mutated, &launch);
            assert_eq!(run.sm.hazards, 0, "legal action {id} must stay hazard-free");
            assert_eq!(run.sm.output_digest, baseline.sm.output_digest);
        }
    }
}
