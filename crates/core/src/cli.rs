//! Canonicalizing resolvers for the user-facing selection strings.
//!
//! Architecture and workload names arrive as text from many surfaces — the
//! harness binaries' `--arch`/`--suite` flags, the examples, and the
//! optimization service's request validation. Each surface used to carry
//! its own copy of the lookup-plus-error-message logic; this module is the
//! single source of truth, so alias handling (`a100` → `ampere`,
//! `TABLE2` → `table2`) and the "unknown name" diagnostics stay identical
//! everywhere.

use std::fmt;

use gpusim::GpuConfig;
use kernels::{KernelKind, WorkloadSuite};

/// A selection string that did not resolve, carrying the valid choices so
/// every surface prints the same diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownName {
    /// What was being selected (`"architecture"`, `"suite"`, `"kernel"`).
    pub what: &'static str,
    /// The string that failed to resolve.
    pub given: String,
    /// The accepted canonical names.
    pub expected: Vec<String>,
}

impl fmt::Display for UnknownName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} `{}` (expected one of: {})",
            self.what,
            self.given,
            self.expected.join(", ")
        )
    }
}

impl std::error::Error for UnknownName {}

/// Resolves an architecture name or alias (`ampere`, `a100`, `sm80`,
/// `Hopper`, …) to its device profile. The profile's `name` field is the
/// canonical spelling: resolving through this function guarantees that
/// aliases select byte-identical configurations, never cosmetically
/// different ones.
///
/// # Errors
///
/// Returns [`UnknownName`] listing the built-in profiles when the name is
/// not recognized.
pub fn resolve_arch(name: &str) -> Result<GpuConfig, UnknownName> {
    GpuConfig::by_name(name).ok_or_else(|| UnknownName {
        what: "architecture",
        given: name.to_string(),
        expected: gpusim::ArchSpec::builtin_names()
            .iter()
            .map(ToString::to_string)
            .collect(),
    })
}

/// Resolves a workload-suite name (case-insensitive) against the registry.
///
/// # Errors
///
/// Returns [`UnknownName`] listing the registered suites when the name is
/// not recognized.
pub fn resolve_suite(name: &str) -> Result<WorkloadSuite, UnknownName> {
    kernels::find_suite(name).ok_or_else(|| UnknownName {
        what: "suite",
        given: name.to_string(),
        expected: kernels::suite_names()
            .iter()
            .map(ToString::to_string)
            .collect(),
    })
}

/// Resolves a kernel-kind name (case-insensitive) against the Table-2
/// catalog, for surfaces that select a single kernel rather than a suite
/// (the optimization service's requests).
///
/// # Errors
///
/// Returns [`UnknownName`] listing the kernel names when the name is not
/// recognized.
pub fn resolve_kernel(name: &str) -> Result<KernelKind, UnknownName> {
    KernelKind::by_name(name).ok_or_else(|| UnknownName {
        what: "kernel",
        given: name.to_string(),
        expected: KernelKind::all()
            .iter()
            .map(|k| k.name().to_string())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_aliases_canonicalize_to_one_profile() {
        let canonical = resolve_arch("ampere").unwrap();
        for alias in ["a100", "AMPERE", "Ampere"] {
            let resolved = resolve_arch(alias).unwrap();
            assert_eq!(resolved.name, canonical.name);
            assert_eq!(
                serde_json::to_string(&resolved).unwrap(),
                serde_json::to_string(&canonical).unwrap(),
                "alias `{alias}` must select a byte-identical profile"
            );
        }
        let err = resolve_arch("pascal").unwrap_err();
        assert_eq!(err.what, "architecture");
        assert!(err.to_string().contains("pascal"));
        assert!(err.to_string().contains("ampere"));
    }

    #[test]
    fn suite_names_canonicalize_case_insensitively() {
        assert_eq!(resolve_suite("TABLE2").unwrap().name, "table2");
        assert_eq!(resolve_suite("Attention").unwrap().name, "attention");
        let err = resolve_suite("nonexistent").unwrap_err();
        assert_eq!(err.what, "suite");
        assert!(err.to_string().contains("table2"));
    }

    #[test]
    fn kernel_names_resolve_to_kinds() {
        assert_eq!(
            resolve_kernel("softmax").unwrap(),
            kernels::KernelKind::Softmax
        );
        assert_eq!(
            resolve_kernel("MMLEAKYRELU").unwrap(),
            kernels::KernelKind::MatmulLeakyRelu
        );
        let err = resolve_kernel("conv3d").unwrap_err();
        assert_eq!(err.what, "kernel");
        assert!(err.to_string().contains("softmax"));
    }
}
