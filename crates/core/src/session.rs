//! Checkpointable kernel-optimization sessions: the warm-restart unit of
//! the optimization service.
//!
//! [`CuAsmRl::optimize_spec_instrumented`] runs the full hierarchical
//! search in one call; a long-running daemon cannot afford that — a process
//! restart mid-search would discard hours of PPO training. [`SearchSession`]
//! splits the same search into resumable pieces: construct it (autotune +
//! compile + game build + trainer warm-restart from a checkpoint file),
//! call [`SearchSession::step`] repeatedly (each call trains a bounded
//! number of PPO updates and checkpoints at the update boundary), and call
//! [`SearchSession::finish`] once training completes (greedy inference
//! pass, probabilistic verification, cubin rewrite, deploy-cache store).
//!
//! Determinism contract: a session interrupted at any update boundary and
//! resumed in a fresh process produces a report bit-identical to the
//! uninterrupted [`CuAsmRl::optimize_spec_instrumented`] run — the serving
//! extension of the `rl` crate's resume ≡ uninterrupted contract. The
//! workspace `service` tests enforce this end to end.

use std::path::{Path, PathBuf};

use gpusim::MeasureOptions;
use kernels::{CompiledKernel, ConfigSpace, KernelSpec};
use rl::{CancelToken, CheckpointError, Env, PpoTrainer};
use sass::{Cubin, Program};

use crate::game::AssemblyGame;
use crate::optimizer::{finalize_search, inference_trace, search_telemetry};
use crate::optimizer::{CuAsmRl, OptimizationReport};
use crate::telemetry::{duration_ms, KernelTelemetry, TrainingTelemetry};

/// A resumable hierarchical search for one kernel (see the module docs).
pub struct SearchSession {
    optimizer: CuAsmRl,
    compiled: CompiledKernel,
    game: AssemblyGame,
    trainer: PpoTrainer,
    checkpoint_path: PathBuf,
    resumed: bool,
    autotune_ms: f64,
    compile_ms: f64,
    search_ms: f64,
}

impl SearchSession {
    /// Autotunes and compiles the kernel, builds the assembly game, and
    /// warm-restarts the PPO trainer: when `checkpoint_path` holds a
    /// checkpoint from an interrupted session for this kernel, training
    /// resumes from it bit-identically; otherwise a fresh trainer starts at
    /// update zero.
    ///
    /// # Errors
    ///
    /// Returns the typed [`CheckpointError`] when `checkpoint_path` exists
    /// but cannot be decoded (corruption, version skew, foreign kernel) —
    /// the caller decides whether to discard it. A missing file is a cold
    /// start, not an error.
    ///
    /// # Panics
    ///
    /// Panics if `optimizer` was not built with [`crate::Strategy::Rl`]
    /// (check [`CuAsmRl::rl_config`] first), or if the compiled cubin does
    /// not contain the expected kernel (a pipeline bug).
    pub fn new(
        optimizer: CuAsmRl,
        spec: &KernelSpec,
        space: &ConfigSpace,
        tune_options: &MeasureOptions,
        checkpoint_path: impl Into<PathBuf>,
    ) -> Result<Self, CheckpointError> {
        let config = optimizer
            .rl_config()
            .expect("SearchSession requires Strategy::Rl")
            .clone();
        let (compiled, autotune_ms, compile_ms) = optimizer.compile_spec(spec, space, tune_options);
        let search_start = std::time::Instant::now();
        let program = compiled
            .cubin
            .kernel_program(&compiled.name)
            .expect("compiled cubin must contain the kernel");
        let mut game = optimizer.build_game(program, compiled.launch.clone());
        let features = game.observation_features();
        let actions = game.action_count();
        let checkpoint_path = checkpoint_path.into();
        let (trainer, resumed) =
            PpoTrainer::resume_from_or_new(&checkpoint_path, &mut game, config, features, actions)?;
        let search_ms = duration_ms(search_start.elapsed());
        Ok(SearchSession {
            optimizer,
            compiled,
            game,
            trainer,
            checkpoint_path,
            resumed,
            autotune_ms,
            compile_ms,
            search_ms,
        })
    }

    /// The kernel symbol this session is optimizing.
    #[must_use]
    pub fn kernel(&self) -> &str {
        &self.compiled.name
    }

    /// Whether construction resumed from an existing checkpoint file.
    #[must_use]
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// PPO updates completed so far (across all processes that worked on
    /// this checkpoint).
    #[must_use]
    pub fn completed_updates(&self) -> usize {
        self.trainer.completed_updates()
    }

    /// Total PPO updates the configured training schedule runs.
    #[must_use]
    pub fn total_updates(&self) -> usize {
        self.trainer.total_updates()
    }

    /// The checkpoint file this session persists its progress to.
    #[must_use]
    pub fn checkpoint_path(&self) -> &Path {
        &self.checkpoint_path
    }

    /// Trains at most `max_updates` more PPO updates and, when the schedule
    /// is not yet complete, checkpoints at the update boundary so a process
    /// restart resumes bit-identically. Returns whether training is now
    /// complete (after which [`SearchSession::finish`] produces the report).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when writing the checkpoint fails.
    pub fn step(&mut self, max_updates: usize) -> Result<bool, CheckpointError> {
        self.step_until(max_updates, &CancelToken::new())
    }

    /// [`SearchSession::step`] with cooperative preemption: the token is
    /// polled at every PPO update boundary, so a fired deadline or drain
    /// signal stops training within one update and the checkpoint written
    /// here still resumes bit-identically. After a preempted step, either
    /// re-open the session later (warm restart) or take the degraded
    /// best-so-far answer with [`SearchSession::finish_preempted`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when writing the checkpoint fails.
    pub fn step_until(
        &mut self,
        max_updates: usize,
        cancel: &CancelToken,
    ) -> Result<bool, CheckpointError> {
        let start = std::time::Instant::now();
        let finished = self
            .trainer
            .train_updates_until(&mut self.game, max_updates, cancel);
        self.search_ms += duration_ms(start.elapsed());
        if !finished {
            self.trainer
                .save_checkpoint(&self.game, &self.checkpoint_path)?;
        }
        Ok(finished)
    }

    /// Completes the search: runs the deterministic greedy inference pass,
    /// verifies the best schedule, writes the optimized kernel section back
    /// into the cubin, stores the report in the optimizer's deploy cache
    /// (§4.2) and removes the checkpoint file. Training that has not
    /// finished yet is driven to completion first.
    #[must_use = "the report carries the verification verdict"]
    pub fn finish(mut self) -> (OptimizationReport, Cubin, KernelTelemetry) {
        let start = std::time::Instant::now();
        if !self.trainer.is_finished() {
            let _ = self.trainer.train_updates(&mut self.game, usize::MAX);
        }
        let moves = inference_trace(&mut self.game, self.trainer.policy());
        self.search_ms += duration_ms(start.elapsed());
        let (report, verify_ms) = finalize_search(&self.compiled.name, &self.game, moves);
        let training = Some(TrainingTelemetry::from_stats(self.trainer.stats()));
        let mut telemetry =
            search_telemetry(&report, &self.game, training, self.search_ms, verify_ms);
        telemetry.phases.autotune_ms = self.autotune_ms;
        telemetry.phases.compile_ms = self.compile_ms;
        telemetry.phases.total_ms = self.autotune_ms + self.compile_ms + self.search_ms + verify_ms;
        let mut cubin = self.compiled.cubin;
        if let Ok(optimized) = report.optimized_listing.parse::<Program>() {
            let _ = cubin.replace_kernel_section(&self.compiled.name, &optimized);
        }
        self.optimizer.store(&report);
        let _ = std::fs::remove_file(&self.checkpoint_path);
        (report, cubin, telemetry)
    }

    /// Finalizes a *preempted* session into a degraded best-so-far answer:
    /// runs the greedy inference pass and probabilistic verification on the
    /// partially-trained policy and returns the report and telemetry —
    /// without driving training to completion, without storing the report in
    /// the deploy cache (it is not the converged answer) and without
    /// removing the checkpoint file, so a later request for the same kernel
    /// resumes the training run exactly where it stopped and converges to
    /// the byte-identical full answer.
    #[must_use = "the degraded report is the client's answer"]
    pub fn finish_preempted(mut self) -> (OptimizationReport, KernelTelemetry) {
        let start = std::time::Instant::now();
        let moves = inference_trace(&mut self.game, self.trainer.policy());
        self.search_ms += duration_ms(start.elapsed());
        let (report, verify_ms) = finalize_search(&self.compiled.name, &self.game, moves);
        let training = Some(TrainingTelemetry::from_stats(self.trainer.stats()));
        let mut telemetry =
            search_telemetry(&report, &self.game, training, self.search_ms, verify_ms);
        telemetry.phases.autotune_ms = self.autotune_ms;
        telemetry.phases.compile_ms = self.compile_ms;
        telemetry.phases.total_ms = self.autotune_ms + self.compile_ms + self.search_ms + verify_ms;
        (report, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use gpusim::GpuConfig;
    use kernels::{KernelKind, KernelSpec};
    use rl::PpoConfig;

    fn tiny_setup() -> (KernelSpec, ConfigSpace, MeasureOptions, CuAsmRl) {
        let spec = KernelSpec::scaled(KernelKind::Softmax, 16);
        let space = ConfigSpace::small();
        let tune = MeasureOptions {
            warmup: 0,
            repeats: 2,
            noise_std: 0.0,
            seed: 0,
        };
        let config = PpoConfig {
            total_steps: 96,
            rollout_steps: 24,
            seed: 11,
            ..PpoConfig::tiny()
        };
        let optimizer = CuAsmRl::new(GpuConfig::small(), Strategy::Rl(config));
        (spec, space, tune, optimizer)
    }

    fn temp_ckpt(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cuasmrl-session-{label}-{}-{:?}.ckpt",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn interrupted_session_matches_the_uninterrupted_optimizer_run() {
        let (spec, space, tune, optimizer) = tiny_setup();
        // Control: the one-shot optimizer path.
        let (control, _cubin, control_telemetry) =
            optimizer.optimize_spec_instrumented(&spec, &space, &tune);

        // Session, interrupted after every step by dropping it and
        // reconstructing from its checkpoint — a simulated process restart.
        let path = temp_ckpt("restart");
        let _ = std::fs::remove_file(&path);
        let mut finished = false;
        let mut rounds = 0;
        while !finished {
            let mut session =
                SearchSession::new(optimizer.clone(), &spec, &space, &tune, &path).expect("open");
            assert_eq!(session.resumed(), rounds > 0);
            finished = session.step(1).expect("step");
            if finished {
                let (report, _cubin, telemetry) = session.finish();
                assert_eq!(
                    serde_json::to_string(&report).unwrap(),
                    serde_json::to_string(&control).unwrap(),
                    "interrupted session must match the uninterrupted run"
                );
                assert_eq!(telemetry.training, control_telemetry.training);
                assert_eq!(telemetry.reward_curve, control_telemetry.reward_curve);
            }
            rounds += 1;
        }
        assert!(rounds > 1, "the schedule must span several boundaries");
        assert!(!path.exists(), "finish() must clean up the checkpoint");
    }

    #[test]
    fn preempted_session_degrades_then_resumes_to_the_full_answer() {
        let (spec, space, tune, optimizer) = tiny_setup();
        let (control, _cubin, _telemetry) =
            optimizer.optimize_spec_instrumented(&spec, &space, &tune);

        let path = temp_ckpt("preempt");
        let _ = std::fs::remove_file(&path);
        let cache_dir = std::env::temp_dir().join(format!(
            "cuasmrl-session-preempt-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let optimizer = optimizer.with_cache_dir(&cache_dir);

        // Run one update, then a fired token preempts the session.
        let mut session =
            SearchSession::new(optimizer.clone(), &spec, &space, &tune, &path).expect("open");
        assert!(!session.step(1).expect("step"));
        let fired = CancelToken::new();
        fired.cancel();
        assert!(!session.step_until(usize::MAX, &fired).expect("step"));
        let updates_at_preemption = session.completed_updates();
        assert!(updates_at_preemption < session.total_updates());
        let (degraded, _telemetry) = session.finish_preempted();
        // The degraded answer is still a valid verified schedule…
        assert!(degraded.verified);
        assert!(degraded.speedup >= 1.0);
        // …and the checkpoint survives for the warm restart.
        assert!(path.exists(), "preemption must keep the checkpoint");
        assert!(
            optimizer.lookup(&degraded.kernel).is_none(),
            "a degraded report must not enter the deploy cache"
        );

        // Re-asking resumes from the checkpoint and converges to the
        // byte-identical full answer.
        let mut session =
            SearchSession::new(optimizer.clone(), &spec, &space, &tune, &path).expect("reopen");
        assert!(session.resumed());
        assert_eq!(session.completed_updates(), updates_at_preemption);
        while !session.step(1).expect("step") {}
        let (report, _cubin, _telemetry) = session.finish();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&control).unwrap(),
            "resumed run must match the uninterrupted one"
        );
        assert!(!path.exists());
        assert!(
            optimizer.lookup(&report.kernel).is_some(),
            "the converged answer does enter the deploy cache"
        );
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn finish_drives_remaining_training_to_completion() {
        let (spec, space, tune, optimizer) = tiny_setup();
        let (control, _cubin, _telemetry) =
            optimizer.optimize_spec_instrumented(&spec, &space, &tune);
        let path = temp_ckpt("finish");
        let _ = std::fs::remove_file(&path);
        let session = SearchSession::new(optimizer, &spec, &space, &tune, &path).expect("open");
        let (report, cubin, _telemetry) = session.finish();
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&control).unwrap()
        );
        assert!(cubin.kernel_names().iter().any(|n| n == &report.kernel));
    }
}
